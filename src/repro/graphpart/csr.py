"""Compressed sparse row graph representation.

The partitioner's working format: undirected, weighted, no self-loops,
parallel edges merged by weight summation.  Built once from an edge list
with vectorized numpy (sort + reduce), then traversed with plain loops
during matching/refinement (the arrays are small by then).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class CSRGraph:
    """Undirected weighted graph in CSR form.

    Attributes
    ----------
    n : int
        Vertex count; vertices are ``0..n-1``.
    xadj : int64[n+1]
        Adjacency offsets; neighbors of ``v`` are
        ``adjncy[xadj[v]:xadj[v+1]]``.
    adjncy : int64[2m]
        Neighbor ids (each undirected edge appears in both endpoints' lists).
    adjwgt : int64[2m]
        Edge weights, parallel to ``adjncy``.
    vwgt : int64[n]
        Vertex weights.
    """

    __slots__ = ("n", "xadj", "adjncy", "adjwgt", "vwgt")

    def __init__(
        self,
        n: int,
        xadj: np.ndarray,
        adjncy: np.ndarray,
        adjwgt: np.ndarray,
        vwgt: np.ndarray,
    ) -> None:
        if len(xadj) != n + 1:
            raise ValueError(f"xadj must have n+1={n + 1} entries, got {len(xadj)}")
        if len(adjncy) != len(adjwgt):
            raise ValueError("adjncy and adjwgt must be parallel")
        if len(vwgt) != n:
            raise ValueError(f"vwgt must have n={n} entries, got {len(vwgt)}")
        self.n = n
        self.xadj = xadj
        self.adjncy = adjncy
        self.adjwgt = adjwgt
        self.vwgt = vwgt

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: np.ndarray,
        edge_weights: np.ndarray | None = None,
        vertex_weights: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build from an (m, 2) edge array.

        Self-loops are dropped (they never contribute to a cut); duplicate
        and reverse-duplicate edges are merged with weights summed.

        >>> g = CSRGraph.from_edges(3, np.array([[0, 1], [1, 0], [1, 2]]))
        >>> g.degree(1)
        2
        >>> g.edge_weight_between(0, 1)
        2
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise ValueError(f"edge endpoint out of range [0, {n})")
        if edge_weights is None:
            edge_weights = np.ones(len(edges), dtype=np.int64)
        else:
            edge_weights = np.asarray(edge_weights, dtype=np.int64)
            if len(edge_weights) != len(edges):
                raise ValueError("edge_weights must be parallel to edges")

        loop_mask = edges[:, 0] != edges[:, 1]
        edges = edges[loop_mask]
        edge_weights = edge_weights[loop_mask]

        # Canonicalize (lo, hi), merge duplicates by weight sum.
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        if len(lo):
            keys = lo * n + hi
            order = np.argsort(keys, kind="stable")
            keys, lo, hi, edge_weights = (
                keys[order],
                lo[order],
                hi[order],
                edge_weights[order],
            )
            boundary = np.empty(len(keys), dtype=bool)
            boundary[0] = True
            boundary[1:] = keys[1:] != keys[:-1]
            group_ids = np.cumsum(boundary) - 1
            merged_w = np.zeros(group_ids[-1] + 1, dtype=np.int64)
            np.add.at(merged_w, group_ids, edge_weights)
            lo, hi = lo[boundary], hi[boundary]
            edge_weights = merged_w

        # Symmetrize and bucket into CSR.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        wgt = np.concatenate([edge_weights, edge_weights])
        degree = np.bincount(src, minlength=n)
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degree, out=xadj[1:])
        order = np.argsort(src, kind="stable")
        adjncy = dst[order]
        adjwgt = wgt[order]

        if vertex_weights is None:
            vwgt = np.ones(n, dtype=np.int64)
        else:
            vwgt = np.asarray(vertex_weights, dtype=np.int64)
        return cls(n, xadj, adjncy, adjwgt, vwgt)

    # -- accessors ----------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Undirected edge count."""
        return len(self.adjncy) // 2

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def edge_weight_between(self, u: int, v: int) -> int:
        """Weight of edge (u, v), 0 if absent.  Linear in deg(u)."""
        nbrs = self.neighbors(u)
        idx = np.nonzero(nbrs == v)[0]
        if len(idx) == 0:
            return 0
        return int(self.neighbor_weights(u)[idx[0]])

    def total_vertex_weight(self) -> int:
        return int(self.vwgt.sum())

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield each undirected edge once as (u, v, weight) with u < v."""
        for u in range(self.n):
            start, end = self.xadj[u], self.xadj[u + 1]
            for idx in range(start, end):
                v = int(self.adjncy[idx])
                if u < v:
                    yield u, v, int(self.adjwgt[idx])

    def __repr__(self) -> str:
        return f"<CSRGraph n={self.n} m={self.num_edges}>"
