"""Initial k-way partitioning of the coarsest graph by greedy graph growing.

Parts are grown one at a time from a BFS-ish frontier ordered by connection
weight (Karypis & Kumar's GGGP, simplified to a single growing pass per
part).  Unreached vertices — isolated vertices, or components exhausted
mid-part — are swept into the lightest parts at the end.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphpart.csr import CSRGraph
from repro.util.seeding import rng_for


def greedy_growing(graph: CSRGraph, k: int, seed: int) -> np.ndarray:
    """Assign each vertex of (the coarsest) ``graph`` to one of ``k`` parts.

    Returns an int64 assignment array.  Target per-part weight is
    ``total/k``; each part grows until it reaches the target, preferring
    the frontier vertex most strongly connected to the part (heaviest total
    edge weight into it).
    """
    n = graph.n
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k == 1:
        return np.zeros(n, dtype=np.int64)

    assignment = np.full(n, -1, dtype=np.int64)
    total_weight = graph.total_vertex_weight()
    target = total_weight / k
    rng = rng_for(seed, "initial")
    visit_order = list(range(n))
    rng.shuffle(visit_order)
    unassigned_cursor = 0

    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt

    for part in range(k - 1):
        part_weight = 0
        # Max-heap of (–connection_weight, tiebreak, vertex); lazily
        # re-validated because connection weights only ever grow.
        heap: list[tuple[int, int, int]] = []
        counter = 0
        while part_weight < target:
            v = -1
            while heap:
                _, _, cand = heapq.heappop(heap)
                if assignment[cand] < 0:
                    v = cand
                    break
            if v < 0:
                # Frontier exhausted (component boundary): seed from the
                # next unassigned vertex in the shuffled order.
                while unassigned_cursor < n and assignment[visit_order[unassigned_cursor]] >= 0:
                    unassigned_cursor += 1
                if unassigned_cursor >= n:
                    break
                v = visit_order[unassigned_cursor]
            assignment[v] = part
            part_weight += int(vwgt[v])
            for idx in range(xadj[v], xadj[v + 1]):
                u = int(adjncy[idx])
                if assignment[u] < 0:
                    counter += 1
                    heapq.heappush(heap, (-int(adjwgt[idx]), counter, u))

    # Remaining vertices form the last part... unless that unbalances it:
    # sweep them into the currently-lightest part.
    part_weights = np.zeros(k, dtype=np.int64)
    for v in range(n):
        if assignment[v] >= 0:
            part_weights[assignment[v]] += vwgt[v]
    for v in visit_order:
        if assignment[v] >= 0:
            continue
        lightest = int(np.argmin(part_weights))
        assignment[v] = lightest
        part_weights[lightest] += vwgt[v]
    return assignment
