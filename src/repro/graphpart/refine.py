"""Boundary refinement (greedy Kernighan–Lin / FM style).

At each uncoarsening level the projected assignment is improved by repeated
passes over *boundary* vertices: a vertex moves to the neighboring part with
the largest positive gain (external minus internal connection weight) that
doesn't violate the balance constraint.  Passes stop when a sweep makes no
move.  This is the "greedy refinement" variant of METIS's k-way FM — no
priority queues or tentative negative-gain sequences, which the partition
quality the experiments need doesn't require (verified by the
``refinement on/off`` ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.graphpart.csr import CSRGraph
from repro.util.seeding import rng_for


def refine(
    graph: CSRGraph,
    assignment: np.ndarray,
    k: int,
    seed: int,
    balance_factor: float = 1.05,
    max_passes: int = 8,
) -> np.ndarray:
    """Greedy boundary refinement in place; returns ``assignment``.

    ``balance_factor`` bounds every part's weight at
    ``balance_factor * total/k`` — moves that would exceed it are rejected,
    except moves *out of* an overweight part, which are additionally allowed
    at zero gain (they restore balance without hurting the cut).
    """
    n = graph.n
    if n == 0 or k == 1:
        return assignment
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt

    part_weights = np.zeros(k, dtype=np.int64)
    np.add.at(part_weights, assignment, vwgt)
    max_weight = balance_factor * graph.total_vertex_weight() / k

    rng = rng_for(seed, "refine")
    order = list(range(n))

    for _ in range(max_passes):
        rng.shuffle(order)
        moved = 0
        for v in order:
            home = int(assignment[v])
            start, end = xadj[v], xadj[v + 1]
            if start == end:
                continue
            # Connection weight per neighboring part.
            conn: dict[int, int] = {}
            for idx in range(start, end):
                p = int(assignment[adjncy[idx]])
                conn[p] = conn.get(p, 0) + int(adjwgt[idx])
            internal = conn.get(home, 0)
            if len(conn) == (1 if home in conn else 0):
                continue  # not a boundary vertex
            best_part, best_gain = home, 0
            overweight_home = part_weights[home] > max_weight
            for p, w in conn.items():
                if p == home:
                    continue
                if part_weights[p] + vwgt[v] > max_weight:
                    continue
                gain = w - internal
                if gain > best_gain or (
                    gain == best_gain == 0 and overweight_home and best_part == home
                ):
                    best_part, best_gain = p, gain
            if best_part != home:
                assignment[v] = best_part
                part_weights[home] -= vwgt[v]
                part_weights[best_part] += vwgt[v]
                moved += 1
        if moved == 0:
            break
    return assignment
