"""Multilevel k-way graph partitioning — our METIS substitute.

The paper partitions the RDF resource graph with Metis; offline, we build
the same algorithm family from scratch:

1. **Coarsening** (:mod:`repro.graphpart.coarsen`) — repeated heavy-edge
   matching collapses the graph until it is small,
2. **Initial partitioning** (:mod:`repro.graphpart.initial`) — greedy graph
   growing assigns the coarsest graph to k balanced parts,
3. **Uncoarsening + refinement** (:mod:`repro.graphpart.refine`) — the
   assignment is projected back level by level, with boundary
   Kernighan–Lin/FM-style greedy refinement at each level.

Entry point: :func:`repro.graphpart.kway.partition_graph`.  The contract
matches what the paper needs from Metis: near-equal vertex weights per part,
minimized edge cut, fast enough to be "three orders of magnitude smaller
than the inferencing time".
"""

from repro.graphpart.csr import CSRGraph
from repro.graphpart.kway import MultilevelPartitioner, partition_graph
from repro.graphpart.quality import balance, edge_cut, part_weights

__all__ = [
    "CSRGraph",
    "MultilevelPartitioner",
    "partition_graph",
    "edge_cut",
    "balance",
    "part_weights",
]
