"""Partition quality metrics: edge cut and balance.

These are the partitioner's own objective metrics (graph-level).  The
paper's *reasoning-level* metrics — bal, IR, OR — live in
:mod:`repro.partitioning.metrics`; tests relate the two (lower edge cut
implies lower input replication, Section III-A-1).
"""

from __future__ import annotations

import numpy as np

from repro.graphpart.csr import CSRGraph


def edge_cut(graph: CSRGraph, assignment: np.ndarray) -> int:
    """Total weight of edges whose endpoints live in different parts.

    >>> g = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
    >>> edge_cut(g, np.array([0, 0, 1]))
    1
    """
    cut = 0
    for u, v, w in graph.iter_edges():
        if assignment[u] != assignment[v]:
            cut += w
    return cut


def part_weights(graph: CSRGraph, assignment: np.ndarray, k: int) -> np.ndarray:
    """Vertex-weight total per part."""
    weights = np.zeros(k, dtype=np.int64)
    np.add.at(weights, assignment, graph.vwgt)
    return weights


def balance(graph: CSRGraph, assignment: np.ndarray, k: int) -> float:
    """Max part weight over ideal weight (1.0 is perfect; METIS reports the
    same ratio as "load imbalance")."""
    if graph.n == 0:
        return 1.0
    weights = part_weights(graph, assignment, k)
    ideal = graph.total_vertex_weight() / k
    return float(weights.max() / ideal) if ideal > 0 else 1.0
