"""Coarsening by heavy-edge matching (HEM).

Each coarsening level computes a matching that prefers heavy edges —
collapsing the heaviest edges first preserves most of the cut structure in
the coarse graph — then contracts matched pairs into single vertices whose
weight is the pair's total.  This is the coarsening scheme of
Karypis & Kumar's METIS.
"""

from __future__ import annotations

import numpy as np

from repro.graphpart.csr import CSRGraph
from repro.util.seeding import rng_for


def heavy_edge_matching(graph: CSRGraph, seed: int, level: int) -> np.ndarray:
    """Compute a matching: ``match[v]`` is v's partner (or v itself).

    Vertices are visited in random order (ties in edge weight are broken by
    visit order, so randomization avoids pathological chains); each
    unmatched vertex grabs its unmatched neighbor with the heaviest
    connecting edge.
    """
    n = graph.n
    match = np.full(n, -1, dtype=np.int64)
    order = np.arange(n)
    rng_for(seed, "hem", level).shuffle(order)

    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    for v in order:
        if match[v] >= 0:
            continue
        best, best_w = v, -1
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if match[u] >= 0 or u == v:
                continue
            w = adjwgt[idx]
            if w > best_w:
                best, best_w = u, w
        match[v] = best
        match[best] = v
    return match


def contract(graph: CSRGraph, match: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Contract a matching.  Returns (coarse graph, cmap) where
    ``cmap[fine_vertex] = coarse_vertex``.

    Coarse vertex weights are the sums of their constituents; edges between
    the two halves of a matched pair vanish; remaining parallel edges merge
    with summed weights (done inside ``CSRGraph.from_edges``).
    """
    n = graph.n
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] >= 0:
            continue
        partner = match[v]
        cmap[v] = next_id
        if partner != v:
            cmap[partner] = next_id
        next_id += 1

    coarse_vwgt = np.zeros(next_id, dtype=np.int64)
    np.add.at(coarse_vwgt, cmap, graph.vwgt)

    edges: list[tuple[int, int]] = []
    weights: list[int] = []
    for u, v, w in graph.iter_edges():
        cu, cv = cmap[u], cmap[v]
        if cu != cv:
            edges.append((cu, cv))
            weights.append(w)

    coarse = CSRGraph.from_edges(
        next_id,
        np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        np.asarray(weights, dtype=np.int64),
        vertex_weights=coarse_vwgt,
    )
    return coarse, cmap


def coarsen(
    graph: CSRGraph,
    target_n: int,
    seed: int,
    min_shrink: float = 0.95,
    max_levels: int = 60,
) -> list[tuple[CSRGraph, np.ndarray]]:
    """Coarsen until ``target_n`` vertices (or progress stalls).

    Returns the hierarchy as a list of ``(fine_graph, cmap)`` pairs from
    finest to coarsest; the caller reads the coarsest graph from the last
    contraction's output, kept by :class:`~repro.graphpart.kway.MultilevelPartitioner`.
    Coarsening stops early when a level shrinks the graph by less than
    ``1 - min_shrink`` (matching degenerates on star-like graphs).
    """
    levels: list[tuple[CSRGraph, np.ndarray]] = []
    current = graph
    for level in range(max_levels):
        if current.n <= target_n:
            break
        match = heavy_edge_matching(current, seed, level)
        coarse, cmap = contract(current, match)
        levels.append((current, cmap))
        if coarse.n > current.n * min_shrink:
            current = coarse
            break
        current = coarse
    levels.append((current, np.arange(current.n, dtype=np.int64)))
    return levels
