"""Multilevel k-way partitioning driver.

Pipeline: coarsen (heavy-edge matching) -> greedy graph growing on the
coarsest graph -> project back level by level with boundary refinement.
See the package docstring for the METIS lineage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphpart.coarsen import coarsen
from repro.graphpart.csr import CSRGraph
from repro.graphpart.initial import greedy_growing
from repro.graphpart.quality import balance, edge_cut
from repro.graphpart.refine import refine
from repro.util.seeding import derive_seed

#: Coarsening stops when the graph has at most this many vertices per part
#: (METIS's default neighborhood; smaller makes initial partitioning
#: cheaper but loses structure).
COARSEN_VERTICES_PER_PART = 30


@dataclass
class PartitionReport:
    """Result of one partitioning run, with quality diagnostics."""

    assignment: np.ndarray
    k: int
    edge_cut: int
    balance: float
    levels: int


class MultilevelPartitioner:
    """Configurable multilevel k-way partitioner.

    >>> import numpy as np
    >>> edges = np.array([[0, 1], [1, 2], [3, 4], [4, 5], [2, 3]])
    >>> report = MultilevelPartitioner(k=2, seed=7).partition(
    ...     CSRGraph.from_edges(6, edges))
    >>> bool(report.assignment[0] == report.assignment[1] == report.assignment[2])
    True
    >>> report.edge_cut
    1
    """

    def __init__(
        self,
        k: int,
        seed: int = 0,
        balance_factor: float = 1.05,
        refinement: bool = True,
        refine_passes: int = 8,
        trials: int = 4,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.k = k
        self.seed = seed
        self.balance_factor = balance_factor
        #: Refinement can be disabled for the ablation bench.
        self.refinement = refinement
        self.refine_passes = refine_passes
        #: Independent multistart runs; the best (cut, balance) wins.  METIS
        #: does the same with its initial partitions; greedy growing +
        #: local refinement alone is too seed-sensitive on small graphs.
        self.trials = trials

    def partition(self, graph: CSRGraph) -> PartitionReport:
        """Best report over ``trials`` multistart runs (lowest edge cut
        among the most-balanced candidates)."""
        best: PartitionReport | None = None
        for trial in range(self.trials):
            seed = derive_seed(self.seed, "trial", trial) if trial else self.seed
            report = self._partition_once(graph, seed)
            if best is None or _better(report, best, self.balance_factor):
                best = report
        assert best is not None
        return best

    def _partition_once(self, graph: CSRGraph, seed: int) -> PartitionReport:
        k = self.k
        if k == 1 or graph.n <= k:
            # Degenerate cases: everything in part 0, or one vertex per part.
            if graph.n <= k:
                assignment = np.arange(graph.n, dtype=np.int64) % k
            else:
                assignment = np.zeros(graph.n, dtype=np.int64)
            return PartitionReport(
                assignment=assignment,
                k=k,
                edge_cut=edge_cut(graph, assignment),
                balance=balance(graph, assignment, k),
                levels=0,
            )

        target_n = max(k * COARSEN_VERTICES_PER_PART, 2 * k)
        levels = coarsen(graph, target_n, seed)
        coarsest = levels[-1][0]

        assignment = greedy_growing(coarsest, k, seed)
        if self.refinement:
            refine(
                coarsest,
                assignment,
                k,
                seed,
                self.balance_factor,
                self.refine_passes,
            )

        # Project back through the hierarchy (skip the identity sentinel).
        for fine_graph, cmap in reversed(levels[:-1]):
            assignment = assignment[cmap]
            if self.refinement:
                refine(
                    fine_graph,
                    assignment,
                    k,
                    seed,
                    self.balance_factor,
                    self.refine_passes,
                )

        return PartitionReport(
            assignment=assignment,
            k=k,
            edge_cut=edge_cut(graph, assignment),
            balance=balance(graph, assignment, k),
            levels=len(levels) - 1,
        )


def _better(candidate: PartitionReport, incumbent: PartitionReport,
            balance_factor: float) -> bool:
    """Multistart selection: a feasible (within-balance) report beats an
    infeasible one; among equals, the lower edge cut wins, with balance as
    the tiebreak."""
    cand_ok = candidate.balance <= balance_factor + 1e-9
    inc_ok = incumbent.balance <= balance_factor + 1e-9
    if cand_ok != inc_ok:
        return cand_ok
    if candidate.edge_cut != incumbent.edge_cut:
        return candidate.edge_cut < incumbent.edge_cut
    return candidate.balance < incumbent.balance


def partition_graph(
    num_vertices: int,
    edges: np.ndarray,
    k: int,
    seed: int = 0,
    edge_weights: np.ndarray | None = None,
    vertex_weights: np.ndarray | None = None,
    balance_factor: float = 1.05,
    refinement: bool = True,
) -> PartitionReport:
    """One-call convenience over :class:`MultilevelPartitioner`.

    ``edges`` is an (m, 2) array over vertex ids ``0..num_vertices-1``.
    """
    graph = CSRGraph.from_edges(
        num_vertices, edges, edge_weights=edge_weights, vertex_weights=vertex_weights
    )
    return MultilevelPartitioner(
        k=k, seed=seed, balance_factor=balance_factor, refinement=refinement
    ).partition(graph)
