"""Rule serialization: the inverse of :mod:`repro.datalog.parser`.

Round-trips rule sets through the text syntax, so compiled or hand-built
rule bases can be saved, diffed, and reloaded — and so the rule partitioner
can persist each node's subset next to its data partition (the shape a
cluster deployment of the paper's system would ship to nodes).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.datalog.ast import Atom, Rule
from repro.rdf.terms import BNode, Literal, Term, URI, Variable


def _term_to_text(term: Term, prefixes: Mapping[str, str]) -> str:
    if isinstance(term, Variable):
        return f"?{term.name}"
    if isinstance(term, URI):
        for name, prefix in prefixes.items():
            if term.value.startswith(prefix):
                local = term.value[len(prefix):]
                if local and all(
                    c.isalnum() or c in "_.-" for c in local
                ) and local[0].isalpha():
                    return f"{name}:{local}"
        return f"<{term.value}>"
    if isinstance(term, BNode):
        return f"_:{term.label}"
    if isinstance(term, Literal):
        return term.n3()
    raise TypeError(f"cannot serialize {term!r}")


def atom_to_text(atom: Atom, prefixes: Mapping[str, str] | None = None) -> str:
    prefixes = prefixes or {}
    return "({} {} {})".format(
        *(_term_to_text(t, prefixes) for t in atom)
    )


def rule_to_text(rule: Rule, prefixes: Mapping[str, str] | None = None) -> str:
    """One rule in the parser's syntax.

    >>> from repro.datalog.parser import parse_rule
    >>> r = parse_rule("@prefix ex: <ex:>\\n"
    ...                "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")
    >>> rule_to_text(r, {"ex": "ex:"})
    '[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]'
    """
    prefixes = prefixes or {}
    body = " ".join(atom_to_text(a, prefixes) for a in rule.body)
    head = atom_to_text(rule.head, prefixes)
    return f"[{rule.name}: {body} -> {head}]"


def rules_to_document(
    rules: Sequence[Rule] | Iterable[Rule],
    prefixes: Mapping[str, str] | None = None,
    header: str | None = None,
) -> str:
    """A complete rule document: @prefix declarations + one rule per line.

    The output parses back to an equal rule list (names, bodies, heads),
    which the round-trip tests pin down.
    """
    prefixes = dict(prefixes or {})
    lines: list[str] = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    for name, prefix in sorted(prefixes.items()):
        lines.append(f"@prefix {name}: <{prefix}>")
    if lines:
        lines.append("")
    for rule in rules:
        lines.append(rule_to_text(rule, prefixes))
    return "\n".join(lines) + "\n"


#: The prefixes the OWL-Horst rule set needs.
HORST_PREFIXES = {
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "owl": "http://www.w3.org/2002/07/owl#",
}
