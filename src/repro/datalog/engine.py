"""Semi-naive bottom-up datalog evaluation.

This is the production forward-chaining engine run inside every partition.
Semi-naive evaluation [Ullman, *Principles of Database and Knowledge-Base
Systems*] avoids re-deriving old facts: in each iteration, a rule may only
fire if at least one body sub-goal matches a triple derived in the previous
iteration (the *delta*).  For the 1- and 2-atom rule bodies the OWL-Horst
compiler emits, each iteration is a set of index-backed joins.

Execution layers (see DESIGN.md "Engine execution layers"):

* **Compiled kernels** (default) — at construction, every rule is analyzed
  by :mod:`repro.datalog.plan` and 1-atom / 2-atom single-join bodies get a
  specialized executor from :mod:`repro.datalog.compiled` that works on
  flat binding tuples and raw index accessors instead of ``Bindings``
  dicts and per-probe ``Triple`` objects.  A predicate->rules
  :class:`~repro.datalog.plan.DispatchIndex` additionally skips, per
  round, every rule whose ground body predicates are absent from the
  delta's predicate set.
* **Generic interpreter** (``compile_rules=False``, and the automatic
  fallback for 3+-atom or cross-product bodies) — the original
  fully-general join loop over bindings dicts.

The engine is **resumable**: the parallel worker (Algorithm 3) feeds tuples
received from other partitions in as the next delta instead of recomputing
the fixpoint from scratch — ``run(graph, delta=received)``.

Work accounting: :class:`EngineStats` counts join probes (candidate tuples
examined by a join), rule firings (head instantiations, pre-dedup), and
derived triples (post-dedup).  These deterministic counters complement
wall-clock time in the experiment harness, per the repo's measurement
policy; their meaning is identical across both execution layers so that
simulated-cluster work accounting stays comparable.  The compiled layer
additionally reports per-round dispatch counts (``rules_dispatched`` /
``rules_skipped``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal, Sequence

import numpy as np

from repro.datalog.ast import Atom, Bindings, Rule
from repro.datalog.compiled import compile_plan
from repro.datalog.plan import DispatchIndex, PlanKind, build_plan
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.rdf.triple import Triple


@dataclass
class EngineStats:
    """Deterministic work counters plus iteration count for one fixpoint."""

    iterations: int = 0
    firings: int = 0
    derived: int = 0
    join_probes: int = 0
    #: Rules evaluated across all rounds (with dispatch, only those whose
    #: body predicates intersect the delta; without, every rule per round).
    rules_dispatched: int = 0
    #: Rules skipped by the predicate dispatch index across all rounds.
    rules_skipped: int = 0

    def merge(self, other: "EngineStats") -> None:
        self.iterations += other.iterations
        self.firings += other.firings
        self.derived += other.derived
        self.join_probes += other.join_probes
        self.rules_dispatched += other.rules_dispatched
        self.rules_skipped += other.rules_skipped

    @property
    def work(self) -> int:
        """A single scalar work measure: join probes + firings.  Used as the
        machine-independent "CPU time" in simulated-cluster experiments."""
        return self.join_probes + self.firings


@dataclass
class FixpointResult:
    """Outcome of one fixpoint computation.

    ``inferred`` holds only the *new* triples (not the base data); ``graph``
    references the (mutated) input graph containing base + inferred.
    """

    graph: Graph
    inferred: Graph
    stats: EngineStats = field(default_factory=EngineStats)


@dataclass
class ApplyResult:
    """Outcome of one incremental maintenance step (DRed).

    ``graph`` references the (mutated) input closure; ``added`` holds the
    triples newly present, ``removed`` the triples no longer present
    (retracted rows that neither stayed asserted nor rederived).
    """

    graph: Graph
    added: Graph
    removed: Graph
    stats: EngineStats = field(default_factory=EngineStats)


def match_atom(
    graph: Graph, atom: Atom, bindings: Bindings, stats: EngineStats | None = None
) -> Iterator[Bindings]:
    """All extensions of ``bindings`` that satisfy ``atom`` against ``graph``.

    The atom is first substituted under the current bindings so bound
    positions become index keys; each index hit is then verified/extended by
    :meth:`Atom.match_triple` (which also enforces repeated-variable
    consistency).
    """
    a = atom.substitute(bindings)
    s = None if isinstance(a.s, Variable) else a.s
    p = None if isinstance(a.p, Variable) else a.p
    o = None if isinstance(a.o, Variable) else a.o
    for triple in graph.match(s, p, o):
        if stats is not None:
            stats.join_probes += 1
        extended = a.match_triple(triple, bindings)
        if extended is not None:
            yield extended


def eval_rule_generic(
    graph: Graph, rule: Rule, delta: Graph, stats: EngineStats
) -> Iterator[Triple | None]:
    """All head instantiations of ``rule`` where at least one body atom
    matches a delta triple — the generic (bindings-dict) interpreter.

    Standard semi-naive decomposition: for each body position ``i``,
    evaluate the join with atom ``i`` ranging over the delta and every
    other atom over the full database.  When several atoms match delta
    triples the same binding is produced once per delta position; those
    duplicates are removed here, before head instantiation, so ``firings``
    counts distinct bindings (the compiled kernels achieve the same by
    restricting the later halves to ``G ∖ Δ``).
    """
    body = rule.body
    head = rule.head
    seen: set[frozenset] | None = set() if len(body) > 1 else None
    for delta_pos in range(len(body)):
        # Evaluate the delta atom first: the delta is usually far
        # smaller than the database, so this orders the join from the
        # most selective side (left-deep, selective-first).
        order = [delta_pos] + [j for j in range(len(body)) if j != delta_pos]
        bindings_list: list[Bindings] = [{}]
        for j in order:
            atom = body[j]
            source = delta if j == delta_pos else graph
            new_list: list[Bindings] = []
            for b in bindings_list:
                new_list.extend(match_atom(source, atom, b, stats))
            bindings_list = new_list
            if not bindings_list:
                break
        for b in bindings_list:
            if seen is not None:
                key = frozenset(b.items())
                if key in seen:
                    continue
                seen.add(key)
            try:
                yield head.to_triple(b)
            except TypeError:
                # A generalized triple (e.g. rdfs3 placing a literal in
                # subject position).  RDF semantics drops these.
                yield None


class GenericKernel:
    """Kernel-interface wrapper around the generic interpreter — used for
    every rule when ``compile_rules=False`` and as the fallback for rule
    shapes the compiled kernels don't cover."""

    kind = PlanKind.GENERIC

    def __init__(self, rule: Rule) -> None:
        self.rule = rule

    def eval_delta(
        self, graph: Graph, delta: Graph, stats: EngineStats
    ) -> Iterator[Triple | None]:
        return eval_rule_generic(graph, self.rule, delta, stats)


#: The engine execution layers ``SemiNaiveEngine`` can select per instance.
EngineKind = Literal["generic", "compiled", "columnar"]

#: The columnar mirror's storage backends: dense int64 columns
#: (:class:`~repro.rdf.idstore.IdGraph`) or compressed LSM runs under a
#: memory budget (:class:`~repro.rdf.runstore.RunStore`).
StoreKind = Literal["dense", "run"]


class SemiNaiveEngine:
    """Semi-naive fixpoint evaluator over a fixed rule set.

    Three execution layers, selected by ``engine``:

    * ``"compiled"`` (default) routes 1-atom and 2-atom single-join rules
      through the compiled kernels and enables predicate dispatch;
    * ``"generic"`` runs the generic interpreter for every rule (the
      ablation baseline — results are identical, only speed and probe
      counts differ);
    * ``"columnar"`` mirrors the graph into an id-encoded
      :class:`~repro.rdf.idstore.IdGraph` and runs the vectorized id-space
      kernels of :mod:`repro.datalog.columnar` (identical results *and*
      identical work counters to ``"compiled"``).  The mirror is cached
      across :meth:`run` calls on the same graph object (detected via the
      graph's mutation counter), so incremental deltas — the
      :class:`~repro.owl.kb.MaterializedKB` load path — pay only for their
      own rows.

    ``compile_rules=False`` remains as the legacy spelling of
    ``engine="generic"``.

    >>> from repro.datalog.parser import parse_rules
    >>> from repro.rdf import Graph, URI, Triple
    >>> rules = parse_rules('''@prefix ex: <ex:>
    ... [t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]''')
    >>> g = Graph([Triple(URI("ex:1"), URI("ex:p"), URI("ex:2")),
    ...            Triple(URI("ex:2"), URI("ex:p"), URI("ex:3"))])
    >>> result = SemiNaiveEngine(rules).run(g)
    >>> len(result.inferred)
    1
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        max_iterations: int | None = None,
        compile_rules: bool = True,
        engine: EngineKind | None = None,
        store: StoreKind | None = None,
        memory_budget_bytes: int | None = None,
        sanitize: bool | None = None,
    ) -> None:
        self.rules = tuple(rules)
        #: Safety valve for runaway rule sets; ``None`` means run to fixpoint.
        self.max_iterations = max_iterations
        if engine is None:
            engine = "compiled" if compile_rules else "generic"
        if engine not in ("generic", "compiled", "columnar"):
            raise ValueError(f"unknown engine {engine!r}")
        if store is None:
            store = "run" if memory_budget_bytes is not None else "dense"
        if store not in ("dense", "run"):
            raise ValueError(f"unknown store {store!r}")
        if engine != "columnar" and (
            store == "run" or memory_budget_bytes is not None
        ):
            raise ValueError(
                "store='run' / memory_budget_bytes require engine='columnar'"
            )
        #: Columnar mirror storage: ``"dense"`` keeps an
        #: :class:`~repro.rdf.idstore.IdGraph`, ``"run"`` a memory-budgeted
        #: :class:`~repro.rdf.runstore.RunStore`.
        self.store_kind: StoreKind = store
        self.memory_budget_bytes = memory_budget_bytes
        #: Tri-state runtime-sanitizer switch: an explicit True/False wins,
        #: None defers to the REPRO_SANITIZE environment variable (resolved
        #: lazily at store construction, so the env var works unplumbed).
        self.sanitize = sanitize
        self.engine_kind: EngineKind = engine
        self.compile_rules = engine != "generic"
        for rule in self.rules:
            if not isinstance(rule, Rule):
                raise TypeError(f"expected Rule, got {rule!r}")
        self._columnar = None
        self._kernels: list = []
        self._dispatch: DispatchIndex | None = None
        #: Columnar mirror cache: (graph object, graph version at sync).
        self._mirror_state: tuple[Graph, int] | None = None
        self._mirror = None
        if engine == "columnar":
            # Imported lazily: columnar depends on this module's stats
            # types, so a top-level import would be circular.
            from repro.datalog.columnar import ColumnarEngine
            from repro.rdf.dictionary import TermDictionary

            self._columnar = ColumnarEngine(
                self.rules, TermDictionary(), max_iterations=max_iterations
            )
        elif engine == "compiled":
            plans = [build_plan(r) for r in self.rules]
            self._kernels = [
                compile_plan(p) or GenericKernel(p.rule) for p in plans
            ]
            self._dispatch = DispatchIndex(plans)
        else:
            self._kernels = [GenericKernel(r) for r in self.rules]

    @property
    def kernel_kinds(self) -> tuple[str, ...]:
        """Executor chosen per rule ('scan' / 'join' / 'generic'), in rule
        order — diagnostic surface for tests and the experiment harness.
        For the columnar engine these are the id-kernel kinds (same plan
        classification)."""
        if self._columnar is not None:
            return self._columnar.kernel_kinds
        return tuple(k.kind.value for k in self._kernels)

    # -- public API ---------------------------------------------------------

    def run(
        self,
        graph: Graph,
        delta: Iterable[Triple] | None = None,
    ) -> FixpointResult:
        """Run to fixpoint, mutating ``graph`` in place.

        ``delta=None`` evaluates from scratch (every triple is "new").
        Passing an iterable of triples resumes an existing fixpoint: only
        derivations involving at least one of those triples (transitively)
        are recomputed.  Triples in ``delta`` not yet present in ``graph``
        are inserted first.
        """
        if self._columnar is not None:
            return self._run_columnar(graph, delta)

        stats = EngineStats()
        inferred = Graph()

        if delta is None:
            current_delta = graph.copy()
        else:
            current_delta = Graph()
            for t in delta:
                graph.add(t)
                current_delta.add(t)

        n_rules = len(self._kernels)
        while len(current_delta) > 0:
            if (
                self.max_iterations is not None
                and stats.iterations >= self.max_iterations
            ):
                raise RuntimeError(
                    f"fixpoint not reached after {self.max_iterations} iterations"
                )
            stats.iterations += 1
            if self._dispatch is not None:
                live = self._dispatch.candidates(current_delta.predicates())
                stats.rules_dispatched += len(live)
                stats.rules_skipped += n_rules - len(live)
                kernels = [self._kernels[i] for i in live]
            else:
                stats.rules_dispatched += n_rules
                kernels = self._kernels
            next_delta = Graph()
            for kernel in kernels:
                for triple in kernel.eval_delta(graph, current_delta, stats):
                    if triple is None:
                        continue
                    stats.firings += 1
                    if triple not in graph and triple not in next_delta:
                        next_delta.add(triple)
            # Commit the round: new facts join the database and become the
            # next delta.  (Insertion is deferred to here so that within a
            # round every rule sees the same database state.)
            for triple in next_delta:
                graph.add(triple)
                inferred.add(triple)
                stats.derived += 1
            current_delta = next_delta

        return FixpointResult(graph=graph, inferred=inferred, stats=stats)

    def apply(
        self,
        graph: Graph,
        adds: Iterable[Triple] = (),
        removes: Iterable[Triple] = (),
        asserted: Graph | None = None,
    ) -> ApplyResult:
        """Incrementally maintain a materialized closure under additions
        and retractions (delete-and-rederive), mutating ``graph`` in
        place.

        ``graph`` must be a closure previously computed by :meth:`run`
        with this engine's rules; ``asserted`` is the *post-retraction*
        base graph (explicit facts only) — retracted facts must already
        be absent from it, and rows of it that get overdeleted as
        consequences of a retraction are restored (asserted facts
        survive unless retracted themselves).  See
        :mod:`repro.datalog.incremental` for the phase structure.
        """
        # Imported lazily: incremental depends on this module's types.
        from repro.datalog import incremental

        if asserted is None:
            asserted = Graph()
        if self._columnar is None:
            outcome = incremental.dred_term(
                self, graph, adds, removes, asserted)
            return ApplyResult(
                graph=graph, added=outcome.added, removed=outcome.removed,
                stats=outcome.stats)
        return self._apply_columnar(graph, adds, removes, asserted)

    # -- columnar execution --------------------------------------------------

    def _encode_triples(self, triples: Iterable[Triple]):
        """Id columns for a batch of triples (minting fresh ids as
        needed — unknown terms simply never match any stored row)."""
        assert self._columnar is not None
        enc = self._columnar.dictionary.encode
        s_list: list[int] = []
        p_list: list[int] = []
        o_list: list[int] = []
        for t in triples:
            s_list.append(enc(t.s))
            p_list.append(enc(t.p))
            o_list.append(enc(t.o))
        return (
            np.asarray(s_list, dtype=np.int64),
            np.asarray(p_list, dtype=np.int64),
            np.asarray(o_list, dtype=np.int64),
        )

    def _apply_columnar(
        self,
        graph: Graph,
        adds: Iterable[Triple],
        removes: Iterable[Triple],
        asserted: Graph,
    ) -> ApplyResult:
        """The ``engine="columnar"`` apply path: run id-space DRed on the
        mirror, then replay the net row changes onto the term graph."""
        from repro.datalog import incremental
        from repro.rdf.idstore import IdGraph

        assert self._columnar is not None
        columnar = self._columnar
        dictionary = columnar.dictionary
        mirror = self._sync_mirror(graph)
        add_list = list(adds)
        adds_rows = self._encode_triples(add_list)
        removes_rows = self._encode_triples(removes)
        asserted_rows = IdGraph(capacity=len(asserted))
        asserted_rows.add_rows(*self._encode_triples(asserted))

        outcome = incremental.dred_id(
            columnar, mirror, adds_rows, removes_rows, asserted_rows)

        removed = Graph()
        rs, rp, ro = outcome.removed
        for s, p, o in zip(
            dictionary.decode_many(rs),
            dictionary.decode_many(rp),
            dictionary.decode_many(ro),
        ):
            t = Triple(s, p, o)
            graph.discard(t)
            removed.add(t)
        added = Graph()
        hs, hp, ho = outcome.added
        for s, p, o in zip(
            dictionary.decode_many(hs),
            dictionary.decode_many(hp),
            dictionary.decode_many(ho),
        ):
            t = Triple(s, p, o)
            graph.add(t)
            added.add(t)
        # The mutations above are our own mirror replay: re-stamp.
        self._mirror_state = (graph, graph.version)
        return ApplyResult(
            graph=graph, added=added, removed=removed, stats=outcome.stats)

    def _make_store(self, capacity: int):
        """A fresh mirror store of the configured kind.

        With the sanitizer on (``sanitize=True`` or ``REPRO_SANITIZE=1``)
        the sanitized store subclasses are constructed instead — the
        selection happens only here, so the unsanitized path carries no
        overhead.  Imported lazily: repro.analysis must stay importable
        without dragging the datalog layer in at module import time.
        """
        from repro.analysis.sanitize import make_store, sanitize_enabled

        if sanitize_enabled(self.sanitize):
            return make_store(
                self.store_kind,
                capacity=capacity,
                memory_budget_bytes=self.memory_budget_bytes,
                label="engine-mirror",
            )
        if self.store_kind == "run":
            from repro.rdf.runstore import RunStore

            return RunStore(memory_budget_bytes=self.memory_budget_bytes)
        from repro.rdf.idstore import IdGraph

        return IdGraph(capacity=capacity)

    def _sync_mirror(self, graph: Graph):
        """The id-encoded shadow of ``graph``, rebuilt only when the graph
        object or its mutation counter changed since the last sync."""
        state = self._mirror_state
        if (
            self._mirror is not None
            and state is not None
            and state[0] is graph
            and state[1] == graph.version
        ):
            return self._mirror
        assert self._columnar is not None
        dictionary = self._columnar.dictionary
        s_list: list[int] = []
        p_list: list[int] = []
        o_list: list[int] = []
        enc = dictionary.encode
        for s, p, o in graph.spo_items():
            s_list.append(enc(s))
            p_list.append(enc(p))
            o_list.append(enc(o))
        mirror = self._make_store(capacity=len(s_list))
        mirror.add_rows(
            np.asarray(s_list, dtype=np.int64),
            np.asarray(p_list, dtype=np.int64),
            np.asarray(o_list, dtype=np.int64),
        )
        self._mirror = mirror
        self._mirror_state = (graph, graph.version)
        return mirror

    def _run_columnar(
        self, graph: Graph, delta: Iterable[Triple] | None
    ) -> FixpointResult:
        """The ``engine="columnar"`` run path: sync the id mirror, run the
        id-space fixpoint, decode only the newly derived rows back into
        the term graph."""
        assert self._columnar is not None
        columnar = self._columnar
        dictionary = columnar.dictionary
        mirror = self._sync_mirror(graph)

        delta_rows = None
        if delta is not None:
            enc = dictionary.encode
            s_list: list[int] = []
            p_list: list[int] = []
            o_list: list[int] = []
            for t in delta:
                graph.add(t)
                s_list.append(enc(t.s))
                p_list.append(enc(t.p))
                o_list.append(enc(t.o))
            delta_rows = (
                np.asarray(s_list, dtype=np.int64),
                np.asarray(p_list, dtype=np.int64),
                np.asarray(o_list, dtype=np.int64),
            )

        result = columnar.run(mirror, delta_rows)
        inferred = Graph()
        hs, hp, ho = result.inferred
        for s, p, o in zip(
            dictionary.decode_many(hs),
            dictionary.decode_many(hp),
            dictionary.decode_many(ho),
        ):
            t = Triple(s, p, o)
            graph.add(t)
            inferred.add(t)
        # The adds above are our own: re-stamp the mirror as in sync.
        self._mirror_state = (graph, graph.version)
        return FixpointResult(graph=graph, inferred=inferred, stats=result.stats)
