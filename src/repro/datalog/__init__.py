"""Datalog substrate: rule AST, rule-text parser, forward (naive and
semi-naive) engines, a backward SLD engine with tabling, and rule analysis.

The paper's reasoners are rule engines over *negation-free datalog* whose
atoms are triple patterns.  This package implements that model directly:

* :class:`Atom` — a triple pattern ``(s, p, o)`` whose positions are ground
  terms or :class:`~repro.rdf.terms.Variable`.
* :class:`Rule` — ``head <- body`` with a single head atom and a conjunctive
  body (a horn clause), exactly the paper's rule shape.
* :class:`SemiNaiveEngine` — the production forward-chaining fixpoint
  evaluator used inside every partition.  By default it routes 1-atom and
  2-atom single-join rules through compiled kernels
  (:mod:`repro.datalog.plan` / :mod:`repro.datalog.compiled`) and skips
  rules per round via a predicate dispatch index; the generic interpreter
  remains as fallback and ablation baseline.
* :class:`NaiveEngine` — the textbook evaluator, kept as a test oracle and
  ablation baseline.
* :class:`BackwardEngine` — SLD resolution with tabling plus the Jena-style
  per-resource materialization driver the paper's Section VI analyzes
  (the source of the super-linear-speedup effect).
* :mod:`repro.datalog.analysis` — single-join classification (Section II)
  and the rule dependency graph (Algorithm 2).
"""

from repro.datalog.ast import Atom, Rule, Bindings
from repro.datalog.parser import RuleParseError, parse_rules, parse_rule
from repro.datalog.engine import SemiNaiveEngine, EngineStats, FixpointResult
from repro.datalog.plan import DispatchIndex, PlanKind, RulePlan, build_plan
from repro.datalog.compiled import JoinKernel, ScanKernel, compile_rule
from repro.datalog.columnar import ColumnarEngine
from repro.datalog.naive import NaiveEngine
from repro.datalog.backward import BackwardEngine, materialize_backward
from repro.datalog.analysis import (
    JoinClass,
    classify_rule,
    is_single_join,
    rule_dependency_graph,
    predicate_counts,
)

__all__ = [
    "Atom",
    "Rule",
    "Bindings",
    "RuleParseError",
    "parse_rules",
    "parse_rule",
    "SemiNaiveEngine",
    "NaiveEngine",
    "BackwardEngine",
    "materialize_backward",
    "EngineStats",
    "FixpointResult",
    "DispatchIndex",
    "PlanKind",
    "RulePlan",
    "build_plan",
    "JoinKernel",
    "ScanKernel",
    "ColumnarEngine",
    "compile_rule",
    "JoinClass",
    "classify_rule",
    "is_single_join",
    "rule_dependency_graph",
    "predicate_counts",
]
