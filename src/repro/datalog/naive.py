"""Naive bottom-up datalog evaluation.

The textbook fixpoint: apply every rule to the *entire* database each
iteration until nothing new is derived.  Kept for two reasons:

* as the correctness oracle for :class:`~repro.datalog.engine.SemiNaiveEngine`
  in the test suite (they must always agree);
* as the ablation baseline for the "semi-naive vs naive" bench called out in
  DESIGN.md Section 5.
"""

from __future__ import annotations

from typing import Sequence

from repro.datalog.ast import Bindings, Rule
from repro.datalog.engine import EngineStats, FixpointResult, match_atom
from repro.rdf.graph import Graph


class NaiveEngine:
    """Naive fixpoint evaluator (oracle/baseline; see module docstring)."""

    def __init__(self, rules: Sequence[Rule], max_iterations: int | None = None) -> None:
        self.rules = tuple(rules)
        self.max_iterations = max_iterations

    def run(self, graph: Graph) -> FixpointResult:
        """Run to fixpoint, mutating ``graph`` in place."""
        stats = EngineStats()
        inferred = Graph()
        changed = True
        while changed:
            if (
                self.max_iterations is not None
                and stats.iterations >= self.max_iterations
            ):
                raise RuntimeError(
                    f"fixpoint not reached after {self.max_iterations} iterations"
                )
            stats.iterations += 1
            changed = False
            new = Graph()
            for rule in self.rules:
                bindings_list: list[Bindings] = [{}]
                for atom in rule.body:
                    next_list: list[Bindings] = []
                    for b in bindings_list:
                        next_list.extend(match_atom(graph, atom, b, stats))
                    bindings_list = next_list
                    if not bindings_list:
                        break
                for b in bindings_list:
                    try:
                        triple = rule.head.to_triple(b)
                    except TypeError:
                        # Generalized triple (literal in subject position);
                        # dropped, mirroring SemiNaiveEngine.
                        continue
                    stats.firings += 1
                    if triple not in graph and triple not in new:
                        new.add(triple)
            for triple in new:
                graph.add(triple)
                inferred.add(triple)
                stats.derived += 1
                changed = True
        return FixpointResult(graph=graph, inferred=inferred, stats=stats)
