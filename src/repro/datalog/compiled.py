"""Compiled rule kernels — the specialized executors behind the plans.

The generic interpreter pays, per probe, for an ``Atom.substitute`` (a new
Atom), a bindings-dict copy in ``match_triple``, and a ``Triple`` per index
hit.  The kernels here eliminate all three on the engine's hot path:

* bindings are flat lists indexed by the plan's variable *slots*;
* index probes go through the :class:`~repro.rdf.graph.Graph` raw-index
  accessors (``objects_set`` / ``subjects_set`` / ``po_map`` / ...), which
  hand back the store's internal sets without materializing triples;
* the head is instantiated from a precompiled template; a ``Triple`` is
  only ever constructed for an actual head firing.

Two kernels cover the OWL-Horst workload:

:class:`ScanKernel`
    1-atom rules: scan the delta's matching index range, rewrite each hit
    through the head template.

:class:`JoinKernel`
    2-atom single-join rules: the semi-naive decomposition as two *halves*
    — ``(Δ ⋈ G)`` with atom 0 over the delta, then ``(Δ ⋈ (G ∖ Δ))`` with
    atom 1 over the delta.  Restricting the second half to ``G ∖ Δ`` makes
    the halves disjoint, so every derivation is produced exactly once (the
    generic interpreter instead dedupes bindings after the fact).  The
    restriction is applied inside the index walk: a candidate resolved
    away by the Δ-membership hash lookup is never yielded by the
    restricted relation and therefore does not count as a join probe —
    which is why the compiled engine reports strictly fewer probes than
    the generic interpreter on delta-heavy rounds (including round 1,
    where Δ is the whole database).

Anything else (3+ atoms, cross products) stays on the generic interpreter;
:func:`compile_plan` returns ``None`` for those and the engine falls back.

Work accounting is unchanged in meaning: one ``join_probes`` tick per
candidate tuple examined by a join, one ``firings`` tick per head
instantiation (counted by the engine), ``derived`` post-dedup.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.datalog.plan import AtomSpec, PlanKind, RulePlan, build_plan
from repro.datalog.ast import Rule
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.rdf.triple import Triple

#: (pos, slot) assignments and (pos, pos) equality checks.
_Assign = tuple[int, int]
_EqCheck = tuple[int, int]


def _raw_match(
    source: Graph, s: Term | None, p: Term | None, o: Term | None
) -> Iterator[tuple[Term, Term, Term]]:
    """Raw-tuple pattern match, mirroring ``Graph.match``'s index choice
    table (SPO/POS/OSP by bound-position mask) without Triple construction.
    """
    if s is not None:
        if p is not None:
            if o is not None:
                if source.contains_spo(s, p, o):
                    yield (s, p, o)
                return
            objs = source.objects_set(s, p)
            if objs:
                for obj in objs:
                    yield (s, p, obj)
            return
        if o is not None:
            preds = source.predicates_set(s, o)
            if preds:
                for pred in preds:
                    yield (s, pred, o)
            return
        po = source.po_map(s)
        if po:
            for pred, objs in po.items():
                for obj in objs:
                    yield (s, pred, obj)
        return
    if p is not None:
        if o is not None:
            subs = source.subjects_set(p, o)
            if subs:
                for sub in subs:
                    yield (sub, p, o)
            return
        os_ = source.os_map(p)
        if os_:
            for obj, subs in os_.items():
                for sub in subs:
                    yield (sub, p, obj)
        return
    if o is not None:
        sp = source.sp_map(o)
        if sp:
            for sub, preds in sp.items():
                for pred in preds:
                    yield (sub, pred, o)
        return
    yield from source.spo_items()


def _iter_candidates(
    source: Graph,
    s: Term | None,
    p: Term | None,
    o: Term | None,
    stats,
    exclude: Graph | None = None,
) -> Iterator[tuple[Term, Term, Term]]:
    """Candidates of a triple pattern, counted as join probes.

    With ``exclude``, the pattern is evaluated against the restricted
    relation ``source ∖ exclude``: excluded candidates are resolved by the
    same hash lookup that implements the restriction and are neither
    yielded nor counted.
    """
    if exclude is None or len(exclude) == 0:
        for cand in _raw_match(source, s, p, o):
            stats.join_probes += 1
            yield cand
    else:
        contains = exclude.contains_spo
        for cand in _raw_match(source, s, p, o):
            if contains(cand[0], cand[1], cand[2]):
                continue
            stats.join_probes += 1
            yield cand


def _compile_atom(
    spec: AtomSpec, bound_slots: frozenset[int]
) -> tuple[list[Term | None], list[_Assign], list[_Assign], list[_EqCheck]]:
    """Split an atom spec into probe machinery, given which slots are
    already bound when the atom is evaluated.

    Returns ``(const_key, slot_keys, sets, eq_checks)``:

    * ``const_key`` — the ground terms as a 3-entry pattern key (``None``
      where not ground);
    * ``slot_keys`` — positions filled into the key from bound slots;
    * ``sets`` — free positions that bind a slot (first occurrence);
    * ``eq_checks`` — position pairs that must be equal (a free slot
      occurring twice in this atom).
    """
    const: list[Term | None] = [None, None, None]
    slot_keys: list[_Assign] = []
    sets: list[_Assign] = []
    eq_checks: list[_EqCheck] = []
    first_free: dict[int, int] = {}
    for pos, (kind, val) in enumerate(spec):
        if kind == "g":
            const[pos] = val  # type: ignore[assignment]
        elif val in bound_slots:
            slot_keys.append((pos, val))  # type: ignore[arg-type]
        elif val in first_free:
            eq_checks.append((first_free[val], pos))  # type: ignore[index]
        else:
            first_free[val] = pos  # type: ignore[index]
            sets.append((pos, val))  # type: ignore[arg-type]
    return const, slot_keys, sets, eq_checks


def _compile_head(spec: AtomSpec) -> Callable[[list], Triple | None]:
    """Head template: flat env -> Triple, or ``None`` for a generalized
    triple (e.g. a literal bound into subject position — RDF drops it)."""
    getters: list[Callable[[list], Term]] = []
    for kind, val in spec:
        if kind == "g":
            getters.append(lambda env, t=val: t)  # type: ignore[misc]
        else:
            getters.append(lambda env, i=val: env[i])  # type: ignore[misc]
    get_s, get_p, get_o = getters

    def build(env: list) -> Triple | None:
        try:
            return Triple(get_s(env), get_p(env), get_o(env))
        except TypeError:
            return None

    return build


class ScanKernel:
    """Direct scan-and-rewrite executor for 1-atom rules."""

    kind = PlanKind.SCAN

    def __init__(self, plan: RulePlan) -> None:
        self.rule = plan.rule
        self.plan = plan
        const, _, sets, eqs = _compile_atom(plan.atoms[0].spec, frozenset())
        self._const = const
        self._sets = sets
        self._eqs = eqs
        self._build = _compile_head(plan.head.spec)
        self._nvars = plan.nvars

    def eval_delta(
        self, graph: Graph, delta: Graph, stats
    ) -> Iterator[Triple | None]:
        cs, cp, co = self._const
        sets, eqs, build = self._sets, self._eqs, self._build
        env: list = [None] * self._nvars
        for cand in _iter_candidates(delta, cs, cp, co, stats):
            matched = True
            for a, b in eqs:
                if cand[a] != cand[b]:
                    matched = False
                    break
            if not matched:
                continue
            for pos, slot in sets:
                env[slot] = cand[pos]
            yield build(env)


class JoinKernel:
    """Single-join executor for 2-atom rules.

    Construction precomputes, for each of the two semi-naive halves, the
    delta-side scan shape and the other atom's probe shape (which index
    mask to hit once the join variable is bound).
    """

    kind = PlanKind.JOIN

    def __init__(self, plan: RulePlan) -> None:
        self.rule = plan.rule
        self.plan = plan
        self._build = _compile_head(plan.head.spec)
        self._nvars = plan.nvars
        halves = []
        for delta_pos in (0, 1):
            datom = plan.atoms[delta_pos]
            oatom = plan.atoms[1 - delta_pos]
            d_const, _, d_sets, d_eqs = _compile_atom(datom.spec, frozenset())
            o_const, o_keys, o_sets, o_eqs = _compile_atom(oatom.spec, datom.slots)
            halves.append((d_const, d_sets, d_eqs, o_const, o_keys, o_sets, o_eqs))
        self._halves = tuple(halves)

    def eval_delta(
        self, graph: Graph, delta: Graph, stats
    ) -> Iterator[Triple | None]:
        build = self._build
        env: list = [None] * self._nvars
        for half_no, half in enumerate(self._halves):
            d_const, d_sets, d_eqs, o_const, o_keys, o_sets, o_eqs = half
            # Second half joins the delta against G ∖ Δ so the two halves
            # partition the derivations (no duplicate bindings).
            exclude = delta if half_no == 1 else None
            dcs, dcp, dco = d_const
            for dcand in _iter_candidates(delta, dcs, dcp, dco, stats):
                matched = True
                for a, b in d_eqs:
                    if dcand[a] != dcand[b]:
                        matched = False
                        break
                if not matched:
                    continue
                for pos, slot in d_sets:
                    env[slot] = dcand[pos]
                key: list = [o_const[0], o_const[1], o_const[2]]
                for pos, slot in o_keys:
                    key[pos] = env[slot]
                for ocand in _iter_candidates(
                    graph, key[0], key[1], key[2], stats, exclude
                ):
                    matched = True
                    for a, b in o_eqs:
                        if ocand[a] != ocand[b]:
                            matched = False
                            break
                    if not matched:
                        continue
                    for pos, slot in o_sets:
                        env[slot] = ocand[pos]
                    yield build(env)


def compile_plan(plan: RulePlan):
    """The specialized kernel for a plan, or ``None`` when the rule needs
    the generic interpreter."""
    if plan.kind is PlanKind.SCAN:
        return ScanKernel(plan)
    if plan.kind is PlanKind.JOIN:
        return JoinKernel(plan)
    return None


def compile_rule(rule: Rule):
    """Convenience: plan + compile in one step (``None`` -> generic)."""
    return compile_plan(build_plan(rule))


def compile_rules(rules: Sequence[Rule]) -> list:
    """Kernels (or ``None`` placeholders) for a whole rule set."""
    return [compile_rule(r) for r in rules]
