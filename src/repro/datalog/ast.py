"""Rule abstract syntax: atoms, rules, bindings, unification.

Terminology follows the paper (Section II): a rule is written
``head <- body``; the head has one clause; the body is a horn clause with
many sub-goals.  A *single-join rule* has exactly two body sub-goals that
share a variable — the class the data-partitioning correctness argument
rests on (see :mod:`repro.datalog.analysis`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence

from repro.rdf.terms import Term, Variable
from repro.rdf.triple import Triple

#: A substitution: variable -> ground term.
Bindings = Dict[Variable, Term]


class Atom:
    """A triple pattern; each position is a ground term or a variable.

    >>> from repro.rdf.terms import URI, Variable
    >>> a = Atom(Variable("x"), URI("ex:p"), Variable("y"))
    >>> sorted(v.name for v in a.variables())
    ['x', 'y']
    """

    __slots__ = ("s", "p", "o", "_hash")

    def __init__(self, s: Term, p: Term, o: Term) -> None:
        for pos, term in (("subject", s), ("predicate", p), ("object", o)):
            if not isinstance(term, Term):
                raise TypeError(f"atom {pos} must be a Term, got {term!r}")
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "o", o)
        object.__setattr__(self, "_hash", hash((s, p, o)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    def __reduce__(self):
        # Reconstruct through __init__: the immutability guard blocks
        # pickle's default slot-state restore (spawn-based multiprocessing
        # pickles rule sets, where fork inherits them).
        return (Atom, (self.s, self.p, self.o))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Atom):
            return NotImplemented
        return self.s == other.s and self.p == other.p and self.o == other.o

    def __iter__(self) -> Iterator[Term]:
        yield self.s
        yield self.p
        yield self.o

    def __repr__(self) -> str:
        return f"Atom({self.s!r}, {self.p!r}, {self.o!r})"

    def __str__(self) -> str:
        return f"({self.s.n3()} {self.p.n3()} {self.o.n3()})"

    # -- variable handling --------------------------------------------------

    def variables(self) -> set[Variable]:
        return {t for t in self if isinstance(t, Variable)}

    def is_ground(self) -> bool:
        return not any(isinstance(t, Variable) for t in self)

    def substitute(self, bindings: Bindings) -> "Atom":
        """Apply a substitution; unbound variables stay variables.

        Variable-to-variable chains (``x -> y, y -> ground``), which the
        backward engine's unifier can create, are followed to their end.
        Chains are acyclic by construction (a variable is never rebound),
        so the walk terminates.
        """
        def sub(t: Term) -> Term:
            while isinstance(t, Variable) and t in bindings:
                t = bindings[t]
            return t

        return Atom(sub(self.s), sub(self.p), sub(self.o))

    def to_triple(self, bindings: Bindings | None = None) -> Triple:
        """Ground this atom into a triple.  Raises if any position remains
        unbound — rules whose head variables don't all occur in the body are
        rejected at construction, so this only fires on internal errors."""
        a = self.substitute(bindings) if bindings else self
        if not a.is_ground():
            raise ValueError(f"atom not ground after substitution: {a}")
        return Triple(a.s, a.p, a.o)

    @classmethod
    def from_triple(cls, triple: Triple) -> "Atom":
        return cls(triple.s, triple.p, triple.o)

    # -- matching -----------------------------------------------------------

    def match_triple(
        self, triple: Triple, bindings: Bindings | None = None
    ) -> Bindings | None:
        """Match a ground triple against this pattern under existing
        bindings.  Returns the *extended* bindings dict (a new dict), or
        ``None`` on mismatch.  Repeated variables must bind consistently:

        >>> from repro.rdf.terms import URI, Variable
        >>> from repro.rdf.triple import Triple
        >>> a = Atom(Variable("x"), URI("ex:p"), Variable("x"))
        >>> a.match_triple(Triple(URI("ex:a"), URI("ex:p"), URI("ex:b"))) is None
        True
        """
        out: Bindings | None = None
        for pat, val in ((self.s, triple.s), (self.p, triple.p), (self.o, triple.o)):
            if isinstance(pat, Variable):
                if out is not None and pat in out:
                    bound = out[pat]
                elif bindings is not None and pat in bindings:
                    bound = bindings[pat]
                else:
                    bound = None
                if bound is None:
                    if out is None:
                        out = dict(bindings) if bindings else {}
                    out[pat] = val
                elif bound != val:
                    return None
            elif pat != val:
                return None
        if out is None:
            out = dict(bindings) if bindings else {}
        return out

    def unify_atom(self, other: "Atom") -> bool:
        """Whether this pattern can unify with another pattern (variables
        are local to each side).  Used to build rule-dependency edges:
        positions conflict only when both are ground and differ."""
        for a, b in zip(self, other):
            if isinstance(a, Variable) or isinstance(b, Variable):
                continue
            if a != b:
                return False
        return True


class Rule:
    """A datalog rule ``head <- body``.

    * exactly one head atom (the paper's rule shape);
    * every head variable must occur in the body (range restriction / safety
      — guarantees derived triples are ground);
    * the body is an ordered tuple of atoms; evaluation order follows body
      order, with the engines reordering internally for joins.

    >>> from repro.rdf.terms import URI, Variable
    >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
    >>> p = URI("ex:brotherOf")
    >>> r = Rule("trans", [Atom(x, p, y), Atom(y, p, z)], Atom(x, p, z))
    >>> r.arity
    2
    """

    __slots__ = ("name", "body", "head", "_hash")

    def __init__(self, name: str, body: Sequence[Atom], head: Atom) -> None:
        if not isinstance(head, Atom):
            raise TypeError(f"rule head must be an Atom, got {head!r}")
        body = tuple(body)
        if not body:
            raise ValueError(f"rule {name!r}: body must have at least one atom")
        for atom in body:
            if not isinstance(atom, Atom):
                raise TypeError(f"rule {name!r}: body item {atom!r} is not an Atom")
        body_vars: set[Variable] = set()
        for atom in body:
            body_vars |= atom.variables()
        unsafe = head.variables() - body_vars
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise ValueError(
                f"rule {name!r} is unsafe: head variable(s) {names} not in body"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "_hash", hash((name, body, head)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rule is immutable")

    def __reduce__(self):
        return (Rule, (self.name, self.body, self.head))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Rule):
            return NotImplemented
        return (
            self.name == other.name
            and self.body == other.body
            and self.head == other.head
        )

    def __repr__(self) -> str:
        return f"Rule({self.name!r}, {list(self.body)!r}, {self.head!r})"

    def __str__(self) -> str:
        body = " ".join(str(a) for a in self.body)
        return f"[{self.name}: {body} -> {self.head}]"

    @property
    def arity(self) -> int:
        """Number of body sub-goals."""
        return len(self.body)

    def variables(self) -> set[Variable]:
        out = self.head.variables()
        for atom in self.body:
            out |= atom.variables()
        return out

    def rename_variables(self, suffix: str) -> "Rule":
        """A copy with every variable renamed ``name -> name_suffix`` —
        used by the backward engine to standardize clauses apart."""
        mapping = {v: Variable(f"{v.name}_{suffix}") for v in self.variables()}
        return Rule(
            self.name,
            [a.substitute(mapping) for a in self.body],  # type: ignore[arg-type]
            self.head.substitute(mapping),
        )

    def predicates(self) -> set[Term]:
        """Ground predicates mentioned anywhere in the rule (for statistics
        and dependency-edge weighting)."""
        out: set[Term] = set()
        for atom in (*self.body, self.head):
            if not isinstance(atom.p, Variable):
                out.add(atom.p)
        return out


def rules_by_name(rules: Iterable[Rule]) -> dict[str, Rule]:
    """Index rules by name, rejecting duplicates (partitioning and routing
    identify rules by name across process boundaries)."""
    out: dict[str, Rule] = {}
    for r in rules:
        if r.name in out:
            raise ValueError(f"duplicate rule name {r.name!r}")
        out[r.name] = r
    return out
