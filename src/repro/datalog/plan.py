"""Join-plan selection for the compiled rule kernels.

The OWL-Horst compiler emits almost exclusively 1-atom (zero-join) and
2-atom (single-join) rules, so the semi-naive engine does not need a
general join interpreter on its hot path.  This module analyzes each rule
once, at engine construction, and produces a declarative :class:`RulePlan`
that the kernels in :mod:`repro.datalog.compiled` turn into specialized
executors:

* variable *slots* — every rule variable gets a small integer index so the
  kernels can carry bindings as flat lists instead of ``{Variable: Term}``
  dicts;
* per-atom *specs* — each triple-pattern position is either a ground term
  or a slot, which fixes the index shape (SPO/POS/OSP mask) to probe for
  any subset of bound slots;
* the *dispatch signature* — the set of ground body predicates, which the
  engine's :class:`DispatchIndex` uses to skip rules that no delta triple
  can possibly feed.

Plans are pure analysis: they never touch a graph.  Anything that is not a
1- or 2-atom single-join body is classified :data:`PlanKind.GENERIC` and
executed by the existing interpreter (the correctness fallback).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datalog.ast import Atom, Rule
from repro.rdf.terms import Term, Variable

#: One position of an atom spec: ``("g", term)`` for a ground term or
#: ``("v", slot)`` for a variable slot.
PosSpec = tuple[str, object]
AtomSpec = tuple[PosSpec, PosSpec, PosSpec]


class PlanKind(enum.Enum):
    """Which executor a rule compiles to."""

    #: 1-atom body: a direct scan-and-rewrite kernel over the delta.
    SCAN = "scan"
    #: 2-atom body sharing at least one variable: the single-join kernel.
    JOIN = "join"
    #: Everything else (3+ atoms, or a 2-atom cross product): the generic
    #: interpreter.
    GENERIC = "generic"


@dataclass(frozen=True)
class AtomPlan:
    """One body (or head) atom, resolved to slots."""

    spec: AtomSpec
    #: Slots bound by matching this atom.
    slots: frozenset[int]


@dataclass(frozen=True)
class RulePlan:
    """Everything the kernels need to specialize one rule."""

    rule: Rule
    kind: PlanKind
    #: Total number of variable slots in the rule.
    nvars: int
    #: ``var_order[slot]`` is the Variable assigned to that slot.
    var_order: tuple[Variable, ...]
    atoms: tuple[AtomPlan, ...]
    head: AtomPlan
    #: Ground predicates of the body atoms, or ``None`` if any body atom
    #: has a variable in predicate position (rule must always dispatch).
    body_predicates: frozenset[Term] | None


def _atom_plan(atom: Atom, slot_of: dict[Variable, int]) -> AtomPlan:
    spec: list[PosSpec] = []
    slots: set[int] = set()
    for term in (atom.s, atom.p, atom.o):
        if isinstance(term, Variable):
            slot = slot_of[term]
            spec.append(("v", slot))
            slots.add(slot)
        else:
            spec.append(("g", term))
    return AtomPlan(spec=(spec[0], spec[1], spec[2]), slots=frozenset(slots))


def build_plan(rule: Rule) -> RulePlan:
    """Analyze one rule into a :class:`RulePlan`.

    >>> from repro.datalog.parser import parse_rules
    >>> r = parse_rules('''@prefix ex: <ex:>
    ... [t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]''')[0]
    >>> plan = build_plan(r)
    >>> plan.kind, plan.nvars
    (<PlanKind.JOIN: 'join'>, 3)
    """
    slot_of: dict[Variable, int] = {}
    for atom in rule.body:
        for term in (atom.s, atom.p, atom.o):
            if isinstance(term, Variable) and term not in slot_of:
                slot_of[term] = len(slot_of)
    # Head variables are body variables by the safety check in Rule.

    atoms = tuple(_atom_plan(a, slot_of) for a in rule.body)
    head = _atom_plan(rule.head, slot_of)

    if len(atoms) == 1:
        kind = PlanKind.SCAN
    elif len(atoms) == 2 and (atoms[0].slots & atoms[1].slots):
        kind = PlanKind.JOIN
    else:
        kind = PlanKind.GENERIC

    preds: set[Term] = set()
    wildcard = False
    for atom in rule.body:
        if isinstance(atom.p, Variable):
            wildcard = True
            break
        preds.add(atom.p)

    var_order = tuple(sorted(slot_of, key=slot_of.__getitem__))
    return RulePlan(
        rule=rule,
        kind=kind,
        nvars=len(slot_of),
        var_order=var_order,
        atoms=atoms,
        head=head,
        body_predicates=None if wildcard else frozenset(preds),
    )


class DispatchIndex:
    """Predicate → rules dispatch for the semi-naive round loop.

    A semi-naive derivation needs at least one body atom to match a delta
    triple, and a body atom with ground predicate ``p`` can only match
    delta triples whose predicate is ``p``.  So a rule whose ground body
    predicates are all absent from the delta's predicate set cannot fire
    this round and is skipped without touching any index.  Rules with a
    variable-predicate body atom (the sameAs-propagation split) match any
    triple and are always dispatched.

    >>> from repro.datalog.parser import parse_rules
    >>> rules = parse_rules('''@prefix ex: <ex:>
    ... [a: (?x ex:p ?y) -> (?x ex:q ?y)]
    ... [b: (?x ex:r ?y) -> (?x ex:s ?y)]''')
    >>> from repro.rdf.terms import URI
    >>> idx = DispatchIndex([build_plan(r) for r in rules])
    >>> idx.candidates({URI("ex:p")})
    [0]
    """

    def __init__(self, plans: Sequence[RulePlan]) -> None:
        self.n_rules = len(plans)
        self._by_predicate: dict[Term, set[int]] = {}
        self._always: set[int] = set()
        for i, plan in enumerate(plans):
            if plan.body_predicates is None:
                self._always.add(i)
                continue
            for p in plan.body_predicates:
                self._by_predicate.setdefault(p, set()).add(i)

    def candidates(self, delta_predicates: Iterable[Term]) -> list[int]:
        """Indices of rules that the delta can feed, in rule order (rule
        order is part of the engine's determinism contract)."""
        live = set(self._always)
        for p in delta_predicates:
            hit = self._by_predicate.get(p)
            if hit is not None:
                live |= hit
        return sorted(live)
