"""Rule analysis: join classification and the rule-dependency graph.

Section II of the paper observes that after schema compilation, all but one
of the OWL-Horst rules are **single-join rules** — two body sub-goals
sharing a variable.  The data-partitioning approach is only sound for rule
sets in that class (plus trivially-parallel zero-join rules), so
:func:`check_data_partitionable` is the safety gate the partitioner calls.

Algorithm 2 (rule partitioning) builds a *rule dependency graph*: one vertex
per rule, an edge when the head of one rule can unify with a body sub-goal
of another (a tuple produced by the first may trigger the second), with
optional edge weights from predicate statistics.  That graph is produced
here and partitioned by :mod:`repro.graphpart`.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.datalog.ast import Rule
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable


class JoinClass(enum.Enum):
    """Body shape of a rule, per the paper's taxonomy (plus the star-join
    extension; see :data:`STAR_JOIN`)."""

    #: One body atom: no join at all; fires locally on any matching tuple.
    ZERO_JOIN = "zero-join"
    #: Two body atoms sharing at least one variable (the paper's class).
    SINGLE_JOIN = "single-join"
    #: Three or more body atoms that all share one common variable in a
    #: subject/object position — e.g. the compiled owl:intersectionOf rule
    #: ``(?x type D1) (?x type D2) -> (?x type C)``.  Sound for the
    #: paper's data partitioning by the same argument as single-join:
    #: every participating tuple is collected at the shared resource's
    #: owner.  (A strict extension of the paper's class.)
    STAR_JOIN = "star-join"
    #: Two body atoms sharing no variable (a cross product — not safe for
    #: owner-based data partitioning, and never produced by the compiler).
    CARTESIAN = "cartesian"
    #: Three or more body atoms with no single shared variable (e.g. raw
    #: rdfp11 sameAs-propagation before schema compilation).
    MULTI_JOIN = "multi-join"


def _common_so_variable(rule: Rule) -> Variable | None:
    """A variable occurring in a subject/object position of *every* body
    atom, or None."""
    common: set[Variable] | None = None
    for atom in rule.body:
        positional = {
            t for t in (atom.s, atom.o) if isinstance(t, Variable)
        }
        common = positional if common is None else (common & positional)
        if not common:
            return None
    return next(iter(common)) if common else None


def classify_rule(rule: Rule) -> JoinClass:
    """Classify a rule's body shape.

    >>> from repro.datalog.parser import parse_rules
    >>> r = parse_rules('''@prefix ex: <ex:>
    ... [t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]''')[0]
    >>> classify_rule(r)
    <JoinClass.SINGLE_JOIN: 'single-join'>
    """
    if rule.arity == 1:
        return JoinClass.ZERO_JOIN
    if rule.arity == 2:
        shared = rule.body[0].variables() & rule.body[1].variables()
        return JoinClass.SINGLE_JOIN if shared else JoinClass.CARTESIAN
    if _common_so_variable(rule) is not None:
        return JoinClass.STAR_JOIN
    return JoinClass.MULTI_JOIN


def is_single_join(rule: Rule) -> bool:
    return classify_rule(rule) is JoinClass.SINGLE_JOIN


def join_variables(rule: Rule) -> set[Variable]:
    """The variables shared by the two body atoms of a single-join rule."""
    if classify_rule(rule) is not JoinClass.SINGLE_JOIN:
        raise ValueError(f"rule {rule.name!r} is not single-join")
    return rule.body[0].variables() & rule.body[1].variables()


@dataclass(frozen=True)
class PartitionabilityDiagnostic:
    """Why one rule breaks the data-partitioning soundness argument.

    Names the offending body atoms and the shared-variable structure, not
    just the rule — the difference between "rule rdfp11 (multi-join)" and
    an actionable message showing which sub-goals fail to share a
    subject/object variable.
    """

    rule_name: str
    join_class: JoinClass
    reason: str
    #: The body atoms involved in the violation, rendered as patterns.
    atoms: tuple[str, ...]
    #: Variable names shared between consecutive body-atom pairs (empty
    #: sets expose exactly where the join chain breaks).
    shared_variables: tuple[frozenset[str], ...]

    def format(self) -> str:
        shared = ", ".join(
            "{" + ", ".join(sorted(s)) + "}" for s in self.shared_variables
        ) or "-"
        return (
            f"{self.rule_name} ({self.join_class.value}): {self.reason} "
            f"[atoms: {'; '.join(self.atoms)}; shared variables: {shared}]"
        )


def _pairwise_shared(rule: Rule) -> tuple[frozenset[str], ...]:
    """Variable names shared by each consecutive body-atom pair."""
    out = []
    for a, b in zip(rule.body, rule.body[1:]):
        out.append(
            frozenset(v.name for v in a.variables() & b.variables())
        )
    return tuple(out)


def partitionability_diagnostics(
    rules: Iterable[Rule],
) -> list[PartitionabilityDiagnostic]:
    """The rule gate's findings, one structured diagnostic per offender
    (empty list == the rule set is data-partitionable)."""
    out: list[PartitionabilityDiagnostic] = []
    for rule in rules:
        cls = classify_rule(rule)
        if cls in (JoinClass.ZERO_JOIN, JoinClass.STAR_JOIN):
            continue
        atoms = tuple(str(a) for a in rule.body)
        if cls is JoinClass.CARTESIAN:
            out.append(
                PartitionabilityDiagnostic(
                    rule.name, cls,
                    "body atoms share no variable (cross product): no single "
                    "owner collects all participating tuples",
                    atoms, _pairwise_shared(rule),
                )
            )
            continue
        if cls is JoinClass.MULTI_JOIN:
            out.append(
                PartitionabilityDiagnostic(
                    rule.name, cls,
                    "3+ body atoms with no variable common to every atom's "
                    "subject/object positions: tuples scatter across owners",
                    atoms, _pairwise_shared(rule),
                )
            )
            continue
        shared = join_variables(rule)
        offending = [
            atom for atom in rule.body
            if isinstance(atom.p, Variable) and atom.p in shared
        ]
        if offending:
            out.append(
                PartitionabilityDiagnostic(
                    rule.name, cls,
                    "joins on predicate position: ownership is keyed on "
                    "subject/object resources, so the joining tuples need "
                    "not co-locate",
                    tuple(str(a) for a in offending),
                    (frozenset(v.name for v in shared),),
                )
            )
    return out


def check_data_partitionable(rules: Iterable[Rule]) -> None:
    """Raise ``ValueError`` unless every rule is zero-join, single-join
    (with the shared variable confined to subject/object positions), or
    star-join.

    The ownership argument (Section III-A) requires the joining resource to
    be the subject or object of both tuples — that is what "all tuples with
    the resource as subject or object live on the owner" guarantees.  The
    same argument covers star joins (all body atoms share one s/o
    variable): every participating tuple is collected at that resource's
    owner.  A rule joining on the *predicate* position would need a
    different placement rule, and the OWL-Horst compiler never emits one;
    this check makes the assumption explicit instead of silently producing
    wrong fixpoints.

    The error message carries :func:`partitionability_diagnostics` detail:
    the offending atoms and shared-variable sets, not just rule names.
    """
    diagnostics = partitionability_diagnostics(rules)
    if diagnostics:
        raise ValueError(
            "data partitioning is only sound for zero-join/single-join/"
            "star-join rule sets; offending rules: "
            + "; ".join(d.format() for d in diagnostics)
        )


def predicate_counts(graph: Graph) -> Counter:
    """Triple count per predicate — the "a priori knowledge about the
    distribution of different predicates" the paper suggests for weighting
    rule-dependency edges."""
    counts: Counter = Counter()
    for p in graph.predicates():
        counts[p] = graph.count(p=p)
    return counts


def rule_dependency_graph(
    rules: Sequence[Rule],
    predicate_stats: Mapping[Term, int] | None = None,
) -> tuple[list[Rule], dict[tuple[int, int], int]]:
    """Algorithm 2, steps 1–3: build the rule dependency graph.

    Returns ``(vertices, edges)`` where ``vertices`` is the rule list (vertex
    i = rules[i]) and ``edges`` maps undirected index pairs ``(i, j)`` with
    ``i < j`` to a positive integer weight.  An edge exists when the head of
    one rule unifies with some body atom of the other (in either direction —
    the paper's graph is undirected for partitioning purposes).

    With ``predicate_stats`` (triple counts per predicate), an edge's weight
    is scaled by the producer's head-predicate frequency, implementing the
    paper's "weigh the edges ... based on the number of triples they may
    contribute"; otherwise all edges weigh 1.
    """
    vertices = list(rules)
    edges: dict[tuple[int, int], int] = {}
    for i, producer in enumerate(vertices):
        for j, consumer in enumerate(vertices):
            if i == j:
                continue
            if not _feeds(producer, consumer):
                continue
            key = (i, j) if i < j else (j, i)
            weight = 1
            if predicate_stats is not None:
                weight = max(1, _head_weight(producer, predicate_stats))
            edges[key] = max(edges.get(key, 0), weight)
    return vertices, edges


def _feeds(producer: Rule, consumer: Rule) -> bool:
    """True when a tuple derived by ``producer`` can match a body sub-goal
    of ``consumer`` (pattern unification, variables standardized apart by
    construction of distinct Variable objects being irrelevant here because
    ``unify_atom`` only compares ground positions)."""
    head = producer.head
    return any(head.unify_atom(body_atom) for body_atom in consumer.body)


def _head_weight(rule: Rule, stats: Mapping[Term, int]) -> int:
    p = rule.head.p
    if isinstance(p, Variable):
        # Variable-predicate heads (sameAs propagation) can produce any
        # predicate; weight by the total.
        return sum(stats.values())
    return int(stats.get(p, 0))


def self_recursive(rule: Rule) -> bool:
    """Whether a rule can consume its own output (e.g. transitivity)."""
    return _feeds(rule, rule)
