"""Backward chaining (SLD resolution) with tabling, and the Jena-style
per-resource materialization driver.

Why this exists
---------------
The paper's implementation materializes a KB through Jena's *hybrid*
reasoner: a backward engine (SLD resolution with tabling) answers, for each
resource ``r``, the query *"all triples with subject r"*.  Section VI
attributes the observed **super-linear speedups** to exactly this strategy:
its cost grows polynomially with the size of the KB each query runs against,
so partitioning the data shrinks the proof search space and reduces *total*
work, not just per-node work.  :func:`materialize_backward` reproduces that
driver; the experiments that need the super-linear effect (Figs 1, 3, 4) run
their reasoning through it.

Tabling scheme
--------------
We use *naive tabling*: every goal pattern gets a table of ground answers;
recursive subgoals read whatever answers their table currently holds; the
top-level query re-runs until no table grows (a least-fixpoint iteration).
This is simpler than OLDT suspend/resume and has the same answer set; it
terminates because tables grow monotonically within the finite Herbrand
base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datalog.ast import Atom, Bindings, Rule
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable
from repro.rdf.triple import Triple

#: Canonical table key: variables replaced by position-of-first-occurrence
#: markers, so (?a p ?b) and (?x p ?y) share a table but (?a p ?a) does not.
_TableKey = tuple


@dataclass
class BackwardStats:
    """Proof-search work counters for one engine instance."""

    goals_expanded: int = 0
    unifications: int = 0
    facts_scanned: int = 0
    answers: int = 0
    fixpoint_passes: int = 0
    #: Candidate entailment checks made by the Jena-style materialization
    #: driver (the "kn triples ... tries to prove each" loop).
    entailment_probes: int = 0

    @property
    def work(self) -> int:
        return (
            self.goals_expanded
            + self.unifications
            + self.facts_scanned
            + self.entailment_probes
        )

    def merge(self, other: "BackwardStats") -> None:
        self.goals_expanded += other.goals_expanded
        self.unifications += other.unifications
        self.facts_scanned += other.facts_scanned
        self.answers += other.answers
        self.fixpoint_passes += other.fixpoint_passes
        self.entailment_probes += other.entailment_probes


def _canonical_key(atom: Atom) -> _TableKey:
    """Pattern identity up to variable renaming."""
    seen: dict[Variable, int] = {}
    key: list[object] = []
    for term in atom:
        if isinstance(term, Variable):
            idx = seen.setdefault(term, len(seen))
            key.append(idx)
        else:
            key.append(term)
    return tuple(key)


#: Reserved goal-variable pool for canonicalized goals.  Rule authors must
#: not name variables ``__g*`` (the parser can't produce them from normal
#: rule text anyway); this guarantees goal and rule variables never collide,
#: removing the need to standardize rules apart on every use.
_CANON_VARS = tuple(Variable(f"__g{i}") for i in range(3))


def _canonical_atom(atom: Atom) -> Atom:
    """The atom with its variables renamed to the reserved ``__g*`` pool,
    matching :func:`_canonical_key` numbering."""
    seen: dict[Variable, Variable] = {}
    terms: list[Term] = []
    for term in atom:
        if isinstance(term, Variable):
            canon = seen.get(term)
            if canon is None:
                canon = _CANON_VARS[len(seen)]
                seen[term] = canon
            terms.append(canon)
        else:
            terms.append(term)
    return Atom(terms[0], terms[1], terms[2])


def _unify_patterns(head: Atom, goal: Atom) -> Bindings | None:
    """Most general unifier of two triple patterns (variables may occur on
    both sides; rule variables are standardized apart by the caller).
    Returns a substitution over variables of *both* atoms, or ``None``.
    """
    bindings: dict[Variable, Term] = {}

    def walk(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for a, b in zip(head, goal):
        a, b = walk(a), walk(b)
        if a == b:
            continue
        if isinstance(a, Variable):
            bindings[a] = b
        elif isinstance(b, Variable):
            bindings[b] = a
        else:
            return None
    # Flatten chains so substitute() needs a single pass.
    return {v: walk(v) for v in bindings}


class BackwardEngine:
    """SLD resolution with naive tabling over a graph and rule set.

    >>> from repro.datalog.parser import parse_rules
    >>> from repro.rdf import Graph, URI, Triple
    >>> from repro.rdf.terms import Variable
    >>> rules = parse_rules('''@prefix ex: <ex:>
    ... [t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]''')
    >>> g = Graph([Triple(URI("ex:1"), URI("ex:p"), URI("ex:2")),
    ...            Triple(URI("ex:2"), URI("ex:p"), URI("ex:3"))])
    >>> engine = BackwardEngine(g, rules)
    >>> answers = engine.query(Atom(URI("ex:1"), URI("ex:p"), Variable("o")))
    >>> sorted(str(t.o) for t in answers)
    ['ex:2', 'ex:3']
    """

    def __init__(self, graph: Graph, rules: Sequence[Rule]) -> None:
        self.graph = graph
        self.rules = tuple(rules)
        for rule in self.rules:
            for v in rule.variables():
                if v.name.startswith("__g"):
                    raise ValueError(
                        f"rule {rule.name!r} uses reserved variable {v} "
                        "(the '__g' prefix is the engine's goal pool)"
                    )
        # Index rules by ground head predicate; variable-predicate heads go
        # to the wildcard list (attempted for every goal).
        self._rules_by_pred: dict[Term, list[Rule]] = {}
        self._rules_wild: list[Rule] = []
        for rule in self.rules:
            p = rule.head.p
            if isinstance(p, Variable):
                self._rules_wild.append(rule)
            else:
                self._rules_by_pred.setdefault(p, []).append(rule)
        self.tables: dict[_TableKey, set[Triple]] = {}
        #: Goals whose answer sets are final.  Completion is SCC-wise
        #: (Tarjan-style): each goal tracks the shallowest stack depth its
        #: expansion reached back into; the goal at the root of a recursive
        #: component (the *leader*) iterates the component to a joint
        #: fixpoint and then marks every member complete.  Completed goals
        #: are never re-expanded — this keeps tabled evaluation's
        #: re-computation confined to one pass per SCC-internal answer
        #: instead of re-running whole proof trees.
        self.completed: set[_TableKey] = set()
        self.stats = BackwardStats()
        # Expansion state (live only during query()):
        self._depth: dict[_TableKey, int] = {}  # key -> stack depth
        self._trail: list[_TableKey] = []  # keys expanded, in entry order
        self._growth = 0  # bumps whenever any table gains an answer

    # -- public API ---------------------------------------------------------

    def query(self, goal: Atom) -> set[Triple]:
        """All ground triples entailed by (graph, rules) matching ``goal``."""
        key = _canonical_key(goal)
        self._solve(goal)
        return set(self.tables.get(key, set()))

    # -- internals ----------------------------------------------------------

    def _candidate_rules(self, goal: Atom) -> list[Rule]:
        if isinstance(goal.p, Variable):
            return list(self.rules)
        out = self._rules_by_pred.get(goal.p, [])
        if self._rules_wild:
            out = out + self._rules_wild
        return out

    @staticmethod
    def _order_body(body: tuple[Atom, ...], theta: Bindings) -> list[Atom]:
        """Order body atoms most-bound-first (classic SLD literal ordering).

        Left-to-right evaluation of a transitivity rule from a goal with an
        unbound subject would pose the *fully open* pattern ``(?x p ?y)`` as
        a subgoal — whose table is the predicate's global closure, turning
        every such query into a whole-KB computation.  Greedy boundness
        ordering keeps at least one position of every subgoal bound
        whenever the goal and the body's variable chaining allow it.
        """
        if len(body) == 1:
            return list(body)
        bound: set[Variable] = set(theta.keys())
        # Variables that theta binds to other *variables* are not bound.
        for var, value in theta.items():
            if isinstance(value, Variable):
                bound.discard(var)

        def boundness(atom: Atom) -> int:
            score = 0
            for term in atom:
                if not isinstance(term, Variable) or term in bound:
                    score += 1
            return score

        remaining = list(body)
        ordered: list[Atom] = []
        while remaining:
            best = max(remaining, key=boundness)
            remaining.remove(best)
            ordered.append(best)
            bound.update(best.variables())
        return ordered

    _INF = float("inf")

    def _solve(self, goal: Atom) -> tuple[set[Triple], float]:
        """Expand a goal; returns (answers, lowlink).

        ``lowlink`` is the shallowest stack depth this expansion reached
        back into (infinity when acyclic).  When a goal's lowlink is not
        above its own depth, it is an SCC leader: its local fixpoint loop
        has already saturated the whole component, so every key expanded
        beneath it (the trail suffix) is marked complete.
        """
        key = _canonical_key(goal)
        answers = self.tables.get(key)
        if answers is None:
            answers = self.tables[key] = set()
        if key in self.completed:
            return answers, self._INF
        on_stack_depth = self._depth.get(key)
        if on_stack_depth is not None:
            # Back edge: consume the current partial answers; the leader's
            # fixpoint loop re-runs until they stop growing.
            return answers, on_stack_depth
        # Canonicalize so goal variables come from the reserved __g pool
        # and never collide with rule variables (no standardize-apart
        # needed); the canonical atom has the same table key.
        goal = _canonical_atom(goal)
        depth = len(self._depth)
        self._depth[key] = depth
        trail_start = len(self._trail)
        self._trail.append(key)
        self.stats.goals_expanded += 1
        lowlink = self._INF

        # 1. Base facts.
        s = None if isinstance(goal.s, Variable) else goal.s
        p = None if isinstance(goal.p, Variable) else goal.p
        o = None if isinstance(goal.o, Variable) else goal.o
        has_repeated_var = (
            isinstance(goal.s, Variable)
            and (goal.s == goal.p or goal.s == goal.o)
        ) or (isinstance(goal.p, Variable) and goal.p == goal.o)
        size_before_facts = len(answers)
        for triple in self.graph.match(s, p, o):
            self.stats.facts_scanned += 1
            if not has_repeated_var or goal.match_triple(triple) is not None:
                answers.add(triple)
        if len(answers) > size_before_facts:
            self._growth += len(answers) - size_before_facts

        # 2. Rules whose head unifies with the goal.  The loop reaches a
        # fixpoint of the goal's whole SCC: one more pass after *any* table
        # in the subtree stopped growing.
        candidates = self._candidate_rules(goal)
        while True:
            self.stats.fixpoint_passes += 1
            growth_before_pass = self._growth
            for rule in candidates:
                self.stats.unifications += 1
                theta = _unify_patterns(rule.head, goal)
                if theta is None:
                    continue
                bindings_list: list[Bindings] = [dict(theta)]
                for body_atom in self._order_body(rule.body, theta):
                    next_list: list[Bindings] = []
                    for b in bindings_list:
                        subgoal = body_atom.substitute(b)
                        sub_answers, sub_low = self._solve(subgoal)
                        if sub_low < lowlink:
                            lowlink = sub_low
                        for answer in sub_answers:
                            extended = subgoal.match_triple(answer, b)
                            if extended is not None:
                                next_list.append(extended)
                    bindings_list = next_list
                    if not bindings_list:
                        break
                for b in bindings_list:
                    head_atom = rule.head.substitute(b)
                    if head_atom.is_ground():
                        try:
                            triple = head_atom.to_triple()
                        except TypeError:
                            # Generalized triple; dropped (matches the
                            # forward engines' behaviour).
                            continue
                        if triple not in answers:
                            answers.add(triple)
                            self._growth += 1
                            self.stats.answers += 1
            if self._growth == growth_before_pass:
                break
            if lowlink != depth:
                # Either acyclic (lowlink = inf): own answers cannot feed
                # own subgoals without a cycle, one pass was exhaustive.
                # Or a member of an enclosing SCC (lowlink < depth): the
                # leader's loop re-runs this goal anyway; iterating here
                # would be duplicated work.
                break

        del self._depth[key]
        if lowlink >= depth:
            # SCC leader at fixpoint: the whole trail suffix is saturated.
            for k in self._trail[trail_start:]:
                self.completed.add(k)
            del self._trail[trail_start:]
            return answers, self._INF
        # Part of an enclosing SCC: leave the trail for the leader.
        return answers, lowlink


def materialize_backward(
    graph: Graph,
    rules: Sequence[Rule],
    resources: Iterable[Term] | None = None,
    share_tables: bool = False,
    candidate_probing: bool = True,
) -> tuple[Graph, BackwardStats]:
    """Materialize a KB the way the paper's Jena setup does.

    Section VI's description of Jena's materialization, verbatim: *"queries
    of the form find all statements with a given resource as subject is
    issued for each resource in the graph.  In answering this query, the
    reasoner creates kn triples, where each triple has the given resource
    as subject and each of the n triples as the object.  It then tries to
    prove that the KB entails such a triple.  The worst-case complexity of
    this algorithm is polynomial in the number of resources in the KB."*

    We reproduce both halves:

    * the per-resource query, answered by the tabled SLD engine (this
      alone guarantees the complete closure — every derived triple has a
      resource subject);
    * with ``candidate_probing`` (default), the ``k*n`` candidate loop:
      for every predicate in the vocabulary and every node in the graph,
      an entailment check of the candidate triple against the completed
      answer tables.  Each check is a real (if cheap — our tables are
      saturated by then) entailment test; Jena's per-candidate proof was
      far costlier, so if anything this *understates* the super-linearity.
      This loop is what makes total cost grow polynomially in the KB's
      node count — the super-linear-speedup mechanism of Figs 1/3/4.

    ``share_tables=False`` (default) gives each per-resource query a fresh
    engine (per-query table lifetime, as in Jena's SLD: tabling lives per
    top-level query).  ``share_tables=True`` reuses one engine across
    queries — the ablation configuration; with SCC-scoped completion the
    per-resource proof trees barely overlap, so the saving is small.

    Returns (materialized graph, aggregated stats).  The input graph is not
    mutated; the result is a new graph containing base + inferred triples.
    """
    out = graph.copy()
    total = BackwardStats()
    if resources is None:
        resources = sorted(graph.resources())
    else:
        resources = list(resources)
    shared_engine = BackwardEngine(graph, rules) if share_tables else None
    pred_var, obj_var = Variable("__p"), Variable("__o")

    if candidate_probing:
        vocabulary = sorted(set(graph.predicates()))
        candidate_objects = sorted(graph.resources())

    for resource in resources:
        engine = shared_engine or BackwardEngine(graph, rules)
        answers = engine.query(Atom(resource, pred_var, obj_var))
        for triple in answers:
            out.add(triple)
        if candidate_probing:
            # The kn-candidate generate-and-test loop.  The query above
            # completed the (resource ?p ?o) table, so entailment of a
            # candidate is exactly membership in the answer set.
            entailed = {(t.p, t.o) for t in answers}
            probes = engine.stats.entailment_probes
            for p in vocabulary:
                for o in candidate_objects:
                    probes += 1
                    if (p, o) in entailed:
                        # Candidate proven; already in `out` via `answers`.
                        pass
            engine.stats.entailment_probes = probes
        if shared_engine is None:
            total.merge(engine.stats)
    if shared_engine is not None:
        total = shared_engine.stats
    return out, total
