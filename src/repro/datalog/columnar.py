"""Vectorized id-space semi-naive kernels.

This module is the execution half of the columnar fixpoint path (storage
is :class:`repro.rdf.idstore.IdGraph`): it runs the *existing*
:class:`~repro.datalog.plan.RulePlan`s over int64 id columns in batches,
replacing the compiled kernels' per-tuple Python probes with merge joins
over sorted views.  Rule constants are encoded into id space exactly once,
at kernel construction; after that a fixpoint never touches a term object.

Semi-naive structure mirrors :mod:`repro.datalog.compiled` exactly:

* 1-atom rules — a constant-mask scan of the delta columns
  (:class:`ScanIdKernel`);
* 2-atom single-join rules — the two disjoint halves ``(Δ ⋈ G)`` and
  ``(Δ ⋈ (G ∖ Δ))`` as vectorized merge joins (:class:`JoinIdKernel`);
* everything else — :class:`GenericIdKernel`, a vectorized transliteration
  of the generic interpreter's left-deep join with per-delta-position
  binding dedup.

Accounting equivalence
----------------------

The deterministic work counters keep the *same meaning* as the term-level
engines, candidate for candidate, so simulated-cluster work stays
comparable across engine choices:

* ``join_probes`` — one per candidate row surviving the constant/bound-key
  index restriction, counted *before* repeated-variable equality checks
  (like ``_iter_candidates``); half B resolves Δ-membership inside the
  restricted relation, so excluded candidates are neither yielded nor
  counted.
* ``firings`` — one per valid head instantiation (subject is a resource,
  predicate a URI — the vectorized equivalent of ``Triple``'s TypeError),
  pre-dedup; the generic kernel counts distinct bindings, matching the
  interpreter's seen-set.
* ``derived`` — post-dedup new rows per round; ``rules_dispatched`` /
  ``rules_skipped`` come from an id-keyed predicate dispatch identical to
  :class:`~repro.datalog.plan.DispatchIndex`.

A fixpoint computed by :class:`ColumnarEngine` therefore reports stats
*identical* to ``SemiNaiveEngine(compile_rules=True)`` on the same input —
the differential tests assert this field by field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, cast

import numpy as np

from repro.datalog.ast import Rule
from repro.datalog.plan import AtomSpec, PlanKind, RulePlan, build_plan
from repro.rdf.idstore import IdGraph, member_mask, pack_columns
from repro.rdf.runstore import RunStore
from repro.rdf.terms import Term

if TYPE_CHECKING:
    from repro.datalog.engine import EngineStats

_EMPTY = np.empty(0, dtype=np.int64)

#: Either triple store the kernels can evaluate over: both expose the
#: same value-probe surface (``probe`` / ``contains_rows`` /
#: ``add_rows`` / ``columns``), so the fixpoint below is store-blind.
IdStore = IdGraph | RunStore

#: (position, slot) pair: a variable slot read from / written to a triple
#: position.
_Assign = tuple[int, int]
#: (position, position) equality constraint (repeated variable in an atom).
_EqCheck = tuple[int, int]
#: Per-position ground id (or None) of an atom pattern.
_Const = list[int | None]


class SupportsIdSpace(Protocol):
    """What the kernels need from a dictionary: constant encoding at
    construction, id-column kind masks at head validation."""

    def encode(self, term: Term) -> int: ...

    def resource_mask(self, ids: np.ndarray) -> np.ndarray: ...

    def uri_mask(self, ids: np.ndarray) -> np.ndarray: ...


#: Head template position: ``("g", id)`` or ``("v", slot)``.
_HeadSpec = tuple[tuple[str, int], tuple[str, int], tuple[str, int]]

Columns = tuple[np.ndarray, np.ndarray, np.ndarray]


def _encode_atom(
    spec: AtomSpec, bound: frozenset[int], dictionary: SupportsIdSpace
) -> tuple[_Const, list[_Assign], list[_Assign], list[_EqCheck]]:
    """Id-space analogue of ``compiled._compile_atom``: split an atom into
    ground ids, bound-slot key positions, first-occurrence slot writes, and
    repeated-free-variable equality checks."""
    const: _Const = [None, None, None]
    keys: list[_Assign] = []
    sets: list[_Assign] = []
    eqs: list[_EqCheck] = []
    first_free: dict[int, int] = {}
    for pos, (kind, val) in enumerate(spec):
        if kind == "g":
            const[pos] = dictionary.encode(cast(Term, val))
        else:
            slot = cast(int, val)
            if slot in bound:
                keys.append((pos, slot))
            elif slot in first_free:
                eqs.append((first_free[slot], pos))
            else:
                first_free[slot] = pos
                sets.append((pos, slot))
    return const, keys, sets, eqs


def _encode_head(spec: AtomSpec, dictionary: SupportsIdSpace) -> _HeadSpec:
    out = []
    for kind, val in spec:
        if kind == "g":
            out.append(("g", dictionary.encode(cast(Term, val))))
        else:
            out.append(("v", cast(int, val)))
    return (out[0], out[1], out[2])


def _const_filter(
    cols: Columns, const: _Const, stats: "EngineStatsLike"
) -> Columns:
    """Delta-side constant restriction.  Every surviving row is one join
    probe (the index walk's yield), counted before equality checks."""
    mask: np.ndarray | None = None
    for pos in range(3):
        cid = const[pos]
        if cid is None:
            continue
        m = cols[pos] == cid
        mask = m if mask is None else mask & m
    if mask is None:
        stats.join_probes += len(cols[0])
        return cols
    stats.join_probes += int(mask.sum())
    return (cols[0][mask], cols[1][mask], cols[2][mask])


def _eq_filter(
    cols: Columns, eqs: list[_EqCheck], reps: np.ndarray | None = None
) -> tuple[Columns, np.ndarray | None]:
    """Repeated-variable equality checks (applied after probe counting,
    like the kernels' post-yield eq loop)."""
    if not eqs or len(cols[0]) == 0:
        return cols, reps
    mask = cols[eqs[0][0]] == cols[eqs[0][1]]
    for a, b in eqs[1:]:
        mask = mask & (cols[a] == cols[b])
    cols = (cols[0][mask], cols[1][mask], cols[2][mask])
    return cols, (reps[mask] if reps is not None else None)


def _probe(
    source: IdStore,
    const: _Const,
    keys: list[_Assign],
    env: dict[int, np.ndarray],
    n_env: int,
) -> tuple[Columns, np.ndarray]:
    """Batch index probe: for each of ``n_env`` binding rows, the
    *values* of the source rows matching the pattern ``const + bound
    slots``.  Returns ``((s, p, o), env_index_per_row)`` — value-based
    so dense and run stores answer it identically."""
    items: list[tuple[int, np.ndarray]] = []
    for pos in range(3):
        cid = const[pos]
        if cid is not None:
            items.append((pos, np.full(n_env, cid, dtype=np.int64)))
    for pos, slot in keys:
        items.append((pos, env[slot]))
    if not items:
        # Fully unconstrained pattern: cartesian with the whole source.
        cs, cp, co = source.columns()
        n = len(cs)
        reps = np.repeat(np.arange(n_env, dtype=np.int64), n)
        return (np.tile(cs, n_env), np.tile(cp, n_env),
                np.tile(co, n_env)), reps
    items.sort(key=lambda item: item[0])
    positions = tuple(pos for pos, _arr in items)
    return source.probe(positions, tuple(arr for _pos, arr in items))


def _build_head(
    head: _HeadSpec, env: dict[int, np.ndarray], n: int
) -> Columns:
    out: list[np.ndarray] = []
    for kind, val in head:
        if kind == "g":
            out.append(np.full(n, val, dtype=np.int64))
        else:
            out.append(env[val])
    return (out[0], out[1], out[2])


class EngineStatsLike(Protocol):
    """The counter surface the kernels mutate (satisfied by
    :class:`repro.datalog.engine.EngineStats`; a Protocol here avoids a
    circular import with the engine module)."""

    join_probes: int


class ScanIdKernel:
    """Vectorized scan-and-rewrite for 1-atom rules: a constant mask over
    the delta columns, then head rewrite of every surviving row."""

    kind = PlanKind.SCAN

    def __init__(
        self, plan: RulePlan, dictionary: SupportsIdSpace
    ) -> None:
        self.rule = plan.rule
        self.plan = plan
        self._dict = dictionary
        const, _keys, sets, eqs = _encode_atom(
            plan.atoms[0].spec, frozenset(), dictionary)
        self._const = const
        self._sets = sets
        self._eqs = eqs
        self._head = _encode_head(plan.head.spec, dictionary)

    def eval_delta(
        self, graph: IdStore, delta: IdGraph, stats: EngineStatsLike
    ) -> Columns:
        cand = _const_filter(delta.columns(), self._const, stats)
        cand, _ = _eq_filter(cand, self._eqs)
        n = len(cand[0])
        if n == 0:
            return _EMPTY, _EMPTY, _EMPTY
        env = {slot: cand[pos] for pos, slot in self._sets}
        hs, hp, ho = _build_head(self._head, env, n)
        valid = self._dict.resource_mask(hs) & self._dict.uri_mask(hp)
        return hs[valid], hp[valid], ho[valid]


class JoinIdKernel:
    """Vectorized single-join executor for 2-atom rules.

    Each semi-naive half scans the delta with a constant mask, then probes
    the store's sorted view for the other atom in one batched
    searchsorted; half B drops candidates that are Δ-members *before*
    probe counting, exactly like the compiled kernel's restricted-relation
    walk, which keeps the halves disjoint and the probe counts identical.
    """

    kind = PlanKind.JOIN

    def __init__(
        self, plan: RulePlan, dictionary: SupportsIdSpace
    ) -> None:
        self.rule = plan.rule
        self.plan = plan
        self._dict = dictionary
        self._head = _encode_head(plan.head.spec, dictionary)
        halves = []
        for delta_pos in (0, 1):
            datom = plan.atoms[delta_pos]
            oatom = plan.atoms[1 - delta_pos]
            d_const, _dk, d_sets, d_eqs = _encode_atom(
                datom.spec, frozenset(), dictionary)
            o_const, o_keys, o_sets, o_eqs = _encode_atom(
                oatom.spec, datom.slots, dictionary)
            halves.append(
                (d_const, d_sets, d_eqs, o_const, o_keys, o_sets, o_eqs))
        self._halves = tuple(halves)

    def eval_delta(
        self, graph: IdStore, delta: IdGraph, stats: EngineStatsLike
    ) -> Columns:
        parts: list[Columns] = []
        for half_no, half in enumerate(self._halves):
            d_const, d_sets, d_eqs, o_const, o_keys, o_sets, o_eqs = half
            dcand = _const_filter(delta.columns(), d_const, stats)
            dcand, _ = _eq_filter(dcand, d_eqs)
            n_d = len(dcand[0])
            if n_d == 0:
                continue
            env = {slot: dcand[pos] for pos, slot in d_sets}
            cand, reps = _probe(graph, o_const, o_keys, env, n_d)
            if half_no == 1 and len(cand[0]):
                # (Δ ⋈ G∖Δ): the restriction resolves Δ-members away
                # before they are yielded — they are not join probes.
                dkeys, _perm = delta.sorted_view((0, 1, 2))
                keep = ~member_mask(dkeys, pack_columns(cand))
                cand = (cand[0][keep], cand[1][keep], cand[2][keep])
                reps = reps[keep]
            stats.join_probes += len(cand[0])
            cand, reps_f = _eq_filter(cand, o_eqs, reps)
            reps = reps_f if reps_f is not None else reps
            n_c = len(cand[0])
            if n_c == 0:
                continue
            full_env = {slot: arr[reps] for slot, arr in env.items()}
            for pos, slot in o_sets:
                full_env[slot] = cand[pos]
            hs, hp, ho = _build_head(self._head, full_env, n_c)
            valid = self._dict.resource_mask(hs) & self._dict.uri_mask(hp)
            parts.append((hs[valid], hp[valid], ho[valid]))
        return _concat(parts)


class GenericIdKernel:
    """Vectorized transliteration of the generic interpreter for rule
    shapes the specialized kernels don't cover (3+ atoms, cross products).

    For every delta position it evaluates the left-deep join in the same
    ``[delta_pos] + rest`` order over a growing binding matrix, counting
    one probe per index hit before repeated-variable verification; the
    interpreter's seen-set dedup becomes a row-unique over the stacked
    binding matrices (bindings are fully ground after the last atom, so
    the two are equivalent).
    """

    kind = PlanKind.GENERIC

    def __init__(
        self, plan: RulePlan, dictionary: SupportsIdSpace
    ) -> None:
        self.rule = plan.rule
        self.plan = plan
        self._dict = dictionary
        self._nvars = plan.nvars
        self._n_atoms = len(plan.atoms)
        self._head = _encode_head(plan.head.spec, dictionary)
        orders = []
        for delta_pos in range(self._n_atoms):
            order = [delta_pos] + [
                j for j in range(self._n_atoms) if j != delta_pos
            ]
            steps = []
            bound: frozenset[int] = frozenset()
            for j in order:
                atom = plan.atoms[j]
                const, keys, sets, eqs = _encode_atom(
                    atom.spec, bound, dictionary)
                steps.append((j == delta_pos, const, keys, sets, eqs))
                bound = bound | atom.slots
            orders.append(tuple(steps))
        self._orders = tuple(orders)

    def eval_delta(
        self, graph: IdStore, delta: IdGraph, stats: EngineStatsLike
    ) -> Columns:
        env_parts: list[np.ndarray] = []
        for steps in self._orders:
            env = np.zeros((1, self._nvars or 1), dtype=np.int64)
            for use_delta, const, keys, sets, eqs in steps:
                source: IdStore = delta if use_delta else graph
                bound_env = {slot: env[:, slot] for _pos, slot in keys}
                cand, reps = _probe(source, const, keys, bound_env, len(env))
                stats.join_probes += len(cand[0])
                cand, reps_f = _eq_filter(cand, eqs, reps)
                reps = reps_f if reps_f is not None else reps
                env = env[reps]
                for pos, slot in sets:
                    env[:, slot] = cand[pos]
                if len(env) == 0:
                    break
            if len(env):
                env_parts.append(env)
        if not env_parts:
            return _EMPTY, _EMPTY, _EMPTY
        all_env = np.vstack(env_parts)
        if self._n_atoms > 1:
            # The interpreter's cross-delta-position bindings dedup.
            all_env = np.unique(all_env, axis=0)
        env_cols = {
            slot: all_env[:, slot] for slot in range(self._nvars)
        }
        hs, hp, ho = _build_head(self._head, env_cols, len(all_env))
        valid = self._dict.resource_mask(hs) & self._dict.uri_mask(hp)
        return hs[valid], hp[valid], ho[valid]


IdKernel = ScanIdKernel | JoinIdKernel | GenericIdKernel


def _concat(parts: list[Columns]) -> Columns:
    if not parts:
        return _EMPTY, _EMPTY, _EMPTY
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


def compile_id_kernel(
    plan: RulePlan, dictionary: SupportsIdSpace
) -> IdKernel:
    """The columnar executor for a plan (every plan kind is covered — the
    columnar path needs no term-level fallback)."""
    if plan.kind is PlanKind.SCAN:
        return ScanIdKernel(plan, dictionary)
    if plan.kind is PlanKind.JOIN:
        return JoinIdKernel(plan, dictionary)
    return GenericIdKernel(plan, dictionary)


class IdDispatchIndex:
    """Predicate-id → rules dispatch, the id-space twin of
    :class:`~repro.datalog.plan.DispatchIndex` (same skip condition, same
    rule-order determinism)."""

    def __init__(
        self, plans: Sequence[RulePlan], dictionary: SupportsIdSpace
    ) -> None:
        self.n_rules = len(plans)
        self._by_predicate: dict[int, set[int]] = {}
        self._always: set[int] = set()
        for i, plan in enumerate(plans):
            if plan.body_predicates is None:
                self._always.add(i)
                continue
            for p in plan.body_predicates:
                self._by_predicate.setdefault(
                    dictionary.encode(p), set()).add(i)

    def candidates(self, delta_p_ids: np.ndarray) -> list[int]:
        live = set(self._always)
        for pid in np.unique(delta_p_ids).tolist():
            hit = self._by_predicate.get(pid)
            if hit is not None:
                live |= hit
        return sorted(live)


@dataclass
class ColumnarFixpoint:
    """Outcome of one id-space fixpoint: the new rows and the work done."""

    inferred: Columns
    stats: "EngineStats"


class ColumnarEngine:
    """Semi-naive fixpoint evaluator over an :class:`IdGraph`.

    The id-space core shared by ``SemiNaiveEngine(engine="columnar")``
    (which mirrors a term graph into id columns) and the id-native
    :class:`~repro.parallel.worker.PartitionWorker` (which feeds received
    ``EncodedBatch`` rows straight in).  Rule constants are encoded through
    ``dictionary`` once, here.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        dictionary: SupportsIdSpace,
        max_iterations: int | None = None,
    ) -> None:
        self.rules = tuple(rules)
        self.dictionary = dictionary
        self.max_iterations = max_iterations
        plans = [build_plan(r) for r in self.rules]
        self._kernels: list[IdKernel] = [
            compile_id_kernel(p, dictionary) for p in plans
        ]
        self._dispatch = IdDispatchIndex(plans, dictionary)

    @property
    def kernel_kinds(self) -> tuple[str, ...]:
        return tuple(k.kind.value for k in self._kernels)

    @property
    def kernels(self) -> list[IdKernel]:
        """The per-rule id kernels, in rule order — the evaluation surface
        :mod:`repro.datalog.incremental` drives for DRed phases."""
        return self._kernels

    @property
    def dispatch(self) -> IdDispatchIndex:
        """The predicate-id dispatch index (shared with DRed phases so the
        dispatch accounting matches the forward fixpoint's)."""
        return self._dispatch

    def run(
        self, graph: IdStore, delta: Columns | None = None
    ) -> ColumnarFixpoint:
        """Run to fixpoint, mutating ``graph`` in place.

        ``delta=None`` evaluates from scratch; otherwise the given rows
        resume the fixpoint (rows not yet present are inserted first), and
        *all* of them seed the first round's delta — the same contract as
        ``SemiNaiveEngine.run``.
        """
        # Imported here: engine.py imports this module lazily, so a
        # top-level import back would be circular.
        from repro.datalog.engine import EngineStats

        stats = EngineStats()
        current = IdGraph()
        if delta is None:
            current.add_rows(*graph.columns())
        else:
            graph.add_rows(*delta)
            current.add_rows(*delta)
        inferred_parts: list[Columns] = []
        n_rules = len(self._kernels)
        while len(current):
            if (
                self.max_iterations is not None
                and stats.iterations >= self.max_iterations
            ):
                raise RuntimeError(
                    f"fixpoint not reached after {self.max_iterations} "
                    "iterations"
                )
            stats.iterations += 1
            live = self._dispatch.candidates(current.column(1))
            stats.rules_dispatched += len(live)
            stats.rules_skipped += n_rules - len(live)
            parts: list[Columns] = []
            for i in live:
                hs, hp, ho = self._kernels[i].eval_delta(
                    graph, current, stats)
                stats.firings += len(hs)
                if len(hs):
                    parts.append((hs, hp, ho))
            current = IdGraph()
            if parts:
                hs, hp, ho = _concat(parts)
                keep = ~graph.contains_rows(hs, hp, ho)
                added = current.add_rows(hs[keep], hp[keep], ho[keep])
                graph.add_rows(*added)
                stats.derived += len(added[0])
                if len(added[0]):
                    inferred_parts.append(added)
        return ColumnarFixpoint(inferred=_concat(inferred_parts), stats=stats)
