"""Parser for a Jena-flavoured rule text syntax.

The OWL-Horst rule set ships as Python objects, but users bringing their own
ontologies (and our tests) want readable rule files.  Grammar::

    document   := (prefix | rule)*
    prefix     := '@prefix' NAME ':' '<' IRI '>' '.'?
    rule       := '[' NAME ':' atom+ '->' atom+ ']'
    atom       := '(' term term term ')'
    term       := '?' NAME            -- variable
                | '<' IRI '>'         -- absolute IRI
                | NAME ':' NAME       -- prefixed name
                | '"' chars '"' tag?  -- literal (w/ optional ^^dt or @lang)
                | '_:' NAME           -- blank node

    '#' starts a comment through end of line.

Multiple head atoms expand into one :class:`Rule` per head atom (named
``name``, ``name.2``, ``name.3``, ...), keeping the single-head rule shape
the paper assumes.
"""

from __future__ import annotations

import re

from repro.datalog.ast import Atom, Rule
from repro.rdf.terms import BNode, Literal, Term, URI, Variable


class RuleParseError(ValueError):
    """Malformed rule text; message includes the offending position."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<arrow>->)
  | (?P<punct>[\[\]():.])
  | (?P<at>@prefix\b)
  | (?P<iri><[^<>\s]*>)
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<bnode>_:[A-Za-z0-9_.-]+)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_.-]*)
  | (?P<caret>\^\^)
  | (?P<lang>@[A-Za-z][A-Za-z0-9-]*)
    """,
    re.VERBOSE,
)

_ESCAPE_RE = re.compile(r"\\(.)")
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.pos})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            snippet = text[pos : pos + 20]
            raise RuleParseError(f"unexpected character at offset {pos}: {snippet!r}")
        kind = m.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.prefixes: dict[str, str] = {}

    # -- cursor ------------------------------------------------------------

    def peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise RuleParseError("unexpected end of input")
        self.index += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise RuleParseError(
                f"expected {want!r} at offset {tok.pos}, found {tok.text!r}"
            )
        return tok

    # -- productions ---------------------------------------------------------

    def parse_document(self) -> list[Rule]:
        rules: list[Rule] = []
        while True:
            tok = self.peek()
            if tok is None:
                return rules
            if tok.kind == "at":
                self._parse_prefix()
            elif tok.kind == "punct" and tok.text == "[":
                rules.extend(self._parse_rule())
            else:
                raise RuleParseError(
                    f"expected '@prefix' or '[' at offset {tok.pos}, found {tok.text!r}"
                )

    def _parse_prefix(self) -> None:
        self.expect("at")
        name = self.expect("name").text
        self.expect("punct", ":")
        iri = self.expect("iri").text
        tok = self.peek()
        if tok is not None and tok.kind == "punct" and tok.text == ".":
            self.next()
        self.prefixes[name] = iri[1:-1]

    def _parse_rule(self) -> list[Rule]:
        self.expect("punct", "[")
        name = self.expect("name").text
        self.expect("punct", ":")
        body: list[Atom] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise RuleParseError(f"rule {name!r}: unexpected end of input")
            if tok.kind == "arrow":
                self.next()
                break
            body.append(self._parse_atom(name))
        heads: list[Atom] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise RuleParseError(f"rule {name!r}: missing closing ']'")
            if tok.kind == "punct" and tok.text == "]":
                self.next()
                break
            heads.append(self._parse_atom(name))
        if not heads:
            raise RuleParseError(f"rule {name!r}: no head atoms")
        out: list[Rule] = []
        for i, head in enumerate(heads):
            rule_name = name if i == 0 else f"{name}.{i + 1}"
            out.append(Rule(rule_name, body, head))
        return out

    def _parse_atom(self, rule_name: str) -> Atom:
        self.expect("punct", "(")
        s = self._parse_term(rule_name)
        p = self._parse_term(rule_name)
        o = self._parse_term(rule_name)
        self.expect("punct", ")")
        return Atom(s, p, o)

    def _parse_term(self, rule_name: str) -> Term:
        tok = self.next()
        if tok.kind == "var":
            return Variable(tok.text[1:])
        if tok.kind == "iri":
            return URI(tok.text[1:-1])
        if tok.kind == "bnode":
            return BNode(tok.text[2:])
        if tok.kind == "literal":
            lexical = _ESCAPE_RE.sub(
                lambda m: _ESCAPES.get(m.group(1), m.group(1)), tok.text[1:-1]
            )
            nxt = self.peek()
            if nxt is not None and nxt.kind == "caret":
                self.next()
                dt_tok = self.next()
                if dt_tok.kind == "iri":
                    return Literal(lexical, datatype=URI(dt_tok.text[1:-1]))
                if dt_tok.kind == "name":
                    return Literal(lexical, datatype=self._prefixed(dt_tok, rule_name))
                raise RuleParseError(
                    f"rule {rule_name!r}: bad datatype token {dt_tok.text!r}"
                )
            if nxt is not None and nxt.kind == "lang":
                self.next()
                return Literal(lexical, language=nxt.text[1:])
            return Literal(lexical)
        if tok.kind == "name":
            return self._prefixed(tok, rule_name)
        raise RuleParseError(
            f"rule {rule_name!r}: unexpected token {tok.text!r} at offset {tok.pos}"
        )

    def _prefixed(self, tok: _Token, rule_name: str) -> URI:
        nxt = self.peek()
        if nxt is None or nxt.kind != "punct" or nxt.text != ":":
            raise RuleParseError(
                f"rule {rule_name!r}: bare name {tok.text!r} at offset {tok.pos} "
                "(did you mean a prefixed name like ex:thing?)"
            )
        self.next()
        local = self.expect("name").text
        prefix = self.prefixes.get(tok.text)
        if prefix is None:
            raise RuleParseError(
                f"rule {rule_name!r}: unknown prefix {tok.text!r} "
                f"(declare it with @prefix {tok.text}: <...>)"
            )
        return URI(prefix + local)


def parse_rules(text: str, prefixes: dict[str, str] | None = None) -> list[Rule]:
    """Parse a rule document into :class:`Rule` objects.

    >>> rules = parse_rules('''
    ... @prefix ex: <http://example.org/>
    ... [trans: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]
    ... ''')
    >>> rules[0].name
    'trans'
    """
    parser = _Parser(text)
    if prefixes:
        parser.prefixes.update(prefixes)
    return parser.parse_document()


def parse_rule(text: str, prefixes: dict[str, str] | None = None) -> Rule:
    """Parse exactly one rule."""
    rules = parse_rules(text, prefixes)
    if len(rules) != 1:
        raise RuleParseError(f"expected exactly one rule, found {len(rules)}")
    return rules[0]
