"""Delete-and-rederive (DRed) incremental maintenance.

A materialized closure must survive retractions without a full
re-closure.  This module implements the classic DRed algorithm
[Gupta, Mumick & Subrahmanian, *Maintaining Views Incrementally*] over
both execution spaces of the engine stack:

* :func:`dred_id` — the vectorized id-space path, driving the existing
  :mod:`repro.datalog.columnar` kernels over an
  :class:`~repro.rdf.idstore.IdGraph` or
  :class:`~repro.rdf.runstore.RunStore`;
* :func:`dred_term` — a structurally identical term-space twin for the
  generic and compiled engines, so ``SemiNaiveEngine.apply`` works for
  every engine kind and the work counters stay comparable field by
  field across ``compiled`` / ``columnar``-dense / ``columnar``-run.

Phases
------

1. **Overdeletion** — a semi-naive fixpoint of the *affected* set: seed
   with the retracted rows, and each round fire every rule with at
   least one body atom in the round's delta and the remaining atoms in
   the **unmutated** old closure.  This reuses ``eval_delta(G, Δ)``
   verbatim: the kernels' two semi-naive halves together produce
   exactly the head instantiations with ≥ 1 body atom in Δ against G,
   which is the overdeletion step.  Heads not present in the closure
   (or already overdeleted) are dropped; the fixpoint yields the
   overdeleted set ``O`` — everything whose derivation *may* depend on
   a retracted fact.
2. **Deletion** — ``O`` is physically removed from the store
   (compaction in the dense store, tombstones in the run store).
3. **One-step rederivation** — rows of ``O`` that survive: (a) rows
   still asserted in the (post-retraction) base, and (b) rows
   derivable in one step from the *remnant* closure ``G' = G ∖ O``.
   (b) is evaluated as one naive round — ``eval_delta(G', G')`` — over
   only the rules whose ground head predicate occurs in ``O`` (a rule
   whose head predicate never appears in ``O`` cannot rederive
   anything; variable-predicate heads always run).  Produced heads are
   intersected with ``O``.
4. **Re-closure** — the rederived rows, together with any freshly
   added rows, seed a normal semi-naive fixpoint, which transitively
   restores every remaining derivable row of ``O`` and derives the
   consequences of the additions.

Both twins count work identically: overdeletion rounds and the
rederivation round tick ``iterations`` / ``rules_dispatched`` /
``rules_skipped`` / ``join_probes`` / ``firings`` exactly like forward
rounds, ``derived`` counts rows entering ``O`` (phase 1) and rows
restored to the store (phase 3), and phase 4 merges a normal
fixpoint's stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.datalog.columnar import ColumnarEngine, Columns, IdStore
from repro.rdf.graph import Graph
from repro.rdf.idstore import IdGraph
from repro.rdf.terms import Variable
from repro.rdf.triple import Triple

if TYPE_CHECKING:
    from repro.datalog.engine import EngineStats, SemiNaiveEngine

_EMPTY = np.empty(0, dtype=np.int64)


def _fresh_stats() -> "EngineStats":
    from repro.datalog.engine import EngineStats

    return EngineStats()


def _copy_cols(cols: Columns) -> Columns:
    return (cols[0].copy(), cols[1].copy(), cols[2].copy())


@dataclass
class IdDredResult:
    """Net effect of one id-space ``apply`` on the closure."""

    #: Rows newly present after the apply (fresh additions and their
    #: consequences; excludes restored rows, which never left).
    added: Columns
    #: Rows present before and absent after (retractions that stuck).
    removed: Columns
    #: The full overdeleted set ``O`` (diagnostic; superset of
    #: ``removed``).
    overdeleted: Columns
    stats: "EngineStats"


@dataclass
class TermDredResult:
    """Net effect of one term-space ``apply`` on the (mutated) graph."""

    added: Graph
    removed: Graph
    overdeleted: Graph
    stats: "EngineStats"


def _check_budget(iterations: int, max_iterations: int | None) -> None:
    if max_iterations is not None and iterations >= max_iterations:
        raise RuntimeError(
            f"fixpoint not reached after {max_iterations} iterations")


# -- id space ------------------------------------------------------------


def overdelete_id(
    engine: ColumnarEngine,
    store: IdStore,
    seed: Columns,
    over: IdGraph,
    stats: "EngineStats",
) -> Columns:
    """Phase 1: overdeletion fixpoint against the *unmutated* ``store``.

    Marks every row transitively affected by ``seed`` into ``over``
    (which may already hold rows from earlier calls — the distributed
    runtime feeds one call per incoming removal batch, keeping ``over``
    across calls) and returns the rows overdeleted *beyond* the seed:
    the cascade a distributed node must rebroadcast to its peers.
    Serial :func:`dred_id` calls it once and ignores the return.
    """
    kernels = engine.kernels
    dispatch = engine.dispatch
    n_rules = len(kernels)
    current = IdGraph()
    if len(seed[0]):
        present = store.contains_rows(*seed)
        present &= ~over.contains_rows(*seed)
        newly = current.add_rows(seed[0][present], seed[1][present],
                                 seed[2][present])
        over.add_rows(*newly)
    cascade = IdGraph()
    while len(current):
        _check_budget(stats.iterations, engine.max_iterations)
        stats.iterations += 1
        live = dispatch.candidates(current.column(1))
        stats.rules_dispatched += len(live)
        stats.rules_skipped += n_rules - len(live)
        parts: list[Columns] = []
        for i in live:
            hs, hp, ho = kernels[i].eval_delta(store, current, stats)
            stats.firings += len(hs)
            if len(hs):
                parts.append((hs, hp, ho))
        current = IdGraph()
        if parts:
            hs, hp, ho = _concat(parts)
            keep = store.contains_rows(hs, hp, ho)
            keep &= ~over.contains_rows(hs, hp, ho)
            newly = current.add_rows(hs[keep], hp[keep], ho[keep])
            over.add_rows(*newly)
            cascade.add_rows(*newly)
            stats.derived += len(newly[0])
    return _copy_cols(cascade.columns())


def rederive_id(
    engine: ColumnarEngine,
    store: IdStore,
    over: IdGraph,
    asserted: IdGraph,
    stats: "EngineStats",
) -> IdGraph:
    """Phases 2 + 3: physically delete ``over`` from ``store``, then
    compute the one-step rederivation seed — rows of ``O`` still
    asserted in the (post-retraction) base plus rows derivable in one
    step from the remnant closure.  The caller feeds the returned seed
    (plus any additions) to a normal semi-naive re-closure (phase 4).
    """
    seed = IdGraph()
    if not len(over):
        return seed
    kernels = engine.kernels
    dispatch = engine.dispatch
    n_rules = len(kernels)
    store.delete_rows(*over.columns())
    o_s, o_p, o_o = over.columns()
    in_base = asserted.contains_rows(o_s, o_p, o_o)
    if in_base.any():
        seed.add_rows(o_s[in_base], o_p[in_base], o_o[in_base])
    remnant = IdGraph()
    remnant.add_rows(*store.columns())
    if len(remnant):
        over_pids = set(np.unique(o_p).tolist())
        stats.iterations += 1
        live = [
            i for i in dispatch.candidates(remnant.column(1))
            if _head_may_rederive_id(engine, i, over_pids)
        ]
        stats.rules_dispatched += len(live)
        stats.rules_skipped += n_rules - len(live)
        parts: list[Columns] = []
        for i in live:
            hs, hp, ho = kernels[i].eval_delta(store, remnant, stats)
            stats.firings += len(hs)
            if len(hs):
                parts.append((hs, hp, ho))
        if parts:
            hs, hp, ho = _concat(parts)
            hit = over.contains_rows(hs, hp, ho)
            seed.add_rows(hs[hit], hp[hit], ho[hit])
    stats.derived += len(seed)
    return seed


def dred_id(
    engine: ColumnarEngine,
    store: IdStore,
    adds: Columns,
    removes: Columns,
    asserted: IdGraph,
) -> IdDredResult:
    """Apply ``(adds, removes)`` to a materialized id-space closure.

    ``store`` is mutated in place to the new closure; ``asserted`` is
    the id-encoded *post-retraction* base (explicit facts only), used
    to keep asserted-but-also-derivable rows alive.
    """
    stats = _fresh_stats()

    # Phase 1: overdeletion fixpoint against the unmutated closure.
    over = IdGraph()
    overdelete_id(engine, store, removes, over, stats)
    overdeleted = _copy_cols(over.columns())

    # Phases 2 + 3: physical deletion, then one-step rederivation into
    # the re-closure seed.
    seed = rederive_id(engine, store, over, asserted, stats)

    # Phase 4: re-closure from the rederived rows plus the additions.
    fresh_adds: Columns = (_EMPTY, _EMPTY, _EMPTY)
    if len(adds[0]):
        novel = ~store.contains_rows(*adds)
        fresh_adds = (adds[0][novel], adds[1][novel], adds[2][novel])
        seed.add_rows(*adds)
    inferred: Columns = (_EMPTY, _EMPTY, _EMPTY)
    if len(seed):
        result = engine.run(store, delta=seed.columns())
        stats.merge(result.stats)
        inferred = result.inferred

    # Net accounting: rows in O were present before the apply, so they
    # are never "added"; rows of O still absent at the end are removed.
    cand = IdGraph()
    cand.add_rows(*fresh_adds)
    cand.add_rows(*inferred)
    c_s, c_p, c_o = cand.columns()
    if len(over) and len(c_s):
        was_present = over.contains_rows(c_s, c_p, c_o)
        added = (c_s[~was_present].copy(), c_p[~was_present].copy(),
                 c_o[~was_present].copy())
    else:
        added = _copy_cols(cand.columns())
    o_s, o_p, o_o = overdeleted
    if len(o_s):
        final = store.contains_rows(o_s, o_p, o_o)
        removed = (o_s[~final], o_p[~final], o_o[~final])
    else:
        removed = (_EMPTY, _EMPTY, _EMPTY)
    return IdDredResult(
        added=added, removed=removed, overdeleted=overdeleted, stats=stats)


def _head_may_rederive_id(
    engine: ColumnarEngine, rule_index: int, over_pids: set[int]
) -> bool:
    """Can rule ``rule_index`` produce any overdeleted row?  Ground head
    predicates must occur in ``O``; variable head predicates always
    might.  The test is on the *rule* (not the encoded kernel) so the
    term twin computes the identical rule subset."""
    p = engine.kernels[rule_index].rule.head.p
    if isinstance(p, Variable):
        return True
    return engine.dictionary.encode(p) in over_pids


def _concat(parts: list[Columns]) -> Columns:
    if not parts:
        return _EMPTY, _EMPTY, _EMPTY
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


# -- term space ----------------------------------------------------------


def dred_term(
    engine: "SemiNaiveEngine",
    graph: Graph,
    adds: Iterable[Triple],
    removes: Iterable[Triple],
    asserted: Graph,
) -> TermDredResult:
    """The term-space DRed twin: apply ``(adds, removes)`` to a
    materialized closure held as a :class:`~repro.rdf.graph.Graph`,
    mutating it in place.

    Structurally identical to :func:`dred_id` — same phases, same
    dispatch and head-predicate filters, same counter ticks — so that
    ``compiled`` and ``columnar`` report equal stats for equal inputs.
    """
    stats = _fresh_stats()
    kernels = engine._kernels
    dispatch = engine._dispatch
    n_rules = len(kernels)

    # Phase 1: overdeletion fixpoint against the unmutated closure.
    over = Graph()
    for t in removes:
        if t in graph:
            over.add(t)
    current = over.copy()
    while len(current):
        _check_budget(stats.iterations, engine.max_iterations)
        stats.iterations += 1
        if dispatch is not None:
            live = dispatch.candidates(current.predicates())
            stats.rules_dispatched += len(live)
            stats.rules_skipped += n_rules - len(live)
            active = [kernels[i] for i in live]
        else:
            stats.rules_dispatched += n_rules
            active = list(kernels)
        next_over = Graph()
        for kernel in active:
            for triple in kernel.eval_delta(graph, current, stats):
                if triple is None:
                    continue
                stats.firings += 1
                if (triple in graph and triple not in over
                        and triple not in next_over):
                    next_over.add(triple)
        for t in next_over:
            over.add(t)
            stats.derived += 1
        current = next_over

    overdeleted = over.copy()

    # Phase 2: physical deletion.
    for t in over:
        graph.discard(t)

    # Phase 3: one-step rederivation into the re-closure seed.
    seed = Graph()
    if len(over):
        for t in over:
            if t in asserted:
                seed.add(t)
        if len(graph):
            over_preds = set(over.predicates())
            stats.iterations += 1
            if dispatch is not None:
                candidates = dispatch.candidates(graph.predicates())
            else:
                candidates = list(range(n_rules))
            live = [
                i for i in candidates
                if _head_may_rederive_term(kernels[i], over_preds)
            ]
            stats.rules_dispatched += len(live)
            stats.rules_skipped += n_rules - len(live)
            remnant = graph.copy()
            for i in live:
                for triple in kernels[i].eval_delta(graph, remnant, stats):
                    if triple is None:
                        continue
                    stats.firings += 1
                    if triple in over and triple not in seed:
                        seed.add(triple)
        stats.derived += len(seed)

    # Phase 4: re-closure from the rederived rows plus the additions.
    fresh_adds = Graph()
    for t in adds:
        seed.add(t)
        if t not in graph:
            fresh_adds.add(t)
    inferred = Graph()
    if len(seed):
        result = engine.run(graph, delta=list(seed))
        stats.merge(result.stats)
        inferred = result.inferred

    added = Graph()
    for t in fresh_adds:
        if t not in overdeleted:
            added.add(t)
    for t in inferred:
        if t not in overdeleted:
            added.add(t)
    removed_g = Graph()
    for t in overdeleted:
        if t not in graph:
            removed_g.add(t)
    return TermDredResult(
        added=added, removed=removed_g, overdeleted=overdeleted, stats=stats)


def _head_may_rederive_term(kernel: object, over_preds: set) -> bool:
    p = kernel.rule.head.p  # type: ignore[attr-defined]
    if isinstance(p, Variable):
        return True
    return p in over_preds
