"""Ground triples.

A :class:`Triple` is the unit of data everywhere: the store holds them, the
engine derives them, the runtime ships them between partitions.  It is a
slotted immutable value type rather than a plain tuple so that call sites
read ``t.s / t.p / t.o`` and invalid construction fails loudly.
"""

from __future__ import annotations

from typing import Iterator

from repro.rdf.terms import BNode, Literal, Term, URI, Variable


class Triple:
    """An RDF triple (subject, predicate, object).

    Construction validates RDF positional constraints: subject is a URI or
    blank node, predicate is a URI, object is any ground term.  Variables are
    rejected — patterns with variables are represented by
    :class:`repro.datalog.ast.Atom`, not by triples.

    >>> from repro.rdf.terms import URI
    >>> t = Triple(URI("ex:a"), URI("ex:p"), URI("ex:b"))
    >>> t.s, t.p, t.o == (URI("ex:a"), URI("ex:p"), URI("ex:b"))[0:3][2]
    (URI('ex:a'), URI('ex:p'), True)
    """

    __slots__ = ("s", "p", "o", "_hash")

    def __init__(self, s: Term, p: Term, o: Term) -> None:
        if not isinstance(s, (URI, BNode)):
            raise TypeError(f"triple subject must be URI or BNode, got {s!r}")
        if not isinstance(p, URI):
            raise TypeError(f"triple predicate must be URI, got {p!r}")
        if not isinstance(o, (URI, BNode, Literal)):
            if isinstance(o, Variable):
                raise TypeError("triples are ground; use datalog.Atom for patterns")
            raise TypeError(f"triple object must be a ground term, got {o!r}")
        object.__setattr__(self, "s", s)
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "o", o)
        object.__setattr__(self, "_hash", hash((s, p, o)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Triple is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Triple):
            return NotImplemented
        return self.s == other.s and self.p == other.p and self.o == other.o

    def __lt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return (self.s, self.p, self.o) < (other.s, other.p, other.o)

    def __iter__(self) -> Iterator[Term]:
        yield self.s
        yield self.p
        yield self.o

    def __getitem__(self, index: int) -> Term:
        return (self.s, self.p, self.o)[index]

    def __repr__(self) -> str:
        return f"Triple({self.s!r}, {self.p!r}, {self.o!r})"

    def __str__(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."

    def n3(self) -> str:
        return str(self)

    def replace(self, s: Term | None = None, p: Term | None = None,
                o: Term | None = None) -> "Triple":
        """A copy with some positions substituted."""
        return Triple(s or self.s, p or self.p, o or self.o)

    def __reduce__(self):
        return (Triple, (self.s, self.p, self.o))
