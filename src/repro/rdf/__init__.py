"""RDF substrate: terms, triples, namespaces, an indexed triple store,
N-Triples I/O, and a term<->integer dictionary used by the datalog engine.

This is the storage layer every other subsystem builds on.  It deliberately
implements only what rule-based OWL-Horst materialization needs — ground
triples over IRIs, blank nodes, and literals — not the full RDF 1.1 stack
(no named graphs, no language-tag matching subtleties, no datatype
coercion), keeping the hot paths small.
"""

from repro.rdf.terms import URI, Literal, BNode, Term, Variable, is_resource
from repro.rdf.triple import Triple
from repro.rdf.namespace import Namespace, RDF, RDFS, OWL, XSD
from repro.rdf.graph import Graph
from repro.rdf.dictionary import EncodedGraph, PartitionDictionary, TermDictionary
from repro.rdf.idstore import IdGraph
from repro.rdf.runstore import RunStore
from repro.rdf.query import BGPQuery, BGPStats
from repro.rdf.idquery import IdBGPQuery, IdIndex
from repro.rdf.turtle import (
    TurtleParseError,
    parse_turtle,
    parse_turtle_graph,
    serialize_turtle,
)
from repro.rdf.sparql import (
    ParsedQuery,
    SparqlParseError,
    parse_sparql,
    run_sparql,
)
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    triple_to_ntriples,
)

__all__ = [
    "URI",
    "Literal",
    "BNode",
    "Variable",
    "Term",
    "is_resource",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Graph",
    "BGPQuery",
    "BGPStats",
    "IdBGPQuery",
    "IdIndex",
    "TermDictionary",
    "PartitionDictionary",
    "EncodedGraph",
    "IdGraph",
    "RunStore",
    "NTriplesParseError",
    "TurtleParseError",
    "parse_turtle",
    "parse_turtle_graph",
    "serialize_turtle",
    "ParsedQuery",
    "SparqlParseError",
    "parse_sparql",
    "run_sparql",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "triple_to_ntriples",
]
