"""Turtle (subset) parser.

N-Triples is the library's native interchange format, but most published
ontologies and datasets ship as Turtle.  This parser covers the Turtle
constructs those files actually use:

* ``@prefix`` / ``@base`` declarations (and their SPARQL-style ``PREFIX`` /
  ``BASE`` variants);
* prefixed names, absolute IRIs, blank node labels;
* the ``a`` keyword for ``rdf:type``;
* predicate lists (``;``) and object lists (``,``);
* literals: plain, language-tagged, typed (``^^``), and the numeric /
  boolean shorthands (``42``, ``-1.5``, ``true``) with their XSD types;
* long strings (``\"\"\"...\"\"\"``) and the standard escapes;
* comments.

Not covered (rejected with a clear error rather than misparsed): collection
syntax ``( ... )``, anonymous blank nodes ``[ ... ]``, and ``@graph`` —
none of which the OWL-Horst pipeline consumes.  Files needing them should
be converted to N-Triples upstream.
"""

from __future__ import annotations

import re
from typing import Iterator, TextIO

from repro.rdf.graph import Graph
from repro.rdf.namespace import XSD
from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triple import Triple

RDF_TYPE = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


class TurtleParseError(ValueError):
    """Malformed Turtle; message carries the line number."""

    def __init__(self, message: str, lineno: int | None = None) -> None:
        self.lineno = lineno
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<triplequote>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<iri><[^<>\s]*>)
  | (?P<prefix_decl>@prefix\b|@base\b|PREFIX\b|BASE\b)
  | (?P<lang>@[A-Za-z][A-Za-z0-9-]*)
  | (?P<caret>\^\^)
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<star>\*)
  | (?P<punct>[;,.\[\](){}])
  | (?P<bnode>_:[A-Za-z0-9_][A-Za-z0-9_.-]*)
  | (?P<number>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<pname>[A-Za-z_][A-Za-z0-9_.-]*)?:(?P<plocal>[A-Za-z0-9_][A-Za-z0-9_.%-]*)?
  | (?P<keyword>\b(?:a|true|false)\b)
  | (?P<bareword>[A-Za-z_][A-Za-z0-9_.-]*)
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


class _Token:
    __slots__ = ("kind", "text", "lineno")

    def __init__(self, kind: str, text: str, lineno: int) -> None:
        self.kind = kind
        self.text = text
        self.lineno = lineno

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.lineno})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    lineno = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None or m.end() == pos:
            snippet = text[pos : pos + 20]
            raise TurtleParseError(f"unexpected input: {snippet!r}", lineno)
        kind = m.lastgroup or ""
        raw = m.group()
        if kind == "plocal" or kind == "pname":
            # The pname/plocal alternation matched a prefixed name (or a
            # lone ':'); normalize to one token carrying the full text.
            tokens.append(_Token("pname_full", raw, lineno))
        elif kind in ("keyword", "bareword"):
            if raw == "a":
                tokens.append(_Token("kw_a", raw, lineno))
            elif raw in ("true", "false"):
                tokens.append(_Token("boolean", raw, lineno))
            else:
                tokens.append(_Token("bareword", raw, lineno))
        elif kind not in ("ws", "comment"):
            tokens.append(_Token(kind, raw, lineno))
        lineno += raw.count("\n")
        pos = m.end()
    return tokens


def _unescape(raw: str, lineno: int) -> str:
    out: list[str] = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        if c != "\\":
            out.append(c)
            i += 1
            continue
        if i + 1 >= n:
            raise TurtleParseError("dangling escape", lineno)
        esc = raw[i + 1]
        if esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        elif esc == "u":
            out.append(chr(int(raw[i + 2 : i + 6], 16)))
            i += 6
        elif esc == "U":
            out.append(chr(int(raw[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise TurtleParseError(f"unknown escape '\\{esc}'", lineno)
    return "".join(out)


class _TurtleParser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.prefixes: dict[str, str] = {}
        self.base = ""

    def peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            last = self.tokens[-1].lineno if self.tokens else 1
            raise TurtleParseError("unexpected end of input", last)
        self.index += 1
        return tok

    def expect_punct(self, char: str) -> None:
        tok = self.next()
        if tok.kind != "punct" or tok.text != char:
            raise TurtleParseError(
                f"expected {char!r}, found {tok.text!r}", tok.lineno
            )

    # -- productions -----------------------------------------------------------

    def parse(self) -> Iterator[Triple]:
        while True:
            tok = self.peek()
            if tok is None:
                return
            if tok.kind == "prefix_decl":
                self._directive()
                continue
            yield from self._triples_block()

    def _directive(self) -> None:
        decl = self.next()
        keyword = decl.text.lstrip("@").lower()
        if keyword == "prefix":
            name_tok = self.next()
            if name_tok.kind != "pname_full" or not name_tok.text.endswith(":"):
                raise TurtleParseError(
                    f"expected prefix name, found {name_tok.text!r}",
                    name_tok.lineno,
                )
            iri_tok = self.next()
            if iri_tok.kind != "iri":
                raise TurtleParseError(
                    f"expected IRI, found {iri_tok.text!r}", iri_tok.lineno
                )
            self.prefixes[name_tok.text[:-1]] = self._resolve(iri_tok.text[1:-1])
        else:  # base
            iri_tok = self.next()
            if iri_tok.kind != "iri":
                raise TurtleParseError(
                    f"expected IRI, found {iri_tok.text!r}", iri_tok.lineno
                )
            self.base = self._resolve(iri_tok.text[1:-1])
        # Turtle directives end with '.'; SPARQL-style ones don't.
        if decl.text.startswith("@"):
            self.expect_punct(".")

    def _resolve(self, iri: str) -> str:
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
            return self.base + iri
        return iri

    def _triples_block(self) -> Iterator[Triple]:
        subject = self._subject()
        while True:
            predicate = self._predicate()
            while True:
                obj = self._object()
                yield Triple(subject, predicate, obj)
                tok = self.peek()
                if tok is not None and tok.kind == "punct" and tok.text == ",":
                    self.next()
                    continue
                break
            tok = self.peek()
            if tok is not None and tok.kind == "punct" and tok.text == ";":
                self.next()
                # Tolerate trailing ';' before '.'.
                nxt = self.peek()
                if nxt is not None and nxt.kind == "punct" and nxt.text == ".":
                    self.next()
                    return
                continue
            self.expect_punct(".")
            return

    def _subject(self) -> Term:
        term = self._term()
        if isinstance(term, Literal):
            raise TurtleParseError("literal subject not allowed")
        return term

    def _predicate(self) -> URI:
        tok = self.peek()
        if tok is not None and tok.kind == "kw_a":
            self.next()
            return RDF_TYPE
        term = self._term()
        if not isinstance(term, URI):
            raise TurtleParseError(f"predicate must be an IRI, got {term}")
        return term

    def _object(self) -> Term:
        return self._term()

    def _term(self) -> Term:
        tok = self.next()
        if tok.kind == "iri":
            return URI(self._resolve(_unescape(tok.text[1:-1], tok.lineno)))
        if tok.kind == "pname_full":
            return self._expand_pname(tok)
        if tok.kind == "bnode":
            return BNode(tok.text[2:])
        if tok.kind in ("string", "triplequote"):
            quote_len = 3 if tok.kind == "triplequote" else 1
            lexical = _unescape(tok.text[quote_len:-quote_len], tok.lineno)
            nxt = self.peek()
            if nxt is not None and nxt.kind == "caret":
                self.next()
                dtype = self._term()
                if not isinstance(dtype, URI):
                    raise TurtleParseError("datatype must be an IRI", tok.lineno)
                return Literal(lexical, datatype=dtype)
            if nxt is not None and nxt.kind == "lang":
                self.next()
                return Literal(lexical, language=nxt.text[1:])
            return Literal(lexical)
        if tok.kind == "number":
            if "." in tok.text or "e" in tok.text or "E" in tok.text:
                return Literal(tok.text, datatype=XSD.decimal)
            return Literal(tok.text, datatype=XSD.integer)
        if tok.kind == "boolean":
            return Literal(tok.text, datatype=XSD.boolean)
        if tok.kind == "punct" and tok.text in "[(":
            raise TurtleParseError(
                "collection/anonymous-node syntax is outside the supported "
                "Turtle subset (convert to N-Triples upstream)",
                tok.lineno,
            )
        raise TurtleParseError(f"unexpected token {tok.text!r}", tok.lineno)

    def _expand_pname(self, tok: _Token) -> URI:
        text = tok.text
        colon = text.index(":")
        prefix, local = text[:colon], text[colon + 1 :]
        namespace = self.prefixes.get(prefix)
        if namespace is None:
            raise TurtleParseError(
                f"unknown prefix {prefix + ':'!r}", tok.lineno
            )
        return URI(namespace + local.replace("%", "%"))


def parse_turtle(source: str | TextIO) -> Iterator[Triple]:
    """Parse a Turtle document (string or stream), yielding triples.

    >>> list(parse_turtle('''
    ... @prefix ex: <http://x.org/> .
    ... ex:alice a ex:Person ; ex:knows ex:bob, ex:carol .
    ... '''))[0].p.local_name()
    'type'
    """
    text = source if isinstance(source, str) else source.read()
    yield from _TurtleParser(text).parse()


def parse_turtle_graph(source: str | TextIO) -> Graph:
    """Parse a Turtle document into a fresh :class:`Graph`."""
    return Graph(parse_turtle(source))


# -- serialization -------------------------------------------------------------

def _render_term(term: Term, prefixes: dict[str, str]) -> str:
    """Turtle form of a term, preferring prefixed names."""
    if isinstance(term, URI):
        if term == RDF_TYPE:
            return "a"
        for name, prefix in prefixes.items():
            if term.value.startswith(prefix):
                local = term.value[len(prefix):]
                if local and local[0].isalpha() and all(
                    c.isalnum() or c in "_-" for c in local
                ):
                    return f"{name}:{local}"
        return f"<{term.value}>"
    # BNode and Literal n3 forms are valid Turtle.
    return term.n3()


def serialize_turtle(
    graph: Graph,
    prefixes: dict[str, str] | None = None,
    base: str | None = None,
) -> str:
    """Serialize a graph as Turtle, grouped by subject with ';'/',' lists
    and the ``a`` keyword; deterministic (term-order sorted) so output is
    diff-stable.

    >>> g = Graph()
    >>> _ = g.add_spo(URI("http://x.org/s"), RDF_TYPE, URI("http://x.org/T"))
    >>> print(serialize_turtle(g, {"ex": "http://x.org/"}).strip())
    @prefix ex: <http://x.org/> .
    <BLANKLINE>
    ex:s a ex:T .
    """
    prefixes = dict(prefixes or {})
    lines: list[str] = []
    if base:
        lines.append(f"@base <{base}> .")
    for name in sorted(prefixes):
        lines.append(f"@prefix {name}: <{prefixes[name]}> .")
    if lines:
        lines.append("")

    by_subject: dict[Term, dict[Term, list[Term]]] = {}
    for t in graph:
        by_subject.setdefault(t.s, {}).setdefault(t.p, []).append(t.o)

    for subject in sorted(by_subject):
        subject_text = _render_term(subject, prefixes)
        predicate_parts: list[str] = []
        predicates = sorted(by_subject[subject])
        # 'a' (rdf:type) first, per Turtle convention.
        predicates.sort(key=lambda p: (p != RDF_TYPE, p))
        for predicate in predicates:
            objects = ", ".join(
                _render_term(o, prefixes)
                for o in sorted(by_subject[subject][predicate])
            )
            predicate_parts.append(
                f"{_render_term(predicate, prefixes)} {objects}"
            )
        joined = " ;\n    ".join(predicate_parts)
        lines.append(f"{subject_text} {joined} .")
    return "\n".join(lines) + "\n"
