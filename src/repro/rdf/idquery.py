"""Id-native vectorized BGP evaluation over the columnar stores.

:class:`~repro.rdf.query.BGPQuery` answers a basic graph pattern with a
term-level index-nested-loop join: one Python dict allocation and one
``match_triple`` call per candidate row.  This module evaluates the same
queries as *column operations* over the :data:`~repro.datalog.columnar.IdStore`
probe surface (:class:`~repro.rdf.idstore.IdGraph` and
:class:`~repro.rdf.runstore.RunStore` alike) — the read-path counterpart
of the PR-5 columnar fixpoint engine, and the machinery the distributed
query fast path (:mod:`repro.parallel.query`) and the serving tier
(:mod:`repro.serving`) answer from:

* each pattern becomes one *batch probe*: the partial solutions' bound
  columns are handed to ``store.probe`` whole, which answers every
  partial solution with a single pair of searchsorted calls per sorted
  segment (a vectorized merge join against the index order);
* fresh variables are bound by fancy-indexing the matched rows' value
  columns — the "hash join" side is ``reps``, the match-to-solution
  fan-out array, applied to every existing column at once;
* join order is greedy most-bound-first, with per-pattern cardinality
  estimates from the index (``store.count_matching``) as the tiebreak —
  ``ordering="bound"`` reproduces :meth:`BGPQuery._order` exactly, which
  makes probe counts comparable 1:1 with the term engine (the
  differential tests rely on this).

Work accounting matches the term engine's definition: ``index_probes``
counts every candidate row surfaced by an index probe *before*
repeated-variable filtering, exactly as ``match_atom`` counts index hits
before ``match_triple``.  Under ``ordering="bound"`` the two engines'
probe counts are therefore equal on equal stores.

:class:`IdIndex` bridges from term land: a cached id-encoded mirror of a
:class:`~repro.rdf.graph.Graph`, keyed on the graph's version counter and
rebuilt only when the graph actually changed — the contract the ST300
dataflow verifier checks declaratively (see
:mod:`repro.analysis.dataflow`).
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.datalog.ast import Atom, Bindings
from repro.datalog.columnar import IdStore
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.idstore import IdGraph, pack_columns
from repro.rdf.query import BGPQuery, BGPStats
from repro.rdf.runstore import RunStore
from repro.rdf.terms import Term, Variable

_EMPTY = np.empty(0, dtype=np.int64)

_ORDERINGS = ("estimate", "bound")


class SupportsQueryDictionary(Protocol):
    """The dictionary surface query evaluation needs: non-minting term
    lookup plus decode.  Both :class:`~repro.rdf.dictionary.TermDictionary`
    and :class:`~repro.rdf.dictionary.PartitionDictionary` satisfy it."""

    def get(self, term: Term) -> int | None: ...

    def decode_many(self, ids: np.ndarray) -> list[Term]: ...


def join_pattern(
    store: IdStore,
    atom: Atom,
    env: dict[Variable, np.ndarray],
    n_env: int,
    lookup: Callable[[Term], int | None],
) -> tuple[dict[Variable, np.ndarray], int, int]:
    """One step of the vectorized join: extend the solution table with
    ``atom``'s matches in ``store``.

    ``env`` maps each already-bound variable to an int64 column of length
    ``n_env`` (solution i is row i across all columns); ``lookup`` encodes
    constant terms (``None`` means the term cannot occur in the store).
    Returns the extended ``(env, n, probes)`` — ``probes`` is the number
    of candidate rows the index surfaced *before* repeated-variable
    filtering, the term-engine-compatible work unit.

    This is the shared kernel of :meth:`IdBGPQuery.execute_ids` and the
    coordinator-side join of the distributed query fast path
    (:mod:`repro.parallel.query`), which runs it against per-pattern
    gathered stores.
    """
    items: list[tuple[int, np.ndarray]] = []
    fresh: dict[Variable, int] = {}
    dup_checks: list[tuple[int, int]] = []
    for pos, term in enumerate(atom):
        if isinstance(term, Variable):
            if term in env:
                items.append((pos, env[term]))
            elif term in fresh:
                dup_checks.append((pos, fresh[term]))
            else:
                fresh[term] = pos
        else:
            tid = lookup(term)
            if tid is None:
                return {v: _EMPTY for v in env}, 0, 0
            items.append((pos, np.full(n_env, tid, dtype=np.int64)))
    if items:
        items.sort(key=lambda item: item[0])
        vals, reps = store.probe(
            tuple(pos for pos, _col in items),
            tuple(col for _pos, col in items),
        )
    else:
        # Fully unconstrained pattern: the cartesian product of the
        # current solutions with every store row.
        s, p, o = store.columns()
        reps = np.repeat(np.arange(n_env, dtype=np.int64), len(s))
        vals = (np.tile(s, n_env), np.tile(p, n_env), np.tile(o, n_env))
    probes = len(reps)
    if dup_checks and len(reps):
        mask = np.ones(len(reps), dtype=bool)
        for pos, first in dup_checks:
            mask &= vals[pos] == vals[first]
        reps = reps[mask]
        vals = (vals[0][mask], vals[1][mask], vals[2][mask])
    out = {v: col[reps] for v, col in env.items()}
    for var, pos in fresh.items():
        out[var] = vals[pos]
    return out, len(reps), probes


class IdBGPQuery:
    """A conjunctive triple-pattern query evaluated in id space.

    ``dictionary`` supplies the term <-> id mapping (``get`` /
    ``decode_many``); evaluation itself never touches a term object.
    A constant term the dictionary has never seen cannot occur in the
    store, so such a pattern short-circuits to zero solutions.

    >>> from repro.datalog.ast import Atom
    >>> from repro.rdf import Graph, URI
    >>> from repro.rdf.terms import Variable
    >>> g = Graph()
    >>> _ = g.add_spo(URI("ex:alice"), URI("ex:knows"), URI("ex:bob"))
    >>> _ = g.add_spo(URI("ex:bob"), URI("ex:knows"), URI("ex:carol"))
    >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
    >>> index = IdIndex(g)
    >>> q = BGPQuery([Atom(x, URI("ex:knows"), y), Atom(y, URI("ex:knows"), z)])
    >>> [tuple(str(t) for t in row) for row in index.select(q, x, z)]
    [('ex:alice', 'ex:carol')]
    """

    def __init__(
        self,
        patterns: Sequence[Atom],
        dictionary: SupportsQueryDictionary,
        ordering: str = "estimate",
    ) -> None:
        if not patterns:
            raise ValueError("a BGP needs at least one pattern")
        for pat in patterns:
            if not isinstance(pat, Atom):
                raise TypeError(f"pattern must be an Atom, got {pat!r}")
        if ordering not in _ORDERINGS:
            raise ValueError(
                f"ordering must be one of {_ORDERINGS}, got {ordering!r}")
        self.patterns = tuple(patterns)
        self.dictionary = dictionary
        self.ordering = ordering

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for pat in self.patterns:
            out |= pat.variables()
        return out

    # -- join ordering ----------------------------------------------------

    def _estimates(self, store: IdStore) -> dict[Atom, int]:
        """Constant-selectivity estimate per pattern: how many store rows
        match the pattern's ground positions (ignoring variables)."""
        total = len(store)
        out: dict[Atom, int] = {}
        for pat in self.patterns:
            items: list[tuple[int, int]] = []
            dead = False
            for pos, term in enumerate(pat):
                if isinstance(term, Variable):
                    continue
                tid = self.dictionary.get(term)
                if tid is None:
                    dead = True
                    break
                items.append((pos, tid))
            if dead:
                out[pat] = 0
            elif not items:
                out[pat] = total
            else:
                positions = tuple(pos for pos, _tid in items)
                cols = tuple(
                    np.asarray([tid], dtype=np.int64) for _pos, tid in items)
                out[pat] = int(store.count_matching(positions, cols)[0])
        return out

    def _order(self, store: IdStore, bound: set[Variable]) -> list[Atom]:
        """Greedy most-bound-first join order; under ``"estimate"`` the
        index cardinality estimate breaks ties toward selective patterns
        (a ground-position probe expected to match few rows runs before
        an open scan of the same boundness)."""
        estimates = (
            self._estimates(store) if self.ordering == "estimate" else {})
        remaining = list(self.patterns)
        ordered: list[Atom] = []
        bound = set(bound)
        while remaining:
            def boundness(atom: Atom) -> tuple[int, ...]:
                ground = sum(
                    1
                    for t in atom
                    if not isinstance(t, Variable) or t in bound
                )
                if self.ordering == "estimate":
                    return (ground, -estimates[atom], -len(atom.variables()))
                return (ground, -len(atom.variables()))

            best = max(remaining, key=boundness)
            remaining.remove(best)
            ordered.append(best)
            bound |= best.variables()
        return ordered

    # -- evaluation -------------------------------------------------------

    def _seed(
        self, bindings: Bindings | None
    ) -> tuple[dict[Variable, np.ndarray], int]:
        """The initial solution table: one row carrying the caller's
        bindings, or zero rows when a bound term is unknown."""
        env: dict[Variable, np.ndarray] = {}
        if not bindings:
            return env, 1
        for var, term in bindings.items():
            tid = self.dictionary.get(term)
            if tid is None:
                return {v: _EMPTY for v in bindings}, 0
            env[var] = np.asarray([tid], dtype=np.int64)
        return env, 1

    def execute_ids(
        self, store: IdStore, bindings: Bindings | None = None
    ) -> tuple[dict[Variable, np.ndarray], int, int]:
        """Evaluate against an id store, staying in id space.

        Returns ``(env, n, index_probes)``: ``env`` maps each variable to
        an int64 column of length ``n`` (solution i is row i across all
        columns), and ``index_probes`` is the term-engine-compatible work
        count (candidate rows surfaced, pre-filtering).
        """
        env, n_env = self._seed(bindings)
        probes = 0
        for atom in self._order(store, set(env)):
            if n_env == 0:
                break
            env, n_env, step_probes = join_pattern(
                store, atom, env, n_env, self.dictionary.get)
            probes += step_probes
        return env, n_env, probes

    def execute(
        self, store: IdStore, bindings: Bindings | None = None
    ) -> list[Bindings]:
        """Every solution mapping, decoded back to terms (the term
        engine's :meth:`BGPQuery.execute` contract, materialized)."""
        env, n, _probes = self.execute_ids(store, bindings)
        return self._decode(env, n)

    def execute_with_stats(
        self, store: IdStore, bindings: Bindings | None = None
    ) -> tuple[list[Bindings], BGPStats]:
        """Like :meth:`execute`, with term-engine-compatible accounting."""
        env, n, probes = self.execute_ids(store, bindings)
        return self._decode(env, n), BGPStats(
            patterns=len(self.patterns), index_probes=probes, solutions=n)

    def _decode(
        self, env: Mapping[Variable, np.ndarray], n: int
    ) -> list[Bindings]:
        decoded = {
            var: self.dictionary.decode_many(col)
            for var, col in env.items()
        }
        return [
            {var: terms[i] for var, terms in decoded.items()}
            for i in range(n)
        ]

    def count(self, store: IdStore) -> int:
        _env, n, _probes = self.execute_ids(store)
        return n

    def ask(self, store: IdStore) -> bool:
        """SPARQL ASK semantics: does at least one solution exist?"""
        _env, n, _probes = self.execute_ids(store)
        return n > 0

    def select(
        self, store: IdStore, *variables: Variable
    ) -> list[tuple[Term, ...]]:
        """SPARQL SELECT semantics: distinct projected rows, sorted.

        Deduplication happens in id space (one ``np.unique`` over the
        packed projection columns); only the surviving rows are decoded.
        """
        if not variables:
            raise ValueError("select needs at least one projection variable")
        unknown = set(variables) - self.variables()
        if unknown:
            names = ", ".join(sorted(str(v) for v in unknown))
            raise ValueError(f"projection variable(s) not in query: {names}")
        env, n, _probes = self.execute_ids(store)
        if n == 0:
            return []
        packed = pack_columns(tuple(env[v] for v in variables))
        _uniq, first = np.unique(packed, return_index=True)
        decoded = {
            v: self.dictionary.decode_many(env[v][first])
            for v in variables
        }
        return sorted(
            tuple(decoded[v][i] for v in variables)
            for i in range(len(first))
        )

    def __repr__(self) -> str:
        return f"IdBGPQuery({list(self.patterns)!r})"


def _patterns_of(query: BGPQuery | Sequence[Atom]) -> Sequence[Atom]:
    if isinstance(query, BGPQuery):
        return query.patterns
    return query


class IdIndex:
    """A cached id-encoded mirror of a term :class:`Graph`.

    The mirror — a private :class:`TermDictionary` plus an id store
    holding the encoded rows — is built lazily and keyed on the graph's
    monotone :attr:`~repro.rdf.graph.Graph.version` counter: queries
    between graph mutations reuse it, the first query after a mutation
    rebuilds.  ``store="run"`` mirrors into a :class:`RunStore` instead
    of the dense :class:`IdGraph` (same probe surface, compressed runs).
    """

    def __init__(
        self,
        graph: Graph,
        store: str = "dense",
        ordering: str = "estimate",
    ) -> None:
        if store not in ("dense", "run"):
            raise ValueError(f'store must be "dense" or "run", got {store!r}')
        self._graph = graph
        self._store_kind = store
        self._ordering = ordering
        #: Graph version the mirror was built at; compared against the
        #: live graph on every read (the cache's staleness guard).
        self._key: int | None = None
        self._mirror: tuple[TermDictionary, IdGraph | RunStore] | None = None

    def current(self) -> tuple[TermDictionary, IdGraph | RunStore]:
        """The up-to-date ``(dictionary, store)`` mirror, rebuilding if
        the underlying graph's version moved."""
        key = self._graph.version
        if self._mirror is None or self._key != key:
            dictionary = TermDictionary()
            n = len(self._graph)
            s = np.empty(n, dtype=np.int64)
            p = np.empty(n, dtype=np.int64)
            o = np.empty(n, dtype=np.int64)
            enc = dictionary.encode
            for i, t in enumerate(self._graph):
                s[i] = enc(t.s)
                p[i] = enc(t.p)
                o[i] = enc(t.o)
            mirror_store: IdGraph | RunStore = (
                RunStore() if self._store_kind == "run" else IdGraph())
            mirror_store.add_rows(s, p, o)
            self._mirror = (dictionary, mirror_store)
            self._key = key
        return self._mirror

    def query(self, query: BGPQuery | Sequence[Atom]) -> IdBGPQuery:
        """An :class:`IdBGPQuery` bound to the current mirror's
        dictionary (rebuild the returned object after graph mutations)."""
        dictionary, _store = self.current()
        return IdBGPQuery(
            _patterns_of(query), dictionary, ordering=self._ordering)

    def execute(
        self,
        query: BGPQuery | Sequence[Atom],
        bindings: Bindings | None = None,
    ) -> list[Bindings]:
        dictionary, store = self.current()
        return IdBGPQuery(
            _patterns_of(query), dictionary, ordering=self._ordering
        ).execute(store, bindings)

    def execute_with_stats(
        self,
        query: BGPQuery | Sequence[Atom],
        bindings: Bindings | None = None,
    ) -> tuple[list[Bindings], BGPStats]:
        dictionary, store = self.current()
        return IdBGPQuery(
            _patterns_of(query), dictionary, ordering=self._ordering
        ).execute_with_stats(store, bindings)

    def select(
        self, query: BGPQuery | Sequence[Atom], *variables: Variable
    ) -> list[tuple[Term, ...]]:
        dictionary, store = self.current()
        return IdBGPQuery(
            _patterns_of(query), dictionary, ordering=self._ordering
        ).select(store, *variables)

    def ask(self, query: BGPQuery | Sequence[Atom]) -> bool:
        dictionary, store = self.current()
        return IdBGPQuery(
            _patterns_of(query), dictionary, ordering=self._ordering
        ).ask(store)

    def count(self, query: BGPQuery | Sequence[Atom]) -> int:
        dictionary, store = self.current()
        return IdBGPQuery(
            _patterns_of(query), dictionary, ordering=self._ordering
        ).count(store)

    def __repr__(self) -> str:
        built = "stale" if self._key != self._graph.version else "fresh"
        return (f"<IdIndex over {len(self._graph)} triples "
                f"({self._store_kind}, {built})>")
