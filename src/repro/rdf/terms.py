"""RDF term model.

Terms are interned, immutable, and ordered, so they can be dict keys,
set members, and sort keys throughout the stack.  Four concrete kinds:

* :class:`URI` — an IRI reference (``<http://...>`` in N-Triples).
* :class:`BNode` — a blank node with a local label (``_:b0``).
* :class:`Literal` — a lexical form with optional datatype IRI or language
  tag (mutually exclusive, as in RDF 1.1).
* :class:`Variable` — a rule/query variable (``?x``).  Variables are never
  stored in a graph; they appear only in rule atoms and query patterns.

Interning: constructing the same URI twice yields the *same object*, which
makes the equality checks in the datalog inner loops pointer comparisons in
the common case and roughly halves the memory of large parsed graphs.
"""

from __future__ import annotations

from typing import Union

# Intern tables.  Keyed by the constructor arguments; values are the
# canonical instances.  These are process-global on purpose: terms carry no
# mutable state, and workers in the multiprocessing backend re-intern on
# unpickling via __reduce__.
_URI_INTERN: dict[str, "URI"] = {}
_BNODE_INTERN: dict[str, "BNode"] = {}
_LITERAL_INTERN: dict[tuple, "Literal"] = {}
_VARIABLE_INTERN: dict[str, "Variable"] = {}

# Sort-rank per term kind, so heterogeneous term collections have a total
# order: URIs < BNodes < Literals < Variables.
_KIND_URI = 0
_KIND_BNODE = 1
_KIND_LITERAL = 2
_KIND_VARIABLE = 3


class Term:
    """Base class for all RDF terms.  Not instantiated directly."""

    __slots__ = ("_key", "_hash")

    _kind: int = -1

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        return self._kind == other._kind and self._key == other._key

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return not eq

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        if self._kind != other._kind:
            return self._kind < other._kind
        return self._key < other._key

    def __le__(self, other: "Term") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return other < self

    def __ge__(self, other: "Term") -> bool:
        return self == other or other < self

    @property
    def is_variable(self) -> bool:
        return self._kind == _KIND_VARIABLE

    @property
    def is_literal(self) -> bool:
        return self._kind == _KIND_LITERAL


class URI(Term):
    """An IRI reference term.

    >>> URI("http://example.org/a") is URI("http://example.org/a")
    True
    """

    __slots__ = ("value",)
    _kind = _KIND_URI

    def __new__(cls, value: str) -> "URI":
        cached = _URI_INTERN.get(value)
        if cached is not None:
            return cached
        if not isinstance(value, str):
            raise TypeError(f"URI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("URI value must be non-empty")
        self = object.__new__(cls)
        self.value = value
        self._key = value
        self._hash = hash((_KIND_URI, value))
        _URI_INTERN[value] = self
        return self

    def __repr__(self) -> str:
        return f"URI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """N-Triples form: ``<iri>``."""
        return f"<{self.value}>"

    def local_name(self) -> str:
        """The fragment after the last ``#`` or ``/`` — a display helper.

        >>> URI("http://example.org/ns#Student").local_name()
        'Student'
        """
        value = self.value
        for sep in ("#", "/"):
            idx = value.rfind(sep)
            if idx >= 0 and idx + 1 < len(value):
                return value[idx + 1 :]
        return value

    def __reduce__(self):
        return (URI, (self.value,))


class BNode(Term):
    """A blank node, identified by a local label.

    Labels are scoped to the document/graph they came from; the library
    treats equal labels as the same node, so generators must emit globally
    unique labels (they do, via their run id).
    """

    __slots__ = ("label",)
    _kind = _KIND_BNODE

    def __new__(cls, label: str) -> "BNode":
        cached = _BNODE_INTERN.get(label)
        if cached is not None:
            return cached
        if not isinstance(label, str):
            raise TypeError(f"BNode label must be str, got {type(label).__name__}")
        if not label:
            raise ValueError("BNode label must be non-empty")
        self = object.__new__(cls)
        self.label = label
        self._key = label
        self._hash = hash((_KIND_BNODE, label))
        _BNODE_INTERN[label] = self
        return self

    def __repr__(self) -> str:
        return f"BNode({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        return f"_:{self.label}"

    def __reduce__(self):
        return (BNode, (self.label,))


class Literal(Term):
    """An RDF literal: lexical form + optional datatype or language tag.

    >>> Literal("3", datatype=URI("http://www.w3.org/2001/XMLSchema#integer"))
    Literal('3', datatype=URI('http://www.w3.org/2001/XMLSchema#integer'))
    """

    __slots__ = ("lexical", "datatype", "language")
    _kind = _KIND_LITERAL

    def __new__(
        cls,
        lexical: str,
        datatype: URI | None = None,
        language: str | None = None,
    ) -> "Literal":
        if not isinstance(lexical, str):
            raise TypeError(
                f"Literal lexical form must be str, got {type(lexical).__name__}"
            )
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot have both a datatype and a language")
        if language is not None:
            language = language.lower()
        # "" stands in for "absent" so the key stays totally ordered
        # (None < str raises); no collision is possible because URI values
        # and language tags are never empty.
        key = (lexical, datatype.value if datatype else "", language or "")
        cached = _LITERAL_INTERN.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self.lexical = lexical
        self.datatype = datatype
        self.language = language
        self._key = key
        self._hash = hash((_KIND_LITERAL, key))
        _LITERAL_INTERN[key] = self
        return self

    def __repr__(self) -> str:
        parts = [repr(self.lexical)]
        if self.datatype is not None:
            parts.append(f"datatype={self.datatype!r}")
        if self.language is not None:
            parts.append(f"language={self.language!r}")
        return f"Literal({', '.join(parts)})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        _linebreakish = "\x85\u2028\u2029"
        if any(ord(c) < 0x20 or c in _linebreakish for c in escaped):
            # Remaining control characters (and the Unicode line separators
            # that str.splitlines treats as newlines) as \uXXXX escapes, per
            # the N-Triples grammar.
            escaped = "".join(
                f"\\u{ord(c):04X}"
                if (ord(c) < 0x20 or c in _linebreakish)
                else c
                for c in escaped
            )
        if self.datatype is not None:
            return f'"{escaped}"^^{self.datatype.n3()}'
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        return f'"{escaped}"'

    def __reduce__(self):
        return (Literal, (self.lexical, self.datatype, self.language))


class Variable(Term):
    """A rule/query variable, written ``?name``.

    Variables never occur in stored triples; :class:`repro.rdf.graph.Graph`
    rejects them on insert.
    """

    __slots__ = ("name",)
    _kind = _KIND_VARIABLE

    def __new__(cls, name: str) -> "Variable":
        cached = _VARIABLE_INTERN.get(name)
        if cached is not None:
            return cached
        if not isinstance(name, str):
            raise TypeError(f"Variable name must be str, got {type(name).__name__}")
        if not name:
            raise ValueError("Variable name must be non-empty")
        if name.startswith("?"):
            raise ValueError("Variable name should not include the '?' sigil")
        self = object.__new__(cls)
        self.name = name
        self._key = name
        self._hash = hash((_KIND_VARIABLE, name))
        _VARIABLE_INTERN[name] = self
        return self

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"

    def n3(self) -> str:
        return f"?{self.name}"

    def __reduce__(self):
        return (Variable, (self.name,))


GroundTerm = Union[URI, BNode, Literal]


def is_resource(term: Term) -> bool:
    """True for terms that can be graph *nodes* subject to ownership
    assignment in data partitioning: URIs and blank nodes (not literals —
    literals never join on the paper's rule set's shared variable because
    they cannot appear in subject position)."""
    return isinstance(term, (URI, BNode))


def intern_stats() -> dict[str, int]:
    """Sizes of the intern tables — used by memory diagnostics and tests."""
    return {
        "uri": len(_URI_INTERN),
        "bnode": len(_BNODE_INTERN),
        "literal": len(_LITERAL_INTERN),
        "variable": len(_VARIABLE_INTERN),
    }
