"""Id-native columnar triple store.

:class:`IdGraph` holds a set of triples as three parallel int64 numpy
columns — no term objects, no per-triple Python allocation.  It is the
storage half of the columnar fixpoint path ("Datalog Reasoning over
Compressed RDF Knowledge Bases" makes the case that dictionary-encoded,
column-oriented storage is what keeps rule closure memory- and
CPU-efficient); the execution half lives in :mod:`repro.datalog.columnar`.

Index layout
------------

Instead of the term store's three nested-dict indexes (SPO/POS/OSP), the
columnar store keeps *lazily-built sorted views*: for any subset of bound
positions — ``(p,)``, ``(p, o)``, ``(s, p)``, ``(s, p, o)``, ... — it
materializes, on first use, the rows' keys over those positions sorted
lexicographically together with the permutation back to row numbers
(:meth:`IdGraph.sorted_view`).  A pattern lookup is then a pair of
``searchsorted`` calls yielding a contiguous ``[lo, hi)`` range per query
— the vectorized equivalent of one nested-dict walk per tuple — and a
batch of Q patterns is answered by *one* pair of searchsorted calls over
all Q keys.  Views are cached per position subset and invalidated by
append, so a semi-naive round pays at most one O(n log n) sort per view
it actually probes.

Multi-column keys use numpy *structured dtypes* (one int64 field per
position): numpy sorts and searches structured arrays field-
lexicographically, which gives correct multi-column ordering without
bit-packing tricks or precision loss.

Deduplication is vectorized throughout: batch-internal dedup is a
``sort``/``unique`` over packed keys, store-membership is a searchsorted
probe against the sorted (s, p, o) view (:meth:`IdGraph.contains_rows`).
"""

from __future__ import annotations

import numpy as np

#: Growth factor for the amortized column buffers.
_GROWTH = 2
_EMPTY = np.empty(0, dtype=np.int64)


def pack_columns(columns: tuple[np.ndarray, ...]) -> np.ndarray:
    """Pack parallel int64 columns into one structured array (a single
    int64 array when only one column is given), whose element order is the
    lexicographic order of the column tuple — the key representation every
    sorted view and membership probe uses."""
    if len(columns) == 1:
        return np.ascontiguousarray(columns[0], dtype=np.int64)
    dtype = np.dtype([(f"f{i}", np.int64) for i in range(len(columns))])
    out = np.empty(len(columns[0]), dtype=dtype)
    for i, col in enumerate(columns):
        out[f"f{i}"] = col
    return out


def expand_ranges(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-query ``[lo, hi)`` index ranges.

    Returns ``(flat, reps)``: ``flat`` concatenates every range's indices;
    ``reps[i]`` is the query number that produced ``flat[i]``.  This is the
    vectorized "inner loop" of a merge join — each query row fans out to
    its matching sorted-view positions with no Python iteration.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    reps = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    flat = starts + (np.arange(total, dtype=np.int64) - resets)
    return flat, reps


def member_mask(sorted_keys: np.ndarray, query_keys: np.ndarray) -> np.ndarray:
    """Boolean membership of ``query_keys`` in the sorted key array."""
    if len(sorted_keys) == 0:
        return np.zeros(len(query_keys), dtype=bool)
    pos = np.searchsorted(sorted_keys, query_keys)
    pos_clipped = np.minimum(pos, len(sorted_keys) - 1)
    return np.asarray(
        (pos < len(sorted_keys)) & (sorted_keys[pos_clipped] == query_keys)
    )


class IdGraph:
    """A set of id-encoded triples as growable int64 columns.

    Rows are unique (set semantics, like :class:`repro.rdf.graph.Graph`);
    :meth:`add_rows` performs the vectorized dedup.  The store never
    inspects ids — term semantics (resource-ness, decode) live entirely in
    the dictionary layer.
    """

    __slots__ = ("_s", "_p", "_o", "_n", "_views")

    def __init__(self, capacity: int = 0) -> None:
        cap = max(capacity, 0)
        self._s = np.empty(cap, dtype=np.int64)
        self._p = np.empty(cap, dtype=np.int64)
        self._o = np.empty(cap, dtype=np.int64)
        self._n = 0
        #: position-subset -> (sorted keys, permutation to row numbers).
        self._views: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return self._n

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live ``(s, p, o)`` columns (views, not copies — treat as
        read-only)."""
        n = self._n
        return self._s[:n], self._p[:n], self._o[:n]

    def column(self, position: int) -> np.ndarray:
        """One live column by triple position (0=s, 1=p, 2=o)."""
        return self.columns()[position]

    # -- mutation ---------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need <= len(self._s):
            return
        cap = max(need, _GROWTH * len(self._s), 1024)
        for name in ("_s", "_p", "_o"):
            buf = np.empty(cap, dtype=np.int64)
            buf[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, buf)

    def add_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Insert rows, deduplicating against the batch and the store.

        Returns the rows actually added (unique, in key-sorted order) —
        the semi-naive "new facts" of a round.
        """
        if len(s) == 0:
            return _EMPTY, _EMPTY, _EMPTY
        keys = pack_columns((s, p, o))
        uniq, first = np.unique(keys, return_index=True)
        s, p, o = s[first], p[first], o[first]
        view = self._views.get((0, 1, 2))
        if view is not None:
            fresh = ~member_mask(view[0], uniq)
        elif self._n:
            fresh = ~member_mask(
                np.sort(pack_columns(self.columns())), uniq)
        else:
            fresh = np.ones(len(uniq), dtype=bool)
        s, p, o = s[fresh], p[fresh], o[fresh]
        if len(s):
            self._reserve(len(s))
            n = self._n
            self._s[n: n + len(s)] = s
            self._p[n: n + len(p)] = p
            self._o[n: n + len(o)] = o
            self._n = n + len(s)
            self._views.clear()
        return s, p, o

    # -- queries ----------------------------------------------------------

    def contains_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> np.ndarray:
        """Vectorized membership: ``mask[i]`` iff row i is in the store."""
        if self._n == 0:
            return np.zeros(len(s), dtype=bool)
        keys, _perm = self.sorted_view((0, 1, 2))
        return member_mask(keys, pack_columns((s, p, o)))

    def sorted_view(
        self, positions: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """The rows' keys over ``positions``, sorted, plus the permutation
        mapping sorted index -> row number.  Built lazily, cached until the
        next append."""
        cached = self._views.get(positions)
        if cached is None:
            keys = pack_columns(tuple(self.column(pos) for pos in positions))
            perm = np.argsort(keys, kind="stable")
            cached = self._views[positions] = (keys[perm], perm)
        return cached

    def range_lookup(
        self, positions: tuple[int, ...], query_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch pattern lookup: for each query key over ``positions``,
        the matching row numbers.

        Returns ``(rows, reps)`` where ``rows`` are store row numbers and
        ``reps[i]`` is the query that matched ``rows[i]`` — one
        searchsorted pair for the whole batch.
        """
        keys, perm = self.sorted_view(positions)
        lo = np.searchsorted(keys, query_keys, side="left")
        hi = np.searchsorted(keys, query_keys, side="right")
        flat, reps = expand_ranges(lo, hi)
        return perm[flat], reps

    def __repr__(self) -> str:
        return f"<IdGraph with {self._n} rows>"
