"""Id-native columnar triple store.

:class:`IdGraph` holds a set of triples as three parallel int64 numpy
columns — no term objects, no per-triple Python allocation.  It is the
storage half of the columnar fixpoint path ("Datalog Reasoning over
Compressed RDF Knowledge Bases" makes the case that dictionary-encoded,
column-oriented storage is what keeps rule closure memory- and
CPU-efficient); the execution half lives in :mod:`repro.datalog.columnar`.

Index layout
------------

Instead of the term store's three nested-dict indexes (SPO/POS/OSP), the
columnar store keeps *lazily-built sorted views*: for any subset of bound
positions — ``(p,)``, ``(p, o)``, ``(s, p)``, ``(s, p, o)``, ... — it
materializes, on first use, the rows' keys over those positions sorted
lexicographically together with the permutation back to row numbers
(:meth:`IdGraph.sorted_view`).  A pattern lookup is then a pair of
``searchsorted`` calls yielding a contiguous ``[lo, hi)`` range per query
— the vectorized equivalent of one nested-dict walk per tuple — and a
batch of Q patterns is answered by *one* pair of searchsorted calls over
all Q keys.

Views are cached per position subset and survive appends: a view built
over the first ``covered`` rows stays valid for those rows, and the
*pending tail* ``[covered, n)`` appended since is probed through a small
tail-only sort (O(t log t) for a tail of t rows) merged with the main
view's answer.  Only when the tail outgrows a threshold (a quarter of
the store by default) is the full view re-argsorted.  Alternating
append/probe workloads — the semi-naive loop is exactly that: every
round appends a delta, then probes — therefore pay per round for
sorting the delta, not the store.  ``sorted_view`` still returns a
full-coverage view (rebuilding when stale) for callers that need one
key array over all rows.

Multi-column keys use numpy *structured dtypes* (one int64 field per
position): numpy sorts and searches structured arrays field-
lexicographically, which gives correct multi-column ordering without
bit-packing tricks or precision loss.

Deduplication is vectorized throughout: batch-internal dedup is a
``sort``/``unique`` over packed keys, store-membership is a searchsorted
probe against the sorted (s, p, o) view (:meth:`IdGraph.contains_rows`).
"""

from __future__ import annotations

import numpy as np

#: Growth factor for the amortized column buffers.
_GROWTH = 2
_EMPTY = np.empty(0, dtype=np.int64)


def pack_columns(columns: tuple[np.ndarray, ...]) -> np.ndarray:
    """Pack parallel int64 columns into one structured array (a single
    int64 array when only one column is given), whose element order is the
    lexicographic order of the column tuple — the key representation every
    sorted view and membership probe uses."""
    if len(columns) == 1:
        return np.ascontiguousarray(columns[0], dtype=np.int64)
    dtype = np.dtype([(f"f{i}", np.int64) for i in range(len(columns))])
    out = np.empty(len(columns[0]), dtype=dtype)
    for i, col in enumerate(columns):
        out[f"f{i}"] = col
    return out


def expand_ranges(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-query ``[lo, hi)`` index ranges.

    Returns ``(flat, reps)``: ``flat`` concatenates every range's indices;
    ``reps[i]`` is the query number that produced ``flat[i]``.  This is the
    vectorized "inner loop" of a merge join — each query row fans out to
    its matching sorted-view positions with no Python iteration.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    reps = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    flat = starts + (np.arange(total, dtype=np.int64) - resets)
    return flat, reps


def member_mask(sorted_keys: np.ndarray, query_keys: np.ndarray) -> np.ndarray:
    """Boolean membership of ``query_keys`` in the sorted key array."""
    if len(sorted_keys) == 0:
        return np.zeros(len(query_keys), dtype=bool)
    pos = np.searchsorted(sorted_keys, query_keys)
    pos_clipped = np.minimum(pos, len(sorted_keys) - 1)
    return np.asarray(
        (pos < len(sorted_keys)) & (sorted_keys[pos_clipped] == query_keys)
    )


class IdGraph:
    """A set of id-encoded triples as growable int64 columns.

    Rows are unique (set semantics, like :class:`repro.rdf.graph.Graph`);
    :meth:`add_rows` performs the vectorized dedup.  The store never
    inspects ids — term semantics (resource-ness, decode) live entirely in
    the dictionary layer.
    """

    __slots__ = ("_s", "_p", "_o", "_n", "_views", "_tail_views",
                 "_tail_threshold", "_version")

    def __init__(
        self, capacity: int = 0, tail_threshold: int | None = None
    ) -> None:
        cap = max(capacity, 0)
        self._s = np.empty(cap, dtype=np.int64)
        self._p = np.empty(cap, dtype=np.int64)
        self._o = np.empty(cap, dtype=np.int64)
        self._n = 0
        #: position-subset -> (sorted keys, permutation to row numbers,
        #: rows covered).  Rows past ``covered`` are the pending tail.
        self._views: dict[
            tuple[int, ...], tuple[np.ndarray, np.ndarray, int]
        ] = {}
        #: position-subset -> (sorted tail keys, global row numbers,
        #: covered, n) — valid only while (covered, n) match the main view.
        self._tail_views: dict[
            tuple[int, ...], tuple[np.ndarray, np.ndarray, int, int]
        ] = {}
        #: Pending-tail size past which a probe rebuilds the full view
        #: instead of tail-probing; ``None`` = adaptive (a quarter of the
        #: store), ``0`` = always rebuild (the pre-tail-probing behavior,
        #: kept for the ablation microbench).
        self._tail_threshold = tail_threshold
        #: Monotone content version: bumped whenever the row set actually
        #: changes.  Anything derived from the rows (result caches, query
        #: mirrors) keys on this and is thereby invalidated by mutation.
        self._version = 0

    def __len__(self) -> int:
        return self._n

    @property
    def version(self) -> int:
        """Monotone counter distinguishing row-set states (caches key on
        it, mirroring :attr:`repro.rdf.graph.Graph.version`)."""
        return self._version

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live ``(s, p, o)`` columns (views, not copies — treat as
        read-only)."""
        n = self._n
        return self._s[:n], self._p[:n], self._o[:n]

    def column(self, position: int) -> np.ndarray:
        """One live column by triple position (0=s, 1=p, 2=o)."""
        return self.columns()[position]

    # -- mutation ---------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need <= len(self._s):
            return
        cap = max(need, _GROWTH * len(self._s), 1024)
        for name in ("_s", "_p", "_o"):
            buf = np.empty(cap, dtype=np.int64)
            buf[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, buf)

    def add_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Insert rows, deduplicating against the batch and the store.

        Returns the rows actually added (unique, in key-sorted order) —
        the semi-naive "new facts" of a round.
        """
        if len(s) == 0:
            return _EMPTY, _EMPTY, _EMPTY
        keys = pack_columns((s, p, o))
        uniq, first = np.unique(keys, return_index=True)
        s, p, o = s[first], p[first], o[first]
        if self._n:
            fresh = ~self._member_packed(uniq)
        else:
            fresh = np.ones(len(uniq), dtype=bool)
        s, p, o = s[fresh], p[fresh], o[fresh]
        if len(s):
            self._reserve(len(s))
            n = self._n
            self._s[n: n + len(s)] = s
            self._p[n: n + len(p)] = p
            self._o[n: n + len(o)] = o
            self._n = n + len(s)
            self._version += 1
        return s, p, o

    def delete_rows(self, s: np.ndarray, p: np.ndarray, o: np.ndarray) -> int:
        """Remove rows from the store; rows not present are ignored.

        Returns the number of rows actually removed.  Deletion is a
        validity-mask compaction: the matching rows are located through the
        canonical (s, p, o) view, a keep mask over the live rows is built,
        and the column buffers are rewritten densely in one pass.  Every
        cached sorted view is dropped (row numbers shift), so the next
        probe after a deletion pays one re-sort — the DRed maintenance
        loop deletes once per update batch, not per row, so this amortizes
        the same way the append path does.
        """
        if len(s) == 0 or self._n == 0:
            return 0
        keys = np.unique(pack_columns((s, p, o)))
        rows, _reps = self.range_lookup((0, 1, 2), keys)
        if len(rows) == 0:
            return 0
        n = self._n
        keep = np.ones(n, dtype=bool)
        keep[rows] = False
        for name in ("_s", "_p", "_o"):
            buf = getattr(self, name)
            buf[: n - len(rows)] = buf[:n][keep]
        self._n = n - len(rows)
        self._views.clear()
        self._tail_views.clear()
        self._version += 1
        return len(rows)

    # -- queries ----------------------------------------------------------

    def contains_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> np.ndarray:
        """Vectorized membership: ``mask[i]`` iff row i is in the store."""
        if self._n == 0:
            return np.zeros(len(s), dtype=bool)
        return self._member_packed(pack_columns((s, p, o)))

    def _member_packed(self, query_keys: np.ndarray) -> np.ndarray:
        """Membership of packed (s, p, o) keys, via the two-part view."""
        mask: np.ndarray | None = None
        for keys, _perm in self._view_parts((0, 1, 2)):
            part = member_mask(keys, query_keys)
            mask = part if mask is None else mask | part
        if mask is None:
            return np.zeros(len(query_keys), dtype=bool)
        return mask

    def _rebuild(
        self, positions: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray, int]:
        keys = pack_columns(tuple(self.column(pos) for pos in positions))
        perm = np.argsort(keys, kind="stable")
        cached = self._views[positions] = (keys[perm], perm, self._n)
        self._tail_views.pop(positions, None)
        return cached

    def _view_parts(
        self, positions: tuple[int, ...]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """The sorted segments answering a probe over ``positions``: the
        cached main view plus (when the pending tail is small enough) a
        tail-only sorted segment; a tail past the rebuild threshold folds
        into a fresh full view instead."""
        n = self._n
        cached = self._views.get(positions)
        if cached is None:
            keys, perm, _cov = self._rebuild(positions)
            return [(keys, perm)]
        keys, perm, covered = cached
        tail = n - covered
        if tail == 0:
            return [(keys, perm)]
        threshold = self._tail_threshold
        if threshold is None:
            threshold = max(1024, n // 4)
        if tail > threshold:
            keys, perm, _cov = self._rebuild(positions)
            return [(keys, perm)]
        tail_cached = self._tail_views.get(positions)
        if tail_cached is None or tail_cached[2] != covered or tail_cached[3] != n:
            tkeys = pack_columns(tuple(
                self.column(pos)[covered:n] for pos in positions))
            tperm = np.argsort(tkeys, kind="stable")
            tail_cached = self._tail_views[positions] = (
                tkeys[tperm], tperm + covered, covered, n)
        return [(keys, perm), (tail_cached[0], tail_cached[1])]

    def sorted_view(
        self, positions: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """The rows' keys over ``positions``, sorted, plus the permutation
        mapping sorted index -> row number.  Built lazily, cached, and kept
        full-coverage: a view gone stale by appends is rebuilt here (probes
        that tolerate a two-part answer go through :meth:`range_lookup`,
        which tail-probes instead of rebuilding)."""
        cached = self._views.get(positions)
        if cached is None or cached[2] != self._n:
            cached = self._rebuild(positions)
        return cached[0], cached[1]

    def range_lookup(
        self, positions: tuple[int, ...], query_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch pattern lookup: for each query key over ``positions``,
        the matching row numbers.

        Returns ``(rows, reps)`` where ``rows`` are store row numbers and
        ``reps[i]`` is the query that matched ``rows[i]`` — one
        searchsorted pair per view segment for the whole batch.  Rows
        appended since the main view was built are answered from the
        tail segment, so matches for one query may arrive main-part
        first, tail-part second (not globally key-sorted).
        """
        parts_rows: list[np.ndarray] = []
        parts_reps: list[np.ndarray] = []
        for keys, perm in self._view_parts(positions):
            lo = np.searchsorted(keys, query_keys, side="left")
            hi = np.searchsorted(keys, query_keys, side="right")
            flat, reps = expand_ranges(lo, hi)
            if len(flat):
                parts_rows.append(perm[flat])
                parts_reps.append(reps)
        if not parts_rows:
            return _EMPTY, _EMPTY
        if len(parts_rows) == 1:
            return parts_rows[0], parts_reps[0]
        return np.concatenate(parts_rows), np.concatenate(parts_reps)

    def count_matching(
        self, positions: tuple[int, ...], query_cols: tuple[np.ndarray, ...]
    ) -> np.ndarray:
        """Per-query count of matching rows, without materializing them —
        one searchsorted pair per view segment.  This is the cardinality
        estimate feeding join ordering in :mod:`repro.rdf.idquery`."""
        query_keys = pack_columns(query_cols)
        total = np.zeros(len(query_keys), dtype=np.int64)
        for keys, _perm in self._view_parts(positions):
            lo = np.searchsorted(keys, query_keys, side="left")
            hi = np.searchsorted(keys, query_keys, side="right")
            total += hi - lo
        return total

    def probe(
        self, positions: tuple[int, ...], query_cols: tuple[np.ndarray, ...]
    ) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
        """Batch pattern lookup returning the matching rows' *values*.

        ``query_cols[i]`` is the query column for ``positions[i]``; returns
        ``((s, p, o), reps)`` with one entry per matching row.  This is the
        store-agnostic probe surface shared with
        :class:`repro.rdf.runstore.RunStore` — kernels that consume values
        instead of row numbers run unchanged over either store.
        """
        rows, reps = self.range_lookup(positions, pack_columns(query_cols))
        s, p, o = self.columns()
        return (s[rows], p[rows], o[rows]), reps

    def memory_bytes(self) -> int:
        """Resident bytes of the store: column buffers (at capacity) plus
        every cached view — the dense baseline the run store's budget
        accounting is compared against."""
        total = self._s.nbytes + self._p.nbytes + self._o.nbytes
        for keys, perm, _cov in self._views.values():
            total += keys.nbytes + perm.nbytes
        for tkeys, tperm, _cov, _n in self._tail_views.values():
            total += tkeys.nbytes + tperm.nbytes
        return total

    def __repr__(self) -> str:
        return f"<IdGraph with {self._n} rows>"
