"""N-Triples parsing and serialization.

N-Triples is the line-oriented RDF syntax the paper's shared-file
communication layer would naturally use; our file-based comm backend and the
dataset generators' save/load paths both go through this module.

The parser covers the N-Triples 1.1 grammar for the constructs this library
produces: IRIREF, blank node labels, literals with ``\\uXXXX``-style string
escapes, datatypes, and language tags.  It is strict: malformed lines raise
:class:`NTriplesParseError` with line numbers instead of being skipped.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triple import Triple


class NTriplesParseError(ValueError):
    """Raised on malformed N-Triples input; carries the 1-based line number."""

    def __init__(self, message: str, lineno: int | None = None) -> None:
        self.lineno = lineno
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


class _Scanner:
    """Character-cursor over one N-Triples line."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        text, n = self.text, len(self.text)
        pos = self.pos
        while pos < n and text[pos] in " \t":
            pos += 1
        self.pos = pos

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise NTriplesParseError(
                f"expected {char!r} at column {self.pos}, found {self.peek()!r}"
            )
        self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    # -- token readers ----------------------------------------------------

    def read_iriref(self) -> URI:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise NTriplesParseError("unterminated IRI (missing '>')")
        raw = self.text[self.pos : end]
        self.pos = end + 1
        if any(c in raw for c in ' "{}|^`') or any(ord(c) <= 0x20 for c in raw):
            raise NTriplesParseError(f"illegal character in IRI <{raw}>")
        return URI(_unescape(raw, allow_uchar_only=True))

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        text, n = self.text, len(self.text)
        pos = self.pos
        while pos < n and (text[pos].isalnum() or text[pos] in "_-."):
            pos += 1
        # trailing '.' belongs to the statement terminator, not the label
        while pos > start and text[pos - 1] == ".":
            pos -= 1
        if pos == start:
            raise NTriplesParseError("empty blank node label")
        self.pos = pos
        return BNode(text[start:pos])

    def read_literal(self) -> Literal:
        self.expect('"')
        chunks: list[str] = []
        text, n = self.text, len(self.text)
        pos = self.pos
        while True:
            if pos >= n:
                raise NTriplesParseError("unterminated literal (missing '\"')")
            c = text[pos]
            if c == '"':
                pos += 1
                break
            if c == "\\":
                pos += 1
                if pos >= n:
                    raise NTriplesParseError("dangling escape at end of literal")
                esc = text[pos]
                if esc in _ESCAPES:
                    chunks.append(_ESCAPES[esc])
                    pos += 1
                elif esc == "u":
                    chunks.append(_read_hex(text, pos + 1, 4))
                    pos += 5
                elif esc == "U":
                    chunks.append(_read_hex(text, pos + 1, 8))
                    pos += 9
                else:
                    raise NTriplesParseError(f"unknown escape '\\{esc}'")
            else:
                chunks.append(c)
                pos += 1
        self.pos = pos
        lexical = "".join(chunks)

        if self.peek() == "^":
            self.expect("^")
            self.expect("^")
            dtype = self.read_iriref()
            return Literal(lexical, datatype=dtype)
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while not self.at_end() and (self.peek().isalnum() or self.peek() == "-"):
                self.pos += 1
            tag = self.text[start : self.pos]
            if not tag:
                raise NTriplesParseError("empty language tag")
            return Literal(lexical, language=tag)
        return Literal(lexical)


def _read_hex(text: str, start: int, width: int) -> str:
    hexpart = text[start : start + width]
    if len(hexpart) != width:
        raise NTriplesParseError(f"truncated \\u escape: {hexpart!r}")
    try:
        return chr(int(hexpart, 16))
    except ValueError as exc:
        raise NTriplesParseError(f"bad \\u escape: {hexpart!r}") from exc


def _unescape(raw: str, allow_uchar_only: bool = False) -> str:
    if "\\" not in raw:
        return raw
    out: list[str] = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        if c != "\\":
            out.append(c)
            i += 1
            continue
        if i + 1 >= n:
            raise NTriplesParseError("dangling escape")
        esc = raw[i + 1]
        if esc == "u":
            out.append(_read_hex(raw, i + 2, 4))
            i += 6
        elif esc == "U":
            out.append(_read_hex(raw, i + 2, 8))
            i += 10
        elif not allow_uchar_only and esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        else:
            raise NTriplesParseError(f"unknown escape '\\{esc}'")
    return "".join(out)


def parse_ntriples_line(line: str, lineno: int | None = None) -> Triple | None:
    """Parse one line; returns ``None`` for blank lines and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        sc = _Scanner(stripped)
        sc.skip_ws()
        c = sc.peek()
        if c == "<":
            s: Term = sc.read_iriref()
        elif c == "_":
            s = sc.read_bnode()
        else:
            raise NTriplesParseError(f"subject must be IRI or bnode, found {c!r}")
        sc.skip_ws()
        p = sc.read_iriref()
        sc.skip_ws()
        c = sc.peek()
        if c == "<":
            o: Term = sc.read_iriref()
        elif c == "_":
            o = sc.read_bnode()
        elif c == '"':
            o = sc.read_literal()
        else:
            raise NTriplesParseError(f"object must be IRI, bnode or literal, found {c!r}")
        sc.skip_ws()
        sc.expect(".")
        sc.skip_ws()
        if not sc.at_end():
            raise NTriplesParseError(
                f"trailing characters after '.': {sc.text[sc.pos:]!r}"
            )
        return Triple(s, p, o)
    except NTriplesParseError as exc:
        if exc.lineno is None and lineno is not None:
            raise NTriplesParseError(str(exc), lineno) from None
        raise


def parse_ntriples(source: str | TextIO) -> Iterator[Triple]:
    """Parse an N-Triples document (string or text stream), yielding triples.

    >>> list(parse_ntriples('<ex:a> <ex:p> "v" .'))
    [Triple(URI('ex:a'), URI('ex:p'), Literal('v'))]
    """
    lines = source.splitlines() if isinstance(source, str) else source
    for lineno, line in enumerate(lines, start=1):
        t = parse_ntriples_line(line, lineno)
        if t is not None:
            yield t


def triple_to_ntriples(triple: Triple) -> str:
    """One triple as one N-Triples line (without the newline)."""
    return f"{triple.s.n3()} {triple.p.n3()} {triple.o.n3()} ."


def serialize_ntriples(triples: Iterable[Triple], sort: bool = False) -> str:
    """Serialize triples to an N-Triples document.

    ``sort=True`` gives a canonical ordering (term total order) so documents
    can be diffed; the default preserves iteration order for speed.
    """
    items = list(triples)
    if sort:
        items.sort()
    return "".join(triple_to_ntriples(t) + "\n" for t in items)
