"""Memory-budgeted compressed run store.

:class:`RunStore` holds id-encoded triples as a log-structured
collection of *immutable sorted runs* plus a small mutable
:class:`~repro.rdf.idstore.IdGraph` tail, behind the same probe surface
as the dense store (``add_rows`` / ``contains_rows`` / ``probe`` /
``columns``).  It is the out-of-core storage half of the columnar
fixpoint path: "Datalog Reasoning over Compressed RDF Knowledge Bases"
(PAPERS.md) shows semi-naive evaluation can run directly over
compressed sorted representations without inflating them, and because
rows here are plain int64 ids, compressed runs would ship across
partitions unchanged ("Datalog Materialisation in Distributed RDF
Stores with Dynamic Data Exchange").

Run layout
----------

A sealed run is one or more :class:`_OrderIndex` projections.  Each
index stores the run's rows sorted by a 3-position *order* — canonical
``(0, 1, 2)`` (s, p, o) built at seal/merge time, plus ``(1, 2, 0)``
and ``(2, 0, 1)`` built lazily on first probe so that every bound-
position subset is a *prefix* of some order.  An index is cut into
blocks of ``block_rows`` rows; per block, each column is compressed
independently:

* **delta mode** — a non-decreasing column becomes first value + gaps;
* **frame-of-reference mode** — otherwise, min value + offsets;

either way the residuals are packed at the smallest unsigned byte
width in {1, 2, 4, 8} that fits.  Block payloads live in one ``bytes``
buffer (optionally spilled to a memory-mapped temp file, see below);
the uncompressed *first-row key* of every block is kept as a sorted
``samples`` array, so a batch of Q pattern queries prunes to the
touched blocks with two ``searchsorted`` calls over the samples
(non-prefix key fields are filled with int64 min/max sentinels).
Only touched blocks are decoded; the union of decoded blocks is still
key-sorted, so the per-run probe is the same searchsorted-pair +
``expand_ranges`` dance the dense store does — summed over runs it
yields *exactly* the dense candidate multiset, which is what keeps the
engine's work counters identical store for store.

Merge policy
------------

Appends dedup against the store (per-run compressed membership probes
plus the tail — never one giant array) and land in the tail; a full
tail is sealed into a new run.  Runs compact size-tiered: when a size
class (``tail_rows * fanout^c``) accumulates ``fanout`` runs they are
k-way merged into one.  The merge *streams*: each source run is
decoded a few blocks at a time, rows up to the minimum of the
cursors' buffer-last keys are emitted per round, and the block encoder
re-compresses incrementally — peak transient memory is bounded by
cursor buffers, not run size.  Rows are globally unique across runs
(insert-time dedup), so merges concatenate without re-deduplicating —
except for *tombstoned* rows (see below), which the canonical merge
drops and whose tombstones it consumes.

Deletions
---------

Runs are immutable, so :meth:`RunStore.delete_rows` is two-sided:
rows still in the mutable tail are deleted physically
(:meth:`IdGraph.delete_rows`); rows frozen into a sealed run are
recorded in a small dense *tombstone* set instead.  Every read surface
(``probe`` / ``contains_rows`` / ``columns`` / ``__len__``) subtracts
tombstoned rows, so a tombstoned row is indistinguishable from an
absent one; re-adding a tombstoned row consumes its tombstone rather
than writing a duplicate (the run copy becomes live again).  The
tombstones are *annihilated* at compaction: the canonical k-way merge
filters tombstoned rows out of the merged run and deletes the matched
tombstones, so the steady state carries no deletion debt.  A
tombstoned row exists in exactly one sealed run (global uniqueness),
which is what makes consume-on-match safe.

Budget accounting
-----------------

``memory_budget_bytes`` caps *accounted resident bytes*: tail buffers
and views, per-index metadata and in-RAM payloads, and the decode
cache.  Enforcement runs at seal/merge/index-build time, but residency
also grows *between* those points — probes fill the decode cache and
inserts refill the tail — so both are charged at capacity rather than
current fill: the cache at its cap, the tail at ``tail_rows`` fully
materialized rows.  Over budget, the store spills the largest payload
buffers to memory-mapped temp files (metadata and samples stay
resident; decoding reads straight from the map).  The decode cache
(default: unbounded without a budget, ``budget / 4`` with one) holds
whole-run decoded columns and packed key arrays when a run fits,
falling back to per-block entries when it does not.
"""

from __future__ import annotations

import mmap
import tempfile
from collections import OrderedDict
from typing import IO

import numpy as np

from repro.rdf.idstore import (
    IdGraph,
    expand_ranges,
    member_mask,
    pack_columns,
)

_EMPTY = np.empty(0, dtype=np.int64)

#: Rows per compressed block.
_BLOCK_ROWS = 4096
#: Mutable-tail capacity before sealing into a run (no budget given).
_TAIL_ROWS = 65536
#: Size-tiered compaction fanout.
_FANOUT = 4
#: Estimated resident bytes/row of a fully decoded, key-packed run —
#: used to decide whole-run vs per-block cache granularity.
_DECODED_ROW_BYTES = 56
#: Resident bytes/row of a *full* mutable tail with every probe-order
#: view materialized (columns + sorted views + tail views, measured on
#: IdGraph).  The budget pre-charges the tail at this rate so refills
#: between enforcement points can never push residency past the cap.
_TAIL_ROW_CHARGE = 176
#: Target decoded rows per merge-cursor refill.
_MERGE_CHUNK_ROWS = 1 << 17

Columns = tuple[np.ndarray, np.ndarray, np.ndarray]

#: Decode-cache key: (index serial, kind, extra) where kind 0 is the
#: whole-run decoded columns (extra 0), kind 1 a packed key array over
#: the first ``extra`` order positions, kind 2 one decoded block.
_CacheKey = tuple[int, int, int]


def order_for(positions: tuple[int, ...]) -> tuple[int, int, int]:
    """The canonical sort order whose *prefix* covers ``positions``
    (given ascending): SPO for s-anchored and full-key patterns, POS
    for p-anchored, OSP for o-anchored."""
    if positions in ((1,), (1, 2)):
        return (1, 2, 0)
    if positions in ((2,), (0, 2)):
        return (2, 0, 1)
    return (0, 1, 2)


def _width_for(max_value: int) -> int:
    if max_value < 1 << 8:
        return 1
    if max_value < 1 << 16:
        return 2
    if max_value < 1 << 32:
        return 4
    return 8


def _nbytes(arrays: tuple[np.ndarray, ...]) -> int:
    return sum(int(a.nbytes) for a in arrays)


def _concat3(parts: list[Columns]) -> Columns:
    if not parts:
        return _EMPTY, _EMPTY, _EMPTY
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


class _OrderIndex:
    """One immutable sorted projection of a run: block-compressed
    columns (in *index order*), per-block first-row key samples, and
    codec metadata.  The payload buffer can be spilled to a
    memory-mapped temp file; everything else stays resident."""

    __slots__ = (
        "order", "serial", "n_rows", "row_counts", "samples",
        "modes", "widths", "bases", "payload_offsets",
        "_buf", "_file", "_mmap",
    )

    def __init__(
        self,
        order: tuple[int, int, int],
        serial: int,
        n_rows: int,
        row_counts: np.ndarray,
        samples: np.ndarray,
        modes: np.ndarray,
        widths: np.ndarray,
        bases: np.ndarray,
        payload_offsets: np.ndarray,
        buf: bytes,
    ) -> None:
        self.order = order
        self.serial = serial
        self.n_rows = n_rows
        self.row_counts = row_counts
        self.samples = samples
        self.modes = modes
        self.widths = widths
        self.bases = bases
        self.payload_offsets = payload_offsets
        self._buf: bytes | None = buf
        self._file: IO[bytes] | None = None
        self._mmap: mmap.mmap | None = None

    @property
    def n_blocks(self) -> int:
        return len(self.row_counts)

    @property
    def spilled(self) -> bool:
        return self._buf is None

    def payload_bytes(self) -> int:
        return int(self.payload_offsets[-1]) if len(self.payload_offsets) else 0

    def in_ram_bytes(self) -> int:
        """Accounted resident bytes: metadata always, payload unless
        spilled."""
        total = (
            self.row_counts.nbytes + self.samples.nbytes + self.modes.nbytes
            + self.widths.nbytes + self.bases.nbytes
            + self.payload_offsets.nbytes
        )
        if self._buf is not None:
            total += len(self._buf)
        return int(total)

    def spill(self) -> None:
        """Move the payload into a memory-mapped temporary file.  Reads
        keep working (the decoder slices the map); accounted resident
        bytes drop by the payload size."""
        if self._buf is None or len(self._buf) == 0:
            return
        f = tempfile.TemporaryFile()
        f.write(self._buf)
        f.flush()
        self._mmap = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        self._file = f
        self._buf = None

    def _data(self) -> "bytes | mmap.mmap":
        if self._buf is not None:
            return self._buf
        if self._mmap is None:
            return b""
        return self._mmap

    def decode_block(self, block: int) -> Columns:
        """Decode one block's three columns, *in index order*."""
        data = self._data()
        n = int(self.row_counts[block])
        cols: list[np.ndarray] = []
        for c in range(3):
            off = int(self.payload_offsets[3 * block + c])
            mode = int(self.modes[block, c])
            width = int(self.widths[block, c])
            base = int(self.bases[block, c])
            n_vals = n - 1 if mode == 1 else n
            vals = np.frombuffer(
                data, dtype=f"<u{width}", count=n_vals, offset=off
            ).astype(np.int64)
            if mode == 1:
                out = np.empty(n, dtype=np.int64)
                out[0] = base
                np.cumsum(vals, out=out[1:])
                out[1:] += base
                cols.append(out)
            else:
                cols.append(base + vals)
        return (cols[0], cols[1], cols[2])

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None


class _IndexBuilder:
    """Incremental block encoder: feed globally key-sorted column slabs
    (in index order), get a finished :class:`_OrderIndex`.  Holds at
    most one block of pending rows plus the compressed payload."""

    def __init__(self, order: tuple[int, int, int], block_rows: int) -> None:
        self.order = order
        self.block_rows = block_rows
        self.n_rows = 0
        self._pending: list[Columns] = []
        self._pending_rows = 0
        self._payload: list[bytes] = []
        self._payload_lens: list[int] = []
        self._row_counts: list[int] = []
        self._samples: list[np.ndarray] = []
        self._modes: list[tuple[int, int, int]] = []
        self._widths: list[tuple[int, int, int]] = []
        self._bases: list[tuple[int, int, int]] = []

    def append(self, cols: Columns) -> None:
        n = len(cols[0])
        if n == 0:
            return
        self._pending.append(cols)
        self._pending_rows += n
        self.n_rows += n
        if self._pending_rows >= self.block_rows:
            self._flush(final=False)

    def _emit(self, cols: Columns) -> None:
        self._row_counts.append(len(cols[0]))
        self._samples.append(
            pack_columns((cols[0][:1], cols[1][:1], cols[2][:1])))
        modes: list[int] = []
        widths: list[int] = []
        bases: list[int] = []
        for col in cols:
            mode, width, base, payload = _encode_block_column(col)
            modes.append(mode)
            widths.append(width)
            bases.append(base)
            self._payload.append(payload)
            self._payload_lens.append(len(payload))
        self._modes.append((modes[0], modes[1], modes[2]))
        self._widths.append((widths[0], widths[1], widths[2]))
        self._bases.append((bases[0], bases[1], bases[2]))

    def _flush(self, final: bool) -> None:
        if self._pending_rows == 0:
            return
        cols = _concat3(self._pending)
        total = self._pending_rows
        self._pending = []
        self._pending_rows = 0
        stop = total if final else (total // self.block_rows) * self.block_rows
        start = 0
        while start < stop:
            end = min(start + self.block_rows, stop)
            self._emit((cols[0][start:end], cols[1][start:end],
                        cols[2][start:end]))
            start = end
        if stop < total:
            self._pending = [(cols[0][stop:], cols[1][stop:], cols[2][stop:])]
            self._pending_rows = total - stop

    def finish(self, serial: int) -> _OrderIndex:
        self._flush(final=True)
        nb = len(self._row_counts)
        row_counts = np.asarray(self._row_counts, dtype=np.int64)
        if self._samples:
            samples = np.concatenate(self._samples)
        else:
            samples = np.empty(
                0, dtype=np.dtype([(f"f{i}", np.int64) for i in range(3)]))
        modes = np.asarray(self._modes, dtype=np.uint8).reshape(nb, 3)
        widths = np.asarray(self._widths, dtype=np.uint8).reshape(nb, 3)
        bases = np.asarray(self._bases, dtype=np.int64).reshape(nb, 3)
        payload_offsets = np.zeros(3 * nb + 1, dtype=np.int64)
        if nb:
            np.cumsum(
                np.asarray(self._payload_lens, dtype=np.int64),
                out=payload_offsets[1:])
        return _OrderIndex(
            self.order, serial, self.n_rows, row_counts, samples,
            modes, widths, bases, payload_offsets, b"".join(self._payload))


def _encode_block_column(col: np.ndarray) -> tuple[int, int, int, bytes]:
    """Compress one int64 column of a block.

    Returns ``(mode, width, base, payload)``: mode 1 delta-encodes a
    non-decreasing column as first value + gaps, mode 0 frame-of-
    reference encodes as min + offsets; residuals are packed at the
    smallest unsigned byte width in {1, 2, 4, 8} that fits."""
    n = len(col)
    if n == 0:
        return 0, 1, 0, b""
    diffs = np.diff(col)
    if n > 1 and bool((diffs >= 0).all()):
        mode, base, vals = 1, int(col[0]), diffs
    else:
        base = int(col.min())
        mode, vals = 0, col - base
    width = _width_for(int(vals.max(initial=0)))
    return mode, width, base, vals.astype(f"<u{width}").tobytes()


class _MergeCursor:
    """Streams one index's rows in sorted order, a few blocks at a
    time — the bounded-memory source of the k-way merge."""

    __slots__ = ("idx", "chunk_blocks", "_next_block", "cols", "keys")

    def __init__(self, idx: _OrderIndex, chunk_blocks: int) -> None:
        self.idx = idx
        self.chunk_blocks = max(1, chunk_blocks)
        self._next_block = 0
        self.cols: Columns = (_EMPTY, _EMPTY, _EMPTY)
        self.keys: np.ndarray = _EMPTY

    def refill(self) -> bool:
        """Ensure a non-empty buffer; ``False`` when exhausted."""
        if len(self.keys):
            return True
        if self._next_block >= self.idx.n_blocks:
            return False
        end = min(self._next_block + self.chunk_blocks, self.idx.n_blocks)
        parts = [self.idx.decode_block(b)
                 for b in range(self._next_block, end)]
        self._next_block = end
        self.cols = _concat3(parts)
        self.keys = pack_columns(self.cols)
        return True

    def take(self, limit: np.ndarray) -> Columns:
        """Take buffered rows with key <= ``limit`` (a 1-element key
        array) off the front of the buffer."""
        cut = int(np.searchsorted(self.keys, limit, side="right")[0])
        out = (self.cols[0][:cut], self.cols[1][:cut], self.cols[2][:cut])
        self.cols = (self.cols[0][cut:], self.cols[1][cut:],
                     self.cols[2][cut:])
        self.keys = self.keys[cut:]
        return out

    def take_rest(self) -> Columns:
        out = self.cols
        self.cols = (_EMPTY, _EMPTY, _EMPTY)
        self.keys = _EMPTY
        return out


class _Run:
    """An immutable sorted run: the canonical (s, p, o) index plus
    lazily built secondary sort orders."""

    __slots__ = ("indexes",)

    def __init__(self, canonical: _OrderIndex) -> None:
        self.indexes: dict[tuple[int, int, int], _OrderIndex] = {
            (0, 1, 2): canonical}

    @property
    def canonical(self) -> _OrderIndex:
        return self.indexes[(0, 1, 2)]

    @property
    def n_rows(self) -> int:
        return self.canonical.n_rows


class RunStore:
    """Memory-budgeted LSM triple store with the :class:`IdGraph`
    probe surface.

    Rows are unique (set semantics); :meth:`add_rows` returns the rows
    actually added, unique and key-sorted — the same contract as the
    dense store, which is what keeps the columnar engine's work
    counters identical over either.
    """

    def __init__(
        self,
        memory_budget_bytes: int | None = None,
        tail_rows: int | None = None,
        block_rows: int = _BLOCK_ROWS,
        fanout: int = _FANOUT,
        cache_bytes: int | None = None,
    ) -> None:
        self.memory_budget_bytes = memory_budget_bytes
        if tail_rows is None:
            if memory_budget_bytes is None:
                tail_rows = _TAIL_ROWS
            else:
                # The tail is charged at its fully-materialized rate:
                # size it so the mutable layer takes at most a quarter
                # of the budget.
                tail_rows = min(_TAIL_ROWS, max(
                    256, memory_budget_bytes // (4 * _TAIL_ROW_CHARGE)))
        self.tail_rows = max(1, tail_rows)
        self.block_rows = max(64, block_rows)
        self.fanout = max(2, fanout)
        if cache_bytes is None and memory_budget_bytes is not None:
            cache_bytes = max(1 << 16, memory_budget_bytes // 4)
        #: Decode-cache cap; ``None`` = unbounded (no budget given).
        self.cache_bytes = cache_bytes
        self.seals = 0
        self.merges = 0
        self.spills = 0
        self.tombstones_cleared = 0
        self._tail = IdGraph()
        #: Rows deleted from sealed (immutable) runs; filtered out of
        #: every read surface and annihilated at canonical merges.
        self._tombs = IdGraph()
        self._runs: list[_Run] = []
        self._serial = 0
        self._cache: OrderedDict[_CacheKey, tuple[np.ndarray, ...]] = (
            OrderedDict())
        self._cache_used = 0
        #: Monotone content version (see :attr:`IdGraph.version`): bumped
        #: whenever the logical row set changes, never by reorganization
        #: (seals, merges, spills keep the version).
        self._version = 0

    # -- basic surface ----------------------------------------------------

    def __len__(self) -> int:
        return (len(self._tail) + sum(r.n_rows for r in self._runs)
                - len(self._tombs))

    @property
    def version(self) -> int:
        """Monotone counter distinguishing logical row-set states."""
        return self._version

    def __repr__(self) -> str:
        return (f"<RunStore with {len(self)} rows in {len(self._runs)} "
                f"runs + {len(self._tail)}-row tail>")

    def columns(self) -> Columns:
        """Decode the whole store into dense ``(s, p, o)`` columns.

        Export-only: this inflates every run (the fixpoint path never
        calls it on the store side except for fully unconstrained
        atoms)."""
        parts: list[Columns] = []
        for run in self._runs:
            idx = run.canonical
            parts.append(_concat3(
                [idx.decode_block(b) for b in range(idx.n_blocks)]))
        if parts and len(self._tombs):
            s, p, o = _concat3(parts)
            alive = ~self._tombs.contains_rows(s, p, o)
            parts = [(s[alive], p[alive], o[alive])]
        if len(self._tail):
            parts.append(self._tail.columns())
        return _concat3(parts)

    def column(self, position: int) -> np.ndarray:
        """One fully decoded column by triple position (0=s, 1=p, 2=o)."""
        return self.columns()[position]

    # -- mutation ---------------------------------------------------------

    def add_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> Columns:
        """Insert rows, deduplicating against the batch and the store;
        returns the rows actually added (unique, key-sorted)."""
        if len(s) == 0:
            return _EMPTY, _EMPTY, _EMPTY
        keys = pack_columns((s, p, o))
        uniq, first = np.unique(keys, return_index=True)
        s, p, o = s[first], p[first], o[first]
        if len(self):
            fresh = ~self.contains_rows(s, p, o)
            s, p, o = s[fresh], p[fresh], o[fresh]
        # Re-adding a tombstoned row consumes the tombstone (the sealed
        # run copy becomes live again) instead of writing a duplicate.
        ts, tp, to = s, p, o
        if len(self._tombs) and len(s):
            dead = self._tombs.contains_rows(s, p, o)
            if dead.any():
                self._tombs.delete_rows(s[dead], p[dead], o[dead])
                live = ~dead
                ts, tp, to = s[live], p[live], o[live]
        start = 0
        n_new = len(ts)
        while start < n_new:
            room = self.tail_rows - len(self._tail)
            if room <= 0:
                self._seal()
                continue
            end = min(n_new, start + room)
            self._tail.add_rows(ts[start:end], tp[start:end], to[start:end])
            start = end
        if len(self._tail) >= self.tail_rows:
            self._seal()
        if len(s):
            self._version += 1
        return s, p, o

    def delete_rows(self, s: np.ndarray, p: np.ndarray, o: np.ndarray) -> int:
        """Remove rows from the store; rows not present are ignored.

        Returns the number of rows actually removed.  Rows still in the
        mutable tail are compacted away physically; rows frozen into a
        sealed run become tombstones, filtered out of every read path
        and merged away at the next compaction of their run.
        """
        if len(s) == 0 or len(self) == 0:
            return 0
        keys = pack_columns((s, p, o))
        _uniq, first = np.unique(keys, return_index=True)
        s, p, o = s[first], p[first], o[first]
        present = self.contains_rows(s, p, o)
        if not present.any():
            return 0
        s, p, o = s[present], p[present], o[present]
        in_tail = self._tail.contains_rows(s, p, o)
        if in_tail.any():
            self._tail.delete_rows(s[in_tail], p[in_tail], o[in_tail])
        sealed = ~in_tail
        if sealed.any():
            self._tombs.add_rows(s[sealed], p[sealed], o[sealed])
        self._version += 1
        return len(s)

    def _next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def _seal(self) -> None:
        """Freeze the tail into a new canonical run, then compact."""
        tail = self._tail
        if len(tail) == 0:
            return
        _keys, perm = tail.sorted_view((0, 1, 2))
        s, p, o = tail.columns()
        builder = _IndexBuilder((0, 1, 2), self.block_rows)
        builder.append((s[perm], p[perm], o[perm]))
        self._runs.append(_Run(builder.finish(self._next_serial())))
        self.seals += 1
        self._tail = IdGraph()
        self._compact()
        self._enforce_budget()

    # -- compaction -------------------------------------------------------

    def _size_class(self, n_rows: int) -> int:
        cls = 0
        cap = self.tail_rows
        while n_rows > cap:
            cap *= self.fanout
            cls += 1
        return cls

    def _compact(self) -> None:
        """Size-tiered merge: whenever a size class holds ``fanout``
        runs, k-way merge them into one (repeating upward)."""
        while True:
            by_class: dict[int, list[_Run]] = {}
            for run in self._runs:
                by_class.setdefault(
                    self._size_class(run.n_rows), []).append(run)
            group: list[_Run] | None = None
            for cls in sorted(by_class):
                if len(by_class[cls]) >= self.fanout:
                    group = by_class[cls]
                    break
            if group is None:
                return
            merged = _Run(self._merge_indexes(
                [r.canonical for r in group], (0, 1, 2),
                drop=self._tombs))
            self.merges += 1
            retired = {id(r) for r in group}
            out: list[_Run] = []
            placed = False
            for run in self._runs:
                if id(run) in retired:
                    if not placed:
                        out.append(merged)
                        placed = True
                    self._retire(run)
                else:
                    out.append(run)
            self._runs = out

    def _retire(self, run: _Run) -> None:
        serials = {idx.serial for idx in run.indexes.values()}
        for key in [k for k in self._cache if k[0] in serials]:
            self._cache_used -= _nbytes(self._cache.pop(key))
        for idx in run.indexes.values():
            idx.close()

    def _merge_chunk_blocks(self, n_sources: int) -> int:
        rows = _MERGE_CHUNK_ROWS
        budget = self.memory_budget_bytes
        if budget is not None:
            # Cursor buffers are decoded + keyed (~48 B/row); keep all
            # of them inside a modest slice of the budget.
            rows = min(rows, max(
                self.block_rows, budget // (96 * max(1, n_sources))))
        return max(1, rows // self.block_rows)

    def _merge_indexes(
        self,
        sources: list[_OrderIndex],
        order: tuple[int, int, int],
        drop: IdGraph | None = None,
    ) -> _OrderIndex:
        """Streaming k-way merge of same-order indexes.  Rows are
        globally unique across sources (insert-time dedup), so no
        re-dedup happens here.  With ``drop`` (canonical merges only —
        rows must be in (s, p, o) position order), rows present in it
        are filtered out of the merged index and *consumed* from
        ``drop``: this is the tombstone annihilation step.
        """
        if drop is not None and len(drop) == 0:
            drop = None
        if drop is not None and order != (0, 1, 2):
            raise ValueError("tombstone filtering requires canonical order")
        consumed: list[Columns] = []

        def strip(cols: Columns) -> Columns:
            if drop is None or len(cols[0]) == 0:
                return cols
            dead = drop.contains_rows(cols[0], cols[1], cols[2])
            if not dead.any():
                return cols
            consumed.append((cols[0][dead], cols[1][dead], cols[2][dead]))
            live = ~dead
            return (cols[0][live], cols[1][live], cols[2][live])

        builder = _IndexBuilder(order, self.block_rows)
        chunk = self._merge_chunk_blocks(len(sources))
        active = [c for c in (_MergeCursor(idx, chunk) for idx in sources)
                  if c.refill()]
        while active:
            if len(active) == 1:
                cursor = active[0]
                builder.append(strip(cursor.take_rest()))
                while cursor.refill():
                    builder.append(strip(cursor.take_rest()))
                break
            limit = np.sort(
                np.concatenate([c.keys[-1:] for c in active]))[:1]
            slabs = [c.take(limit) for c in active]
            merged = _concat3(slabs)
            perm = np.argsort(pack_columns(merged), kind="stable")
            builder.append(strip(
                (merged[0][perm], merged[1][perm], merged[2][perm])))
            active = [c for c in active if c.refill()]
        if drop is not None and consumed:
            gone = _concat3(consumed)
            drop.delete_rows(*gone)
            self.tombstones_cleared += len(gone[0])
        return builder.finish(self._next_serial())

    # -- secondary orders -------------------------------------------------

    def _index(
        self, run: _Run, order: tuple[int, int, int]
    ) -> _OrderIndex:
        idx = run.indexes.get(order)
        if idx is None:
            idx = self._build_secondary(run, order)
            run.indexes[order] = idx
            self._enforce_budget()
        return idx

    def _build_secondary(
        self, run: _Run, order: tuple[int, int, int]
    ) -> _OrderIndex:
        """Re-sort a run into a secondary order via bounded external
        sort: decode canonical chunks, sort each into a runlet, then
        stream-merge the runlets."""
        can = run.canonical
        chunk = self._merge_chunk_blocks(1)
        runlets: list[_OrderIndex] = []
        b = 0
        while b < can.n_blocks:
            end = min(b + chunk, can.n_blocks)
            cols = _concat3([can.decode_block(i) for i in range(b, end)])
            b = end
            ocols = (cols[order[0]], cols[order[1]], cols[order[2]])
            perm = np.argsort(pack_columns(ocols), kind="stable")
            builder = _IndexBuilder(order, self.block_rows)
            builder.append((ocols[0][perm], ocols[1][perm], ocols[2][perm]))
            runlets.append(builder.finish(self._next_serial()))
        if len(runlets) == 1:
            return runlets[0]
        if not runlets:
            return _IndexBuilder(order, self.block_rows).finish(
                self._next_serial())
        return self._merge_indexes(runlets, order)

    # -- decode cache -----------------------------------------------------

    def _cache_get(self, key: _CacheKey) -> tuple[np.ndarray, ...] | None:
        val = self._cache.get(key)
        if val is not None:
            self._cache.move_to_end(key)
        return val

    def _cache_put(self, key: _CacheKey, val: tuple[np.ndarray, ...]) -> None:
        old = self._cache.pop(key, None)
        if old is not None:
            self._cache_used -= _nbytes(old)
        self._cache[key] = val
        self._cache_used += _nbytes(val)
        cap = self.cache_bytes
        if cap is not None:
            while self._cache_used > cap and len(self._cache) > 1:
                self._cache_used -= _nbytes(
                    self._cache.popitem(last=False)[1])

    def _whole_run_fits(self, idx: _OrderIndex) -> bool:
        cap = self.cache_bytes
        if cap is None:
            return True
        return idx.n_rows * _DECODED_ROW_BYTES <= cap // 2

    def _full_arrays(
        self, idx: _OrderIndex, prefix_len: int
    ) -> tuple[Columns, np.ndarray]:
        """Whole-run decoded columns (index order) + packed keys over
        the order prefix, through the cache."""
        cached = self._cache_get((idx.serial, 0, 0))
        if cached is None:
            cols = _concat3(
                [idx.decode_block(b) for b in range(idx.n_blocks)])
            self._cache_put((idx.serial, 0, 0), cols)
        else:
            cols = (cached[0], cached[1], cached[2])
        kcached = self._cache_get((idx.serial, 1, prefix_len))
        if kcached is None:
            keys = pack_columns(cols[:prefix_len])
            self._cache_put((idx.serial, 1, prefix_len), (keys,))
        else:
            keys = kcached[0]
        return cols, keys

    def _block_cols(self, idx: _OrderIndex, block: int) -> Columns:
        cached = self._cache_get((idx.serial, 2, block))
        if cached is not None:
            return (cached[0], cached[1], cached[2])
        cols = idx.decode_block(block)
        self._cache_put((idx.serial, 2, block), cols)
        return cols

    # -- probing ----------------------------------------------------------

    def _needed_blocks(
        self, idx: _OrderIndex, prefix_cols: tuple[np.ndarray, ...]
    ) -> np.ndarray:
        """Block numbers that may hold matches for any query, via
        sentinel-key searchsorted over the per-block first-key samples."""
        nb = idx.n_blocks
        if nb == 0:
            return _EMPTY
        samples = idx.samples
        prefix_len = len(prefix_cols)
        nq = len(prefix_cols[0])
        lo_key = np.empty(nq, dtype=samples.dtype)
        hi_key = np.empty(nq, dtype=samples.dtype)
        int64 = np.iinfo(np.int64)
        for i in range(3):
            name = f"f{i}"
            if i < prefix_len:
                lo_key[name] = prefix_cols[i]
                hi_key[name] = prefix_cols[i]
            else:
                lo_key[name] = int64.min
                hi_key[name] = int64.max
        blo = np.searchsorted(samples, lo_key, side="right") - 1
        np.clip(blo, 0, None, out=blo)
        bhi = np.searchsorted(samples, hi_key, side="right") - 1
        np.clip(bhi, 0, None, out=bhi)
        diff = np.zeros(nb + 1, dtype=np.int64)
        np.add.at(diff, blo, 1)
        np.add.at(diff, bhi + 1, -1)
        return np.nonzero(np.cumsum(diff[:nb]) > 0)[0]

    def _union_arrays(
        self, idx: _OrderIndex, blocks: np.ndarray, prefix_len: int
    ) -> tuple[Columns, np.ndarray]:
        """Decoded columns + packed prefix keys over a sorted subset of
        blocks (still globally key-sorted — blocks are consecutive runs
        of a sorted sequence)."""
        cols = _concat3([self._block_cols(idx, int(b)) for b in blocks])
        return cols, pack_columns(cols[:prefix_len])

    def _probe_index(
        self, idx: _OrderIndex, prefix_cols: tuple[np.ndarray, ...]
    ) -> tuple[Columns, np.ndarray]:
        """Probe one index with query columns over its order prefix.
        Returns matching rows' values (index order) + query numbers."""
        if idx.n_rows == 0 or len(prefix_cols[0]) == 0:
            return (_EMPTY, _EMPTY, _EMPTY), _EMPTY
        prefix_len = len(prefix_cols)
        if self._whole_run_fits(idx):
            cols, keys = self._full_arrays(idx, prefix_len)
        else:
            blocks = self._needed_blocks(idx, prefix_cols)
            if len(blocks) == 0:
                return (_EMPTY, _EMPTY, _EMPTY), _EMPTY
            cols, keys = self._union_arrays(idx, blocks, prefix_len)
        query = pack_columns(prefix_cols)
        lo = np.searchsorted(keys, query, side="left")
        hi = np.searchsorted(keys, query, side="right")
        flat, reps = expand_ranges(lo, hi)
        if len(flat) == 0:
            return (_EMPTY, _EMPTY, _EMPTY), _EMPTY
        return (cols[0][flat], cols[1][flat], cols[2][flat]), reps

    def probe(
        self, positions: tuple[int, ...], query_cols: tuple[np.ndarray, ...]
    ) -> tuple[Columns, np.ndarray]:
        """Batch pattern lookup returning matching rows' *values* —
        the store-agnostic probe surface shared with
        :meth:`IdGraph.probe`.  ``query_cols[i]`` binds
        ``positions[i]`` (positions ascending); returns
        ``((s, p, o), reps)`` with one entry per matching row, summed
        over every run and the tail."""
        order = order_for(positions)
        prefix = order[:len(positions)]
        by_pos = dict(zip(positions, query_cols))
        ordered_q = tuple(by_pos[pos] for pos in prefix)
        parts_cols: list[Columns] = []
        parts_reps: list[np.ndarray] = []
        for run in self._runs:
            idx = self._index(run, order)
            vals, reps = self._probe_index(idx, ordered_q)
            if len(reps):
                spo: list[np.ndarray] = [_EMPTY, _EMPTY, _EMPTY]
                for i, pos in enumerate(idx.order):
                    spo[pos] = vals[i]
                if len(self._tombs):
                    alive = ~self._tombs.contains_rows(spo[0], spo[1], spo[2])
                    if not alive.all():
                        spo = [spo[0][alive], spo[1][alive], spo[2][alive]]
                        reps = reps[alive]
                if len(reps):
                    parts_cols.append((spo[0], spo[1], spo[2]))
                    parts_reps.append(reps)
        if len(self._tail):
            tvals, treps = self._tail.probe(positions, query_cols)
            if len(treps):
                parts_cols.append(tvals)
                parts_reps.append(treps)
        if not parts_cols:
            return (_EMPTY, _EMPTY, _EMPTY), _EMPTY
        if len(parts_cols) == 1:
            return parts_cols[0], parts_reps[0]
        return _concat3(parts_cols), np.concatenate(parts_reps)

    def count_matching(
        self, positions: tuple[int, ...], query_cols: tuple[np.ndarray, ...]
    ) -> np.ndarray:
        """Per-query count of rows matching the bound positions, summed
        over every run and the tail — the cardinality estimate feeding
        join ordering in :mod:`repro.rdf.idquery`.  Sealed matches are
        counted *before* tombstone filtering (an upper bound when
        tombstones are pending; exact otherwise): ordering only needs
        relative magnitudes, and exactness would force materializing the
        rows this method exists to avoid."""
        order = order_for(positions)
        prefix = order[:len(positions)]
        by_pos = dict(zip(positions, query_cols))
        ordered_q = tuple(by_pos[pos] for pos in prefix)
        total = self._tail.count_matching(positions, query_cols)
        query = pack_columns(ordered_q)
        for run in self._runs:
            idx = self._index(run, order)
            if idx.n_rows == 0:
                continue
            if self._whole_run_fits(idx):
                _cols, keys = self._full_arrays(idx, len(prefix))
            else:
                blocks = self._needed_blocks(idx, ordered_q)
                if len(blocks) == 0:
                    continue
                _cols, keys = self._union_arrays(idx, blocks, len(prefix))
            lo = np.searchsorted(keys, query, side="left")
            hi = np.searchsorted(keys, query, side="right")
            total = total + (hi - lo)
        return total

    def contains_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> np.ndarray:
        """Vectorized membership over every run (canonical index, block
        pruned) and the tail."""
        nq = len(s)
        if nq == 0 or len(self) == 0:
            return np.zeros(nq, dtype=bool)
        tail_mask = self._tail.contains_rows(s, p, o)
        run_mask = np.zeros(nq, dtype=bool)
        cols = (s, p, o)
        for run in self._runs:
            idx = run.canonical
            if idx.n_rows == 0:
                continue
            if self._whole_run_fits(idx):
                _cols, keys = self._full_arrays(idx, 3)
            else:
                blocks = self._needed_blocks(idx, cols)
                if len(blocks) == 0:
                    continue
                _cols, keys = self._union_arrays(idx, blocks, 3)
            run_mask = run_mask | member_mask(keys, pack_columns(cols))
        if len(self._tombs):
            run_mask &= ~self._tombs.contains_rows(s, p, o)
        return tail_mask | run_mask

    # -- accounting -------------------------------------------------------

    def in_ram_bytes(self) -> int:
        """Accounted resident bytes: tail, per-index metadata and
        unspilled payloads, and the decode cache."""
        total = self._tail.memory_bytes() + self._tombs.memory_bytes()
        for run in self._runs:
            for idx in run.indexes.values():
                total += idx.in_ram_bytes()
        return total + self._cache_used

    def memory_bytes(self) -> int:
        """Alias for :meth:`in_ram_bytes` (dense-store API parity)."""
        return self.in_ram_bytes()

    def payload_bytes(self) -> int:
        """Total compressed payload bytes across all indexes (resident
        or spilled)."""
        return sum(idx.payload_bytes() for run in self._runs
                   for idx in run.indexes.values())

    def _enforce_budget(self) -> None:
        budget = self.memory_budget_bytes
        if budget is None:
            return
        # Charge the decode cache at its *cap* and the tail at *full*
        # capacity, not their current fill: probes grow the cache and
        # inserts refill the tail between enforcement points (seals and
        # index builds), and pre-charging both means that growth can
        # never push accounted residency past the budget.
        cap = self.cache_bytes if self.cache_bytes is not None else 0
        tail_charge = self.tail_rows * _TAIL_ROW_CHARGE

        def resident() -> int:
            return (self.in_ram_bytes() - self._cache_used + cap
                    - self._tail.memory_bytes() + tail_charge)

        if resident() <= budget:
            return
        spillable = [idx for run in self._runs
                     for idx in run.indexes.values()
                     if not idx.spilled and idx.payload_bytes()]
        spillable.sort(key=lambda idx: idx.payload_bytes(), reverse=True)
        for idx in spillable:
            idx.spill()
            self.spills += 1
            if resident() <= budget:
                break

    def store_stats(self) -> dict[str, int]:
        """Observability snapshot for benches and tests."""
        return {
            "rows": len(self),
            "runs": len(self._runs),
            "tail_rows": len(self._tail),
            "tombstones": len(self._tombs),
            "tombstones_cleared": self.tombstones_cleared,
            "seals": self.seals,
            "merges": self.merges,
            "spills": self.spills,
            "in_ram_bytes": self.in_ram_bytes(),
            "payload_bytes": self.payload_bytes(),
            "cache_bytes_used": self._cache_used,
        }
