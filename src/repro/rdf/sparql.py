"""SPARQL (subset) parser: SELECT/ASK over one basic graph pattern.

Gives the query layer a text form so materialized KBs can be queried
without constructing :class:`~repro.datalog.ast.Atom` objects by hand —
the shape of LUBM's fourteen benchmark queries, all of which are plain
BGPs::

    PREFIX ub: <http://repro.example.org/univ-bench#>
    SELECT ?x ?y WHERE {
        ?x a ub:Professor .
        ?x ub:memberOf ?y .
    }

Supported grammar::

    query    := prefix* (select | ask)
    prefix   := 'PREFIX' NAME ':' IRIREF
    select   := 'SELECT' 'DISTINCT'? ('*' | var+) 'WHERE'?
                '{' pattern* '}' ('LIMIT' INTEGER)?
    ask      := 'ASK' 'WHERE'? '{' pattern* '}'
    pattern  := term term term '.'?      -- with ';'/',' lists as in Turtle
    term     := var | IRIREF | pname | literal | 'a'

``DISTINCT`` is accepted (and recorded) because the engine's ``select``
already returns distinct sorted rows — the flag documents intent rather
than changing the result; ``LIMIT n`` truncates the sorted rows, so it is
deterministic.  No OPTIONAL / FILTER / UNION / property paths — those are
outside what a conjunctive-pattern engine answers; the parser rejects
them by name with a pointed error instead of a generic syntax failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.ast import Atom
from repro.rdf.graph import Graph
from repro.rdf.namespace import XSD
from repro.rdf.query import BGPQuery
from repro.rdf.terms import Literal, Term, URI, Variable
from repro.rdf.turtle import (
    RDF_TYPE,
    TurtleParseError,
    _Token,
    _tokenize,
    _unescape,
)


class SparqlParseError(ValueError):
    """Malformed (or unsupported) SPARQL."""


_UNSUPPORTED = {
    "OPTIONAL", "FILTER", "UNION", "GRAPH", "ORDER", "GROUP",
    "OFFSET", "DESCRIBE", "CONSTRUCT", "MINUS", "BIND", "VALUES",
    "REDUCED",
}


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed SELECT/ASK query, executable against any graph."""

    form: str  # "select" | "ask"
    projection: tuple[Variable, ...]  # empty tuple = SELECT *
    bgp: BGPQuery
    #: SELECT DISTINCT was written.  The engine's ``select`` always
    #: returns distinct rows, so this records intent without changing
    #: the result.
    distinct: bool = False
    #: LIMIT n, or None for all rows.  Applied after the deterministic
    #: sort, so a limited query is reproducible.
    limit: int | None = None

    def execute(self, graph: Graph):
        return self.bgp.execute(graph)

    def ask(self, graph: Graph) -> bool:
        return self.bgp.ask(graph)

    def select(self, graph: Graph) -> list[tuple[Term, ...]]:
        variables = self.projection or tuple(
            sorted(self.bgp.variables(), key=lambda v: v.name)
        )
        rows = self.bgp.select(graph, *variables)
        if self.limit is not None:
            rows = rows[: self.limit]
        return rows


class _SparqlParser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.prefixes: dict[str, str] = {}

    def peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise SparqlParseError("unexpected end of query")
        self.index += 1
        return tok

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        while True:
            tok = self.peek()
            if tok is None:
                raise SparqlParseError("empty query")
            if (
                tok.kind in ("bareword", "prefix_decl")
                and tok.text.lstrip("@").upper() == "PREFIX"
            ):
                self.next()
                self._prefix()
                continue
            break
        form_tok = self.next()
        form = form_tok.text.upper() if form_tok.kind == "bareword" else ""
        if form == "SELECT":
            return self._finish(self._select())
        if form == "ASK":
            return self._finish(self._ask())
        if form in _UNSUPPORTED:
            raise SparqlParseError(
                f"{form} is outside the supported SPARQL subset "
                "(conjunctive SELECT/ASK only)"
            )
        raise SparqlParseError(
            f"expected SELECT or ASK, found {form_tok.text!r}"
        )

    def _finish(self, query: ParsedQuery) -> ParsedQuery:
        """Reject trailing tokens (e.g. ``LIMIT`` after an ASK, where it
        has no meaning) instead of silently ignoring them."""
        tok = self.peek()
        if tok is not None:
            raise SparqlParseError(
                f"unexpected {tok.text!r} after the end of the query"
            )
        return query

    def _prefix(self) -> None:
        name_tok = self.next()
        if name_tok.kind != "pname_full" or not name_tok.text.endswith(":"):
            raise SparqlParseError(
                f"expected prefix name, found {name_tok.text!r}"
            )
        iri_tok = self.next()
        if iri_tok.kind != "iri":
            raise SparqlParseError(f"expected IRI, found {iri_tok.text!r}")
        self.prefixes[name_tok.text[:-1]] = iri_tok.text[1:-1]

    def _select(self) -> ParsedQuery:
        projection: list[Variable] = []
        star = False
        distinct = False
        tok = self.peek()
        if tok is not None and tok.kind == "bareword" \
                and tok.text.upper() == "DISTINCT":
            distinct = True
            self.next()
        while True:
            tok = self.peek()
            if tok is None:
                raise SparqlParseError("unterminated SELECT clause")
            if tok.kind == "bareword" and tok.text.upper() == "WHERE":
                self.next()
                break
            if tok.kind == "punct" and tok.text == "{":
                break
            if tok.kind == "star":
                star = True
                self.next()
                continue
            if tok.kind == "var":
                projection.append(Variable(self.next().text[1:]))
                continue
            raise SparqlParseError(
                f"expected variable, '*' or WHERE, found {tok.text!r}"
            )
        if not star and not projection:
            raise SparqlParseError("SELECT needs variables or *")
        bgp = self._group()
        return ParsedQuery(
            form="select",
            projection=() if star else tuple(projection),
            bgp=bgp,
            distinct=distinct,
            limit=self._limit(),
        )

    def _limit(self) -> int | None:
        """An optional trailing ``LIMIT <n>`` solution modifier."""
        tok = self.peek()
        if tok is None or not (
            tok.kind == "bareword" and tok.text.upper() == "LIMIT"
        ):
            return None
        self.next()
        count_tok = self.peek()
        if (
            count_tok is None
            or count_tok.kind != "number"
            or any(c in count_tok.text for c in ".eE-")
        ):
            found = "end of query" if count_tok is None \
                else repr(count_tok.text)
            raise SparqlParseError(
                f"LIMIT needs a non-negative integer, found {found}"
            )
        self.next()
        return int(count_tok.text)

    def _ask(self) -> ParsedQuery:
        tok = self.peek()
        if tok is not None and tok.kind == "bareword" and tok.text.upper() == "WHERE":
            self.next()
        return ParsedQuery(form="ask", projection=(), bgp=self._group())

    def _group(self) -> BGPQuery:
        tok = self.next()
        if tok.kind != "punct" or tok.text != "{":
            raise SparqlParseError(f"expected '{{', found {tok.text!r}")
        patterns: list[Atom] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise SparqlParseError("unterminated group (missing '}')")
            if tok.kind == "punct" and tok.text == "}":
                self.next()
                break
            if tok.kind == "bareword" and tok.text.upper() in _UNSUPPORTED:
                raise SparqlParseError(
                    f"{tok.text.upper()} is outside the supported SPARQL "
                    "subset (conjunctive SELECT/ASK only)"
                )
            patterns.extend(self._triple_patterns())
        if not patterns:
            raise SparqlParseError("empty graph pattern")
        return BGPQuery(patterns)

    def _triple_patterns(self) -> list[Atom]:
        """One subject's patterns, honouring ';' and ',' lists."""
        out: list[Atom] = []
        subject = self._term()
        while True:
            predicate = self._term()
            while True:
                obj = self._term()
                out.append(Atom(subject, predicate, obj))
                tok = self.peek()
                if tok is not None and tok.kind == "punct" and tok.text == ",":
                    self.next()
                    continue
                break
            tok = self.peek()
            if tok is not None and tok.kind == "punct" and tok.text == ";":
                self.next()
                nxt = self.peek()
                if nxt is not None and nxt.kind == "punct" and nxt.text in ".}":
                    break
                continue
            break
        tok = self.peek()
        if tok is not None and tok.kind == "punct" and tok.text == ".":
            self.next()
        return out

    def _term(self) -> Term:
        tok = self.next()
        if tok.kind == "var":
            return Variable(tok.text[1:])
        if tok.kind == "kw_a":
            return RDF_TYPE
        if tok.kind == "iri":
            return URI(tok.text[1:-1])
        if tok.kind == "pname_full":
            colon = tok.text.index(":")
            prefix, local = tok.text[:colon], tok.text[colon + 1 :]
            namespace = self.prefixes.get(prefix)
            if namespace is None:
                raise SparqlParseError(f"unknown prefix {prefix + ':'!r}")
            return URI(namespace + local)
        if tok.kind in ("string", "triplequote"):
            quote = 3 if tok.kind == "triplequote" else 1
            lexical = _unescape(tok.text[quote:-quote], tok.lineno)
            nxt = self.peek()
            if nxt is not None and nxt.kind == "caret":
                self.next()
                dtype = self._term()
                if not isinstance(dtype, URI):
                    raise SparqlParseError("datatype must be an IRI")
                return Literal(lexical, datatype=dtype)
            if nxt is not None and nxt.kind == "lang":
                self.next()
                return Literal(lexical, language=nxt.text[1:])
            return Literal(lexical)
        if tok.kind == "number":
            dt = XSD.decimal if any(c in tok.text for c in ".eE") else XSD.integer
            return Literal(tok.text, datatype=dt)
        if tok.kind == "boolean":
            return Literal(tok.text, datatype=XSD.boolean)
        raise SparqlParseError(f"unexpected token {tok.text!r} in pattern")


def parse_sparql(text: str) -> ParsedQuery:
    """Parse a SELECT/ASK query.

    >>> q = parse_sparql('''
    ...     PREFIX ex: <http://x.org/>
    ...     SELECT ?s WHERE { ?s a ex:Thing . }
    ... ''')
    >>> q.form
    'select'
    >>> [v.name for v in q.projection]
    ['s']
    """
    # Unsupported features often carry syntax (FILTER expressions, paths)
    # that the lexer cannot even tokenize; detect them up front so the
    # error names the feature instead of a stray character.
    import re as _re

    found = _re.search(
        r"\b(" + "|".join(sorted(_UNSUPPORTED)) + r")\b", text
    )
    if found:
        raise SparqlParseError(
            f"{found.group(1)} is outside the supported SPARQL subset "
            "(conjunctive SELECT/ASK only)"
        )
    try:
        return _SparqlParser(text).parse()
    except TurtleParseError as exc:
        raise SparqlParseError(str(exc)) from exc


def run_sparql(graph: Graph, text: str):
    """Parse and run in one call; returns rows for SELECT, bool for ASK.

    (Named ``run_sparql`` rather than ``sparql`` so the package-level
    re-export cannot shadow this module's attribute on ``repro.rdf``.)

    >>> from repro.rdf import Graph, URI
    >>> g = Graph()
    >>> _ = g.add_spo(URI("http://x.org/s"), RDF_TYPE, URI("http://x.org/T"))
    >>> run_sparql(g, "PREFIX ex: <http://x.org/> ASK { ex:s a ex:T }")
    True
    """
    query = parse_sparql(text)
    if query.form == "ask":
        return query.ask(graph)
    return query.select(graph)
