"""In-memory indexed triple store.

The store maintains three nested-dict indexes (SPO, POS, OSP) so that every
triple-pattern shape — any subset of {s, p, o} bound — is answered by direct
dictionary walks with no scanning beyond the result set.  This is the same
index layout used by rdflib's in-memory store and by Jena's ``GraphMem``.

Index choice per bound-position mask:

====  =====  ==========================
mask  index  walk
====  =====  ==========================
s--   SPO    index[s] -> {p: {o}}
-p-   POS    index[p] -> {o: {s}}
--o   OSP    index[o] -> {s: {p}}
sp-   SPO    index[s][p] -> {o}
s-o   OSP    index[o][s] -> {p}
-po   POS    index[p][o] -> {s}
spo   SPO    membership probe
---   SPO    full iteration
====  =====  ==========================

Mutation during iteration of a match is not supported (the usual Python
dict rule); callers that derive-and-insert (the datalog engine) buffer
derivations per round.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.rdf.terms import Term, Variable, is_resource
from repro.rdf.triple import Triple

_MISSING = object()


class Graph:
    """A set of ground triples with SPO/POS/OSP indexes.

    >>> from repro.rdf.terms import URI
    >>> g = Graph()
    >>> _ = g.add(Triple(URI("ex:a"), URI("ex:p"), URI("ex:b")))
    >>> len(g)
    1
    >>> list(g.match(p=URI("ex:p")))[0].o
    URI('ex:b')
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size", "_version")

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._spo: dict[Term, dict[Term, set[Term]]] = {}
        self._pos: dict[Term, dict[Term, set[Term]]] = {}
        self._osp: dict[Term, dict[Term, set[Term]]] = {}
        self._size = 0
        self._version = 0
        for t in triples:
            self.add(t)

    @property
    def version(self) -> int:
        """Mutation counter: bumped on every successful add/discard (and on
        clear).  Lets mirror structures (the columnar engine's id-encoded
        shadow copy) detect external modification in O(1) instead of
        re-scanning the store."""
        return self._version

    # -- mutation ---------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert; returns True iff the triple was not already present."""
        if not isinstance(triple, Triple):
            raise TypeError(f"expected Triple, got {type(triple).__name__}")
        s, p, o = triple.s, triple.p, triple.o
        po = self._spo.get(s)
        if po is None:
            po = self._spo[s] = {}
        objs = po.get(p)
        if objs is None:
            objs = po[p] = set()
        if o in objs:
            return False
        objs.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        self._version += 1
        return True

    def add_spo(self, s: Term, p: Term, o: Term) -> bool:
        """Construct-and-insert convenience."""
        return self.add(Triple(s, p, o))

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many; returns the number actually added."""
        added = 0
        for t in triples:
            if self.add(t):
                added += 1
        return added

    def discard(self, triple: Triple) -> bool:
        """Remove; returns True iff the triple was present.

        All three SPO/POS/OSP indexes observe the removal and the
        version counter bumps, so mirror structures keyed on
        :attr:`version` (the columnar engine's id-encoded shadow) can
        never resume from a stale copy after a deletion.
        """
        if not isinstance(triple, Triple):
            raise TypeError(f"expected Triple, got {type(triple).__name__}")
        s, p, o = triple.s, triple.p, triple.o
        po = self._spo.get(s)
        if po is None:
            return False
        objs = po.get(p)
        if objs is None or o not in objs:
            return False
        objs.remove(o)
        if not objs:
            del po[p]
            if not po:
                del self._spo[s]
        os_ = self._pos[p]
        subs = os_[o]
        subs.remove(s)
        if not subs:
            del os_[o]
            if not os_:
                del self._pos[p]
        sp = self._osp[o]
        preds = sp[s]
        preds.remove(p)
        if not preds:
            del sp[s]
            if not sp:
                del self._osp[o]
        self._size -= 1
        self._version += 1
        return True

    def clear(self) -> None:
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0
        self._version += 1

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: Triple) -> bool:
        po = self._spo.get(triple.s)
        if po is None:
            return False
        objs = po.get(triple.p)
        return objs is not None and triple.o in objs

    def __iter__(self) -> Iterator[Triple]:
        for s, po in self._spo.items():
            for p, objs in po.items():
                for o in objs:
                    yield Triple(s, p, o)

    def match(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern; ``None`` (or a
        :class:`Variable`) is a wildcard in that position."""
        if isinstance(s, Variable):
            s = None
        if isinstance(p, Variable):
            p = None
        if isinstance(o, Variable):
            o = None

        if s is not None:
            po = self._spo.get(s)
            if po is None:
                return
            if p is not None:
                objs = po.get(p)
                if objs is None:
                    return
                if o is not None:
                    if o in objs:
                        yield Triple(s, p, o)
                    return
                for obj in objs:
                    yield Triple(s, p, obj)
                return
            if o is not None:
                sp = self._osp.get(o)
                if sp is None:
                    return
                preds = sp.get(s)
                if preds is None:
                    return
                for pred in preds:
                    yield Triple(s, pred, o)
                return
            for pred, objs in po.items():
                for obj in objs:
                    yield Triple(s, pred, obj)
            return

        if p is not None:
            os_ = self._pos.get(p)
            if os_ is None:
                return
            if o is not None:
                subs = os_.get(o)
                if subs is None:
                    return
                for sub in subs:
                    yield Triple(sub, p, o)
                return
            for obj, subs in os_.items():
                for sub in subs:
                    yield Triple(sub, p, obj)
            return

        if o is not None:
            sp = self._osp.get(o)
            if sp is None:
                return
            for sub, preds in sp.items():
                for pred in preds:
                    yield Triple(sub, pred, o)
            return

        yield from iter(self)

    def count(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> int:
        """Number of matching triples; cheaper than ``len(list(match(...)))``
        for the fully-wild and single-bound shapes."""
        if s is None and p is None and o is None:
            return self._size
        return sum(1 for _ in self.match(s, p, o))

    def subjects(self, p: Term | None = None, o: Term | None = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for t in self.match(None, p, o):
            if t.s not in seen:
                seen.add(t.s)
                yield t.s

    def objects(self, s: Term | None = None, p: Term | None = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for t in self.match(s, p, None):
            if t.o not in seen:
                seen.add(t.o)
                yield t.o

    def predicates(self) -> Iterator[Term]:
        yield from self._pos.keys()

    # -- raw-index fast paths (used by the compiled rule kernels) ---------
    #
    # These return the store's internal sets/dicts (or ``None``) without
    # materializing :class:`Triple` objects — the per-probe allocation cost
    # the compiled datalog kernels exist to avoid.  Callers must treat the
    # returned containers as read-only snapshots of the index.

    def spo_items(self) -> Iterator[tuple[Term, Term, Term]]:
        """Iterate all triples as raw ``(s, p, o)`` tuples (no Triple
        construction)."""
        for s, po in self._spo.items():
            for p, objs in po.items():
                for o in objs:
                    yield (s, p, o)

    def contains_spo(self, s: Term, p: Term, o: Term) -> bool:
        """Membership probe on raw terms (no Triple construction)."""
        po = self._spo.get(s)
        if po is None:
            return False
        objs = po.get(p)
        return objs is not None and o in objs

    def objects_set(self, s: Term, p: Term) -> set[Term] | None:
        """The object set of ``(s, p, ·)`` straight from the SPO index, or
        ``None`` when empty.  O(1)."""
        po = self._spo.get(s)
        return None if po is None else po.get(p)

    def subjects_set(self, p: Term, o: Term) -> set[Term] | None:
        """The subject set of ``(·, p, o)`` straight from the POS index, or
        ``None`` when empty.  O(1)."""
        os_ = self._pos.get(p)
        return None if os_ is None else os_.get(o)

    def predicates_set(self, s: Term, o: Term) -> set[Term] | None:
        """The predicate set of ``(s, ·, o)`` straight from the OSP index,
        or ``None`` when empty.  O(1)."""
        sp = self._osp.get(o)
        return None if sp is None else sp.get(s)

    def po_map(self, s: Term) -> dict[Term, set[Term]] | None:
        """The ``{p: {o}}`` sub-index for a subject, or ``None``."""
        return self._spo.get(s)

    def os_map(self, p: Term) -> dict[Term, set[Term]] | None:
        """The ``{o: {s}}`` sub-index for a predicate, or ``None``."""
        return self._pos.get(p)

    def sp_map(self, o: Term) -> dict[Term, set[Term]] | None:
        """The ``{s: {p}}`` sub-index for an object, or ``None``."""
        return self._osp.get(o)

    def value(self, s: Term, p: Term, default: Term | None = None) -> Term | None:
        """The unique object of (s, p, ·), or ``default`` if absent.
        Raises if there are several (use ``objects`` for multi-valued)."""
        it = self.match(s, p, None)
        first = next(it, _MISSING)
        if first is _MISSING:
            return default
        second = next(it, _MISSING)
        if second is not _MISSING:
            raise ValueError(f"({s}, {p}) has multiple objects")
        return first.o  # type: ignore[union-attr]

    # -- node-level views (used by partitioning) --------------------------

    def resources(self) -> set[Term]:
        """All URIs/BNodes occurring in subject or object position — the
        vertex set of the RDF graph in the paper's data-partitioning model.
        Literals are excluded (they cannot be subjects, hence never the
        shared join variable of a single-join rule over resources)."""
        nodes: set[Term] = set(self._spo.keys())
        for o in self._osp.keys():
            if is_resource(o):
                nodes.add(o)
        return nodes

    def degree(self, node: Term) -> int:
        """Number of triples in which ``node`` is subject or object."""
        d = 0
        po = self._spo.get(node)
        if po is not None:
            d += sum(len(objs) for objs in po.values())
        sp = self._osp.get(node)
        if sp is not None:
            d += sum(len(preds) for preds in sp.values())
        return d

    # -- set-ish operations -----------------------------------------------

    def copy(self) -> "Graph":
        g = Graph()
        g.update(iter(self))
        return g

    def union(self, other: "Graph") -> "Graph":
        g = self.copy()
        g.update(iter(other))
        return g

    def difference(self, other: "Graph") -> "Graph":
        g = Graph()
        for t in self:
            if t not in other:
                g.add(t)
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._size != other._size:
            return False
        return all(t in other for t in self)

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return not eq

    def __hash__(self):  # graphs are mutable
        raise TypeError("Graph is unhashable")

    def __repr__(self) -> str:
        return f"<Graph with {self._size} triples>"

    # -- integrity (used by property tests) -------------------------------

    def check_integrity(self) -> None:
        """Assert the three indexes agree with each other and with _size.
        O(n); test/debug helper, never called on hot paths."""
        spo_set = {
            (s, p, o)
            for s, po in self._spo.items()
            for p, objs in po.items()
            for o in objs
        }
        pos_set = {
            (s, p, o)
            for p, os_ in self._pos.items()
            for o, subs in os_.items()
            for s in subs
        }
        osp_set = {
            (s, p, o)
            for o, sp in self._osp.items()
            for s, preds in sp.items()
            for p in preds
        }
        if not (spo_set == pos_set == osp_set):
            raise AssertionError("index sets disagree")
        if len(spo_set) != self._size:
            raise AssertionError(
                f"size {self._size} != indexed triple count {len(spo_set)}"
            )
        for s, p, o in spo_set:
            Triple(s, p, o)  # re-validates positional constraints
