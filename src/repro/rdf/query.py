"""Basic graph pattern (BGP) queries over a graph.

The paper's setting is *materialized* knowledge bases: inference runs at
load time precisely so that queries become plain pattern matching
(Section I: "materialized knowledge-bases trade-off space and increased
loading time for shorter query times").  This module supplies that query
side: conjunctive triple patterns (the SPARQL BGP core) evaluated against
any :class:`~repro.rdf.graph.Graph` — typically the output of
:class:`~repro.owl.kb.MaterializedKB`.

Evaluation is the textbook index-nested-loop join with greedy
most-bound-first pattern ordering (the same heuristic the backward engine
uses for rule bodies), which is optimal enough for the star- and
chain-shaped queries of LUBM-style workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.datalog.ast import Atom, Bindings
from repro.datalog.engine import match_atom
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable


@dataclass(frozen=True)
class BGPStats:
    """Work accounting for one query evaluation."""

    patterns: int
    index_probes: int
    solutions: int


class BGPQuery:
    """A conjunctive triple-pattern query.

    >>> from repro.rdf import Graph, URI
    >>> from repro.rdf.terms import Variable
    >>> g = Graph()
    >>> _ = g.add_spo(URI("ex:alice"), URI("ex:knows"), URI("ex:bob"))
    >>> _ = g.add_spo(URI("ex:bob"), URI("ex:knows"), URI("ex:carol"))
    >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
    >>> q = BGPQuery([Atom(x, URI("ex:knows"), y), Atom(y, URI("ex:knows"), z)])
    >>> rows = list(q.execute(g))
    >>> len(rows)
    1
    >>> str(rows[0][x]), str(rows[0][z])
    ('ex:alice', 'ex:carol')
    """

    def __init__(self, patterns: Sequence[Atom]) -> None:
        if not patterns:
            raise ValueError("a BGP needs at least one pattern")
        for p in patterns:
            if not isinstance(p, Atom):
                raise TypeError(f"pattern must be an Atom, got {p!r}")
        self.patterns = tuple(patterns)

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for p in self.patterns:
            out |= p.variables()
        return out

    # -- evaluation -----------------------------------------------------------

    def _order(self, bound: set[Variable]) -> list[Atom]:
        """Greedy most-bound-first join order (see module docstring)."""
        remaining = list(self.patterns)
        ordered: list[Atom] = []
        bound = set(bound)
        while remaining:
            def boundness(atom: Atom) -> tuple[int, int]:
                ground = sum(
                    1
                    for t in atom
                    if not isinstance(t, Variable) or t in bound
                )
                # Tiebreak: fewer total variables first.
                return (ground, -len(atom.variables()))

            best = max(remaining, key=boundness)
            remaining.remove(best)
            ordered.append(best)
            bound |= best.variables()
        return ordered

    def execute(
        self,
        graph: Graph,
        bindings: Bindings | None = None,
    ) -> Iterator[Bindings]:
        """Yield every solution mapping (variable -> ground term)."""
        initial: Bindings = dict(bindings) if bindings else {}
        order = self._order(set(initial.keys()))

        def solve(index: int, current: Bindings) -> Iterator[Bindings]:
            if index == len(order):
                yield current
                return
            for extended in match_atom(graph, order[index], current):
                yield from solve(index + 1, extended)

        yield from solve(0, initial)

    def execute_with_stats(
        self, graph: Graph, bindings: Bindings | None = None
    ) -> tuple[list[Bindings], BGPStats]:
        """Like :meth:`execute`, materialized, with probe counts."""
        from repro.datalog.engine import EngineStats

        stats = EngineStats()
        initial: Bindings = dict(bindings) if bindings else {}
        order = self._order(set(initial.keys()))
        solutions: list[Bindings] = []

        def solve(index: int, current: Bindings) -> None:
            if index == len(order):
                solutions.append(current)
                return
            for extended in match_atom(graph, order[index], current, stats):
                solve(index + 1, extended)

        solve(0, initial)
        return solutions, BGPStats(
            patterns=len(order),
            index_probes=stats.join_probes,
            solutions=len(solutions),
        )

    def count(self, graph: Graph) -> int:
        return sum(1 for _ in self.execute(graph))

    def ask(self, graph: Graph) -> bool:
        """SPARQL ASK semantics: does at least one solution exist?"""
        return next(self.execute(graph), None) is not None

    def select(
        self, graph: Graph, *variables: Variable
    ) -> list[tuple[Term, ...]]:
        """SPARQL SELECT semantics: distinct projected rows, sorted."""
        if not variables:
            raise ValueError("select needs at least one projection variable")
        unknown = set(variables) - self.variables()
        if unknown:
            names = ", ".join(sorted(str(v) for v in unknown))
            raise ValueError(f"projection variable(s) not in query: {names}")
        rows = {
            tuple(b[v] for v in variables) for b in self.execute(graph)
        }
        return sorted(rows)

    def __repr__(self) -> str:
        return f"BGPQuery({list(self.patterns)!r})"
