"""Term <-> integer dictionary encoding.

Large-scale RDF systems (and the paper's METIS input) operate on integer
node ids, not term objects.  :class:`TermDictionary` provides a stable
bijection term→id, and :class:`EncodedGraph` materializes a triple set as
three parallel ``numpy`` id arrays — the representation the multilevel graph
partitioner, the replication metrics, and the id-encoded wire protocol
consume.

Ids are dense, assigned in first-seen order, which keeps the partitioner's
CSR construction a single bincount/cumsum pass.

Alongside the bijection, both dictionaries maintain a per-id *kind* byte
(URI / BNode / Literal) so id-space consumers — the columnar fixpoint
kernels, the partition policies — can test resource-ness and predicate
validity of whole id columns (:meth:`TermDictionary.resource_mask`,
:meth:`TermDictionary.uri_mask`) without touching a term object.

:class:`PartitionDictionary` is the partition-aware view used by the
parallel runtime: every worker starts from the same shared base dictionary
(built by the master over the input KB) and mints ids for terms it first
derives at runtime — literals, bnodes, rule-head constants — in a private
id stripe, so two workers can never mint the same id for different terms.
Newly minted ``(id, term)`` pairs travel once per peer as a
*delta-dictionary* alongside the id-encoded tuple rows
(:class:`repro.parallel.messages.EncodedBatch`); thereafter the term is
pure int traffic.  Two workers may concurrently mint *different* ids for
the *same* new term — that is fine: both ids decode to the one interned
term object, so graphs reconcile set-equal on decode.  Id-native workers
additionally *canonicalize* received rows (:meth:`PartitionDictionary
.canonical_ids`) so aliased ids never reach an id-space join.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.rdf.terms import Term
from repro.rdf.triple import Triple

#: Kind byte per term, matching the sort ranks in :mod:`repro.rdf.terms`:
#: 0 = URI, 1 = BNode, 2 = Literal.  Resources are kinds <= 1.
_KIND_LITERAL = 2


class TermDictionary:
    """Bidirectional term <-> dense-int mapping.

    >>> from repro.rdf.terms import URI
    >>> d = TermDictionary()
    >>> d.encode(URI("ex:a"))
    0
    >>> d.decode(0)
    URI('ex:a')
    """

    __slots__ = ("_to_id", "_terms", "_kinds", "_kind_arr")

    def __init__(self) -> None:
        self._to_id: dict[Term, int] = {}
        self._terms: list[Term] = []
        #: Parallel to ``_terms``: the term-kind byte (0 URI / 1 BNode /
        #: 2 Literal).  Maintained at encode time so decode-side consumers
        #: can test resource-ness (kind <= 1) or URI-ness (kind == 0) of
        #: whole id columns without a Python loop.
        self._kinds: list[int] = []
        self._kind_arr: np.ndarray | None = None

    def encode(self, term: Term) -> int:
        """Id for ``term``, assigning the next dense id on first sight."""
        tid = self._to_id.get(term)
        if tid is None:
            tid = len(self._terms)
            self._to_id[term] = tid
            self._terms.append(term)
            self._kinds.append(term._kind)
            self._kind_arr = None
        return tid

    def encode_many(self, terms: Iterable[Term]) -> np.ndarray:
        """Vectorized :meth:`encode`: one int64 id per input term, minting
        ids for unseen terms in iteration order."""
        to_id = self._to_id
        term_list = self._terms
        kinds = self._kinds
        out: list[int] = []
        grown = False
        for term in terms:
            tid = to_id.get(term)
            if tid is None:
                tid = len(term_list)
                to_id[term] = tid
                term_list.append(term)
                kinds.append(term._kind)
                grown = True
            out.append(tid)
        if grown:
            self._kind_arr = None
        return np.asarray(out, dtype=np.int64)

    def encode_existing(self, term: Term) -> int:
        """Id for a term that must already be present (raises ``KeyError``)."""
        return self._to_id[term]

    def get(self, term: Term) -> int | None:
        """Id for ``term`` if present, else ``None`` (no assignment)."""
        return self._to_id.get(term)

    def decode(self, tid: int) -> Term:
        return self._terms[tid]

    def decode_many(self, ids: np.ndarray) -> list[Term]:
        """Vectorized :meth:`decode`: the term list for an id column."""
        terms = self._terms
        return [terms[i] for i in np.asarray(ids, dtype=np.int64).tolist()]

    def _kind_array(self) -> np.ndarray:
        arr = self._kind_arr
        if arr is None or len(arr) != len(self._terms):
            arr = self._kind_arr = np.asarray(self._kinds, dtype=np.int8)
        return arr

    def resource_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean array: ``mask[i]`` iff ``ids[i]`` names a URI/BNode.

        Vectorized via the maintained per-id kind bytes; the kind array is
        rebuilt lazily after dictionary growth.
        """
        return self._kind_array()[ids] < _KIND_LITERAL

    def uri_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean array: ``mask[i]`` iff ``ids[i]`` names a URI — the
        predicate-position validity test of the columnar kernels."""
        return self._kind_array()[ids] == 0

    def __contains__(self, term: Term) -> bool:
        return term in self._to_id

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms)

    def items(self) -> Iterator[tuple[Term, int]]:
        return iter(self._to_id.items())

    def terms(self) -> list[Term]:
        """The id->term list (index i holds the term with id i) — the
        master ships this to workers to reconstruct an identical base."""
        return list(self._terms)

    @classmethod
    def from_terms(cls, terms: Iterable[Term]) -> "TermDictionary":
        """Rebuild from an id-ordered term list (inverse of :meth:`terms`)."""
        d = cls()
        for term in terms:
            d.encode(term)
        return d


class PartitionDictionary:
    """One worker's partition-aware view over a shared base dictionary.

    Ids split into two ranges:

    * ``[0, len(base))`` — the base stripe, identical on every worker.
    * ``base_size + j*k + node_id`` for j = 0, 1, ... — this worker's
      private stripe for terms first seen at runtime.  Stripes of distinct
      workers are disjoint by construction, so no coordination is needed
      to mint an id.

    Foreign ids (minted by peers, learned through a received delta) are
    registered for decode; when this worker later derives the same term it
    reuses the foreign id rather than minting a duplicate, keeping dedup
    and traffic tight.
    """

    __slots__ = ("base", "node_id", "k", "_base_size", "_to_id", "_by_id",
                 "_kind_by_id", "_minted")

    def __init__(self, base: TermDictionary, node_id: int, k: int) -> None:
        if not 0 <= node_id < k:
            raise ValueError(f"node_id {node_id} outside [0, {k})")
        self.base = base
        self.node_id = node_id
        self.k = k
        self._base_size = len(base)
        #: term -> id for non-base terms (locally minted or foreign).
        self._to_id: dict[Term, int] = {}
        #: id -> term for non-base ids.
        self._by_id: dict[int, Term] = {}
        #: id -> kind byte for non-base ids (the non-base continuation of
        #: the base dictionary's kind array).
        self._kind_by_id: dict[int, int] = {}
        #: Count of ids minted locally (j in the stripe formula).
        self._minted = 0

    def encode(self, term: Term) -> int:
        """Id for ``term``: base id, known non-base id, or a fresh id in
        this worker's private stripe."""
        tid = self.base.get(term)
        if tid is not None:
            return tid
        tid = self._to_id.get(term)
        if tid is not None:
            return tid
        tid = self._base_size + self._minted * self.k + self.node_id
        self._minted += 1
        self._to_id[term] = tid
        self._by_id[tid] = term
        self._kind_by_id[tid] = term._kind
        return tid

    def encode_many(self, terms: Iterable[Term]) -> np.ndarray:
        """Vectorized :meth:`encode` (one int64 id per input term)."""
        return np.asarray([self.encode(t) for t in terms], dtype=np.int64)

    @property
    def base_size(self) -> int:
        """Ids below this are base-stripe (known to every worker)."""
        return self._base_size

    def get(self, term: Term) -> int | None:
        tid = self.base.get(term)
        if tid is None:
            tid = self._to_id.get(term)
        return tid

    def decode(self, tid: int) -> Term:
        if tid < self._base_size:
            return self.base.decode(tid)
        return self._by_id[tid]

    def decode_many(self, ids: np.ndarray) -> list[Term]:
        """Vectorized :meth:`decode` for a mixed base/non-base id column."""
        base_terms = self.base._terms
        by_id = self._by_id
        base_size = self._base_size
        return [
            base_terms[i] if i < base_size else by_id[i]
            for i in np.asarray(ids, dtype=np.int64).tolist()
        ]

    def apply_delta(self, entries: Sequence[tuple[int, Term]]) -> None:
        """Register a received delta-dictionary: peer-minted (id, term)
        pairs.  The term keeps its first-registered local encoding (a peer
        id never displaces one this worker already uses), but every
        registered id becomes decodable."""
        for tid, term in entries:
            if tid in self._by_id:
                continue
            self._by_id[tid] = term
            self._kind_by_id[tid] = term._kind
            self._to_id.setdefault(term, tid)

    def canonical_ids(self, ids: np.ndarray) -> np.ndarray:
        """Map every id to the id :meth:`encode` would return for its term.

        Two workers can mint different ids for the same runtime term;
        id-space joins would miss rows that are term-equal but id-distinct.
        Id-native workers therefore canonicalize every received id column
        through this before it touches the local
        :class:`~repro.rdf.idstore.IdGraph`.  Base ids map to themselves.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0 or int(ids.max(initial=0)) < self._base_size:
            return ids
        to_id = self._to_id
        by_id = self._by_id
        base_size = self._base_size
        return np.asarray(
            [i if i < base_size else to_id[by_id[i]] for i in ids.tolist()],
            dtype=np.int64,
        )

    def _mask(self, ids: np.ndarray, literal_ok: bool) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        base_size = self._base_size
        if ids.size == 0 or int(ids.max(initial=0)) < base_size:
            arr = self.base._kind_array()[ids]
            return arr < _KIND_LITERAL if literal_ok else arr == 0
        kinds = self._kind_by_id
        limit = _KIND_LITERAL if literal_ok else 1
        base_kinds = self.base._kind_array()
        return np.asarray(
            [
                (base_kinds[i] if i < base_size else kinds[i]) < limit
                for i in ids.tolist()
            ],
            dtype=bool,
        )

    def resource_mask(self, ids: np.ndarray) -> np.ndarray:
        """``mask[i]`` iff ``ids[i]`` names a URI/BNode (any stripe)."""
        return self._mask(ids, literal_ok=True)

    def uri_mask(self, ids: np.ndarray) -> np.ndarray:
        """``mask[i]`` iff ``ids[i]`` names a URI (any stripe)."""
        return self._mask(ids, literal_ok=False)

    def __contains__(self, term: Term) -> bool:
        return term in self.base or term in self._to_id

    def __len__(self) -> int:
        return self._base_size + len(self._by_id)


class EncodedGraph:
    """A triple multiset as parallel id arrays plus the dictionary.

    ``s_ids``, ``p_ids``, ``o_ids`` are int64 arrays of equal length; row i
    encodes the i-th triple.  Resource nodes (URIs/BNodes in s/o position)
    and predicates share one id space, which is harmless: partitioning only
    looks at the s/o columns.

    The derived views :meth:`resource_ids` and :meth:`edges` are cached —
    partition policies consult them repeatedly while scoring candidate
    cuts — and invalidated by :meth:`append` (the only mutator).
    """

    __slots__ = ("dictionary", "s_ids", "p_ids", "o_ids",
                 "_resource_ids", "_edges")

    def __init__(
        self,
        dictionary: TermDictionary,
        s_ids: np.ndarray,
        p_ids: np.ndarray,
        o_ids: np.ndarray,
    ) -> None:
        if not (len(s_ids) == len(p_ids) == len(o_ids)):
            raise ValueError("id columns must have equal length")
        self.dictionary = dictionary
        self.s_ids = s_ids
        self.p_ids = p_ids
        self.o_ids = o_ids
        self._resource_ids: np.ndarray | None = None
        self._edges: np.ndarray | None = None

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Triple],
        dictionary: TermDictionary | None = None,
    ) -> "EncodedGraph":
        d = dictionary if dictionary is not None else TermDictionary()
        s_list: list[int] = []
        p_list: list[int] = []
        o_list: list[int] = []
        enc = d.encode
        for t in triples:
            s_list.append(enc(t.s))
            p_list.append(enc(t.p))
            o_list.append(enc(t.o))
        return cls(
            d,
            np.asarray(s_list, dtype=np.int64),
            np.asarray(p_list, dtype=np.int64),
            np.asarray(o_list, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.s_ids)

    def append(self, triples: Iterable[Triple]) -> int:
        """Encode and append triples (rows are kept as given — the encoded
        graph is a multiset).  Invalidates the cached derived views.
        Returns the number of rows appended."""
        enc = self.dictionary.encode
        s_list: list[int] = []
        p_list: list[int] = []
        o_list: list[int] = []
        for t in triples:
            s_list.append(enc(t.s))
            p_list.append(enc(t.p))
            o_list.append(enc(t.o))
        if not s_list:
            return 0
        self.s_ids = np.concatenate(
            [self.s_ids, np.asarray(s_list, dtype=np.int64)])
        self.p_ids = np.concatenate(
            [self.p_ids, np.asarray(p_list, dtype=np.int64)])
        self.o_ids = np.concatenate(
            [self.o_ids, np.asarray(o_list, dtype=np.int64)])
        self._resource_ids = None
        self._edges = None
        return len(s_list)

    def triple(self, index: int) -> Triple:
        d = self.dictionary
        return Triple(
            d.decode(int(self.s_ids[index])),
            d.decode(int(self.p_ids[index])),
            d.decode(int(self.o_ids[index])),
        )

    def triples(self) -> Iterator[Triple]:
        for i in range(len(self)):
            yield self.triple(i)

    def resource_ids(self) -> np.ndarray:
        """Sorted unique ids of resource nodes (subjects, plus objects that
        are URIs/BNodes) — the vertex set for partitioning.  Cached until
        :meth:`append`."""
        cached = self._resource_ids
        if cached is None:
            mask = self.dictionary.resource_mask(self.o_ids)
            cached = self._resource_ids = np.union1d(
                self.s_ids, self.o_ids[mask])
        return cached

    def edges(self) -> np.ndarray:
        """(m, 2) array of (subject_id, object_id) rows for triples whose
        object is a resource — the edge list of the RDF graph in the paper's
        partitioning model.  Self-loops are kept (they don't affect cuts).
        Cached until :meth:`append`."""
        cached = self._edges
        if cached is None:
            mask = self.dictionary.resource_mask(self.o_ids)
            cached = self._edges = np.stack(
                [self.s_ids[mask], self.o_ids[mask]], axis=1)
        return cached
