"""Term <-> integer dictionary encoding.

Large-scale RDF systems (and the paper's METIS input) operate on integer
node ids, not term objects.  :class:`TermDictionary` provides a stable
bijection term→id, and :class:`EncodedGraph` materializes a triple set as
three parallel ``numpy`` id arrays — the representation the multilevel graph
partitioner and the replication metrics consume.

Ids are dense, assigned in first-seen order, which keeps the partitioner's
CSR construction a single bincount/cumsum pass.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.rdf.terms import Term, is_resource
from repro.rdf.triple import Triple


class TermDictionary:
    """Bidirectional term <-> dense-int mapping.

    >>> from repro.rdf.terms import URI
    >>> d = TermDictionary()
    >>> d.encode(URI("ex:a"))
    0
    >>> d.decode(0)
    URI('ex:a')
    """

    __slots__ = ("_to_id", "_terms")

    def __init__(self) -> None:
        self._to_id: dict[Term, int] = {}
        self._terms: list[Term] = []

    def encode(self, term: Term) -> int:
        """Id for ``term``, assigning the next dense id on first sight."""
        tid = self._to_id.get(term)
        if tid is None:
            tid = len(self._terms)
            self._to_id[term] = tid
            self._terms.append(term)
        return tid

    def encode_existing(self, term: Term) -> int:
        """Id for a term that must already be present (raises ``KeyError``)."""
        return self._to_id[term]

    def decode(self, tid: int) -> Term:
        return self._terms[tid]

    def __contains__(self, term: Term) -> bool:
        return term in self._to_id

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms)

    def items(self) -> Iterator[tuple[Term, int]]:
        return iter(self._to_id.items())


class EncodedGraph:
    """A triple multiset as parallel id arrays plus the dictionary.

    ``s_ids``, ``p_ids``, ``o_ids`` are int64 arrays of equal length; row i
    encodes the i-th triple.  Resource nodes (URIs/BNodes in s/o position)
    and predicates share one id space, which is harmless: partitioning only
    looks at the s/o columns.
    """

    __slots__ = ("dictionary", "s_ids", "p_ids", "o_ids")

    def __init__(
        self,
        dictionary: TermDictionary,
        s_ids: np.ndarray,
        p_ids: np.ndarray,
        o_ids: np.ndarray,
    ) -> None:
        if not (len(s_ids) == len(p_ids) == len(o_ids)):
            raise ValueError("id columns must have equal length")
        self.dictionary = dictionary
        self.s_ids = s_ids
        self.p_ids = p_ids
        self.o_ids = o_ids

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Triple],
        dictionary: TermDictionary | None = None,
    ) -> "EncodedGraph":
        d = dictionary if dictionary is not None else TermDictionary()
        s_list: list[int] = []
        p_list: list[int] = []
        o_list: list[int] = []
        enc = d.encode
        for t in triples:
            s_list.append(enc(t.s))
            p_list.append(enc(t.p))
            o_list.append(enc(t.o))
        return cls(
            d,
            np.asarray(s_list, dtype=np.int64),
            np.asarray(p_list, dtype=np.int64),
            np.asarray(o_list, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.s_ids)

    def triple(self, index: int) -> Triple:
        d = self.dictionary
        return Triple(
            d.decode(int(self.s_ids[index])),
            d.decode(int(self.p_ids[index])),
            d.decode(int(self.o_ids[index])),
        )

    def triples(self) -> Iterator[Triple]:
        for i in range(len(self)):
            yield self.triple(i)

    def resource_ids(self) -> np.ndarray:
        """Sorted unique ids of resource nodes (subjects, plus objects that
        are URIs/BNodes) — the vertex set for partitioning."""
        d = self.dictionary
        obj_resource_mask = np.fromiter(
            (is_resource(d.decode(int(i))) for i in self.o_ids),
            dtype=bool,
            count=len(self.o_ids),
        )
        return np.union1d(self.s_ids, self.o_ids[obj_resource_mask])

    def edges(self) -> np.ndarray:
        """(m, 2) array of (subject_id, object_id) rows for triples whose
        object is a resource — the edge list of the RDF graph in the paper's
        partitioning model.  Self-loops are kept (they don't affect cuts)."""
        d = self.dictionary
        mask = np.fromiter(
            (is_resource(d.decode(int(i))) for i in self.o_ids),
            dtype=bool,
            count=len(self.o_ids),
        )
        return np.stack([self.s_ids[mask], self.o_ids[mask]], axis=1)
