"""Namespace helpers and the W3C vocabularies the OWL-Horst rule set uses.

``Namespace`` supports both attribute and item access::

    EX = Namespace("http://example.org/ns#")
    EX.Student        # URI('http://example.org/ns#Student')
    EX["sub-class"]   # names that are not Python identifiers
"""

from __future__ import annotations

from repro.rdf.terms import URI


class Namespace:
    """A URI prefix that mints interned :class:`URI` terms."""

    __slots__ = ("prefix",)

    def __init__(self, prefix: str) -> None:
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        object.__setattr__(self, "prefix", prefix)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Namespace is immutable")

    def __getattr__(self, name: str) -> URI:
        if name.startswith("_"):
            raise AttributeError(name)
        return URI(self.prefix + name)

    def __getitem__(self, name: str) -> URI:
        return URI(self.prefix + name)

    def term(self, name: str) -> URI:
        return URI(self.prefix + name)

    def __contains__(self, term: object) -> bool:
        return isinstance(term, URI) and term.value.startswith(self.prefix)

    def __repr__(self) -> str:
        return f"Namespace({self.prefix!r})"

    def __str__(self) -> str:
        return self.prefix

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and self.prefix == other.prefix

    def __hash__(self) -> int:
        return hash(("Namespace", self.prefix))


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

#: The schema-level predicates/classes whose triples Algorithm 1 strips from
#: the instance graph before ownership assignment (step 1 of the paper's
#: data-partitioning algorithm).  Kept here because it is vocabulary, not
#: policy; the partitioner imports it.
SCHEMA_PREDICATES = frozenset(
    {
        RDFS.subClassOf,
        RDFS.subPropertyOf,
        RDFS.domain,
        RDFS.range,
        OWL.equivalentClass,
        OWL.equivalentProperty,
        OWL.inverseOf,
        OWL.onProperty,
        OWL.someValuesFrom,
        OWL.allValuesFrom,
        OWL.hasValue,
        OWL.intersectionOf,
        OWL.unionOf,
        OWL.oneOf,
        OWL.disjointWith,
        OWL.complementOf,
        RDF.first,
        RDF.rest,
    }
)

#: rdf:type objects that mark a triple as schema-level.
SCHEMA_TYPE_OBJECTS = frozenset(
    {
        RDFS.Class,
        RDF.Property,
        OWL.Class,
        OWL.Restriction,
        OWL.ObjectProperty,
        OWL.DatatypeProperty,
        OWL.TransitiveProperty,
        OWL.SymmetricProperty,
        OWL.FunctionalProperty,
        OWL.InverseFunctionalProperty,
        OWL.AnnotationProperty,
        OWL.Ontology,
    }
)
