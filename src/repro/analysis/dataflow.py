"""Store-invariant dataflow verifier (ST300-series).

The id-native stores (`IdGraph`, `RunStore`, `TermDictionary`,
`EncodedGraph`) are mutable numpy structures whose correctness rests on
unwritten discipline: every mutation must invalidate the right lazily
cached artifact (sorted-index views, the LRU decode cache, kind arrays,
`resource_ids`/`edges`), every cache read must consult a staleness guard,
tombstones move only along blessed delete paths, and fresh term ids are
minted only by `PartitionDictionary`'s stripe arithmetic.  A single
forgotten invalidation corrupts closure results without any test failing
deterministically.

This module writes that discipline down as data — a :class:`StoreSpec`
per store class — and verifies it with a pure-AST dataflow pass over the
store sources, the same declarative-spec-plus-verifier shape as the
protocol pass (PROTO-series) in :mod:`repro.analysis.protocol`:

========  =====================================================================
ST300     a blessed mutator no longer invalidates a cache / bumps a version
ST301     a cache is read without its staleness guard, or from an unaudited
          method
ST302     a tombstone set is written (or passed to a mutating callee) outside
          the blessed delete paths
ST303     stripe-id minting arithmetic (``base + j*k + node_id``) outside the
          allowed sites in `PartitionDictionary` / the epoch-revive paths
ST304     direct column/state writes bypassing the mutation API (including
          writes from *other* modules reaching into a store's privates)
ST305     spec/source drift — a spec-named class, method or attribute no
          longer exists (fails loudly, like PROTO001)
========  =====================================================================

The pass is deliberately syntactic: it tracks ``self.<attr>`` reads,
writes, mutating attribute calls, and ``self.<attr>`` flowing as an
argument into a ``self.<method>(...)`` call.  Mutation through a local
alias (``rows = self._terms; rows.append(...)``) is invisible to it —
acceptable because the blessed writers are exactly the methods that use
that idiom, and the runtime sanitizer (:mod:`repro.analysis.sanitize`)
covers the dynamic side.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.analysis.protocol import _index_functions, module_source
from repro.analysis.report import Finding

PASS_NAME = "dataflow"


# -- the spec ------------------------------------------------------------------


@dataclass(frozen=True)
class StateRule:
    """A raw state/column attribute and the only methods allowed to write it."""

    attr: str
    writers: frozenset[str]


@dataclass(frozen=True)
class CacheRule:
    """A lazily cached artifact derived from store state.

    ``invalidators`` are mutators that must drop/clear the cache;
    ``readers`` are the audited read sites, each of which must consult
    ``guard`` (an attribute mentioned in the staleness test) or — when
    ``guard`` is None — an ``is None`` rebuild test.  ``writers`` may
    (re)populate the cache; ``exempt`` methods may touch it without a
    guard (e.g. byte accounting).
    """

    attr: str
    invalidators: frozenset[str]
    readers: frozenset[str]
    guard: str | None
    writers: frozenset[str]
    exempt: frozenset[str] = frozenset()


@dataclass(frozen=True)
class VersionRule:
    """A version counter every listed mutator must bump."""

    attr: str
    bumpers: frozenset[str]


@dataclass(frozen=True)
class TombstoneRule:
    """A tombstone store writable only along the blessed delete paths."""

    attr: str
    delete_paths: frozenset[str]


@dataclass(frozen=True)
class StoreSpec:
    """The invariant contract of one store class."""

    module: str
    cls: str
    state: tuple[StateRule, ...] = ()
    caches: tuple[CacheRule, ...] = ()
    versions: tuple[VersionRule, ...] = ()
    tombstones: tuple[TombstoneRule, ...] = ()


@dataclass(frozen=True)
class StripeRule:
    """A module scanned for stripe-minting arithmetic (ST303).

    ``allowed`` holds the qualnames permitted to compute
    ``... + <j> * k + node_id``-shaped expressions; the canonical minting
    site is ``PartitionDictionary.encode``, plus the epoch-revive paths
    that derive a worker's *stripe index* (not a term id) the same way.
    """

    module: str
    allowed: frozenset[str] = frozenset()


def _fs(*names: str) -> frozenset[str]:
    return frozenset(names)


STORE_SPECS: tuple[StoreSpec, ...] = (
    StoreSpec(
        module="repro.rdf.graph",
        cls="Graph",
        state=(
            StateRule("_spo", _fs("add", "discard", "clear")),
            StateRule("_pos", _fs("add", "discard", "clear")),
            StateRule("_osp", _fs("add", "discard", "clear")),
            StateRule("_size", _fs("add", "discard", "clear")),
        ),
        versions=(VersionRule("_version", _fs("add", "discard", "clear")),),
    ),
    StoreSpec(
        module="repro.rdf.idstore",
        cls="IdGraph",
        state=(
            StateRule("_s", _fs("_reserve", "add_rows", "delete_rows")),
            StateRule("_p", _fs("_reserve", "add_rows", "delete_rows")),
            StateRule("_o", _fs("_reserve", "add_rows", "delete_rows")),
            StateRule("_n", _fs("add_rows", "delete_rows")),
        ),
        caches=(
            CacheRule(
                "_views",
                invalidators=_fs("delete_rows"),
                readers=_fs("sorted_view", "_view_parts"),
                guard="_n",
                writers=_fs("_rebuild"),
                exempt=_fs("memory_bytes"),
            ),
            CacheRule(
                "_tail_views",
                invalidators=_fs("delete_rows"),
                readers=_fs("_view_parts"),
                guard="_n",
                writers=_fs("_rebuild", "_view_parts"),
                exempt=_fs("memory_bytes"),
            ),
        ),
        versions=(VersionRule("_version", _fs("add_rows", "delete_rows")),),
    ),
    StoreSpec(
        module="repro.rdf.runstore",
        cls="RunStore",
        state=(
            StateRule("_tail", _fs("add_rows", "delete_rows", "_seal")),
            StateRule("_runs", _fs("_seal", "_compact")),
            StateRule("_serial", _fs("_next_serial")),
            StateRule("_cache", _fs("_cache_get", "_cache_put", "_retire")),
            StateRule("_cache_used", _fs("_cache_put", "_retire")),
        ),
        versions=(VersionRule("_version", _fs("add_rows", "delete_rows")),),
        tombstones=(
            TombstoneRule("_tombs", _fs("add_rows", "delete_rows", "_compact")),
        ),
    ),
    StoreSpec(
        module="repro.rdf.idquery",
        cls="IdIndex",
        caches=(
            # The id-encoded mirror of the term graph: rebuilt inside
            # ``current`` whenever the graph's version moved past the
            # ``_key`` the mirror was built at.  No in-class invalidators
            # — invalidation is the version-key comparison itself.
            CacheRule(
                "_mirror",
                invalidators=_fs(),
                readers=_fs("current"),
                guard="_key",
                writers=_fs("current"),
            ),
        ),
    ),
    StoreSpec(
        module="repro.rdf.dictionary",
        cls="TermDictionary",
        state=(
            StateRule("_to_id", _fs("encode", "encode_many")),
            StateRule("_terms", _fs("encode", "encode_many")),
            StateRule("_kinds", _fs("encode", "encode_many")),
        ),
        caches=(
            CacheRule(
                "_kind_arr",
                invalidators=_fs("encode", "encode_many"),
                readers=_fs("_kind_array"),
                guard=None,
                writers=_fs("_kind_array"),
            ),
        ),
    ),
    StoreSpec(
        module="repro.rdf.dictionary",
        cls="PartitionDictionary",
        state=(
            StateRule("_minted", _fs("encode")),
            StateRule("_to_id", _fs("encode", "apply_delta")),
            StateRule("_by_id", _fs("encode", "apply_delta")),
            StateRule("_kind_by_id", _fs("encode", "apply_delta")),
        ),
    ),
    StoreSpec(
        module="repro.rdf.dictionary",
        cls="EncodedGraph",
        state=(
            StateRule("s_ids", _fs("append")),
            StateRule("p_ids", _fs("append")),
            StateRule("o_ids", _fs("append")),
        ),
        caches=(
            CacheRule(
                "_resource_ids",
                invalidators=_fs("append"),
                readers=_fs("resource_ids"),
                guard=None,
                writers=_fs("resource_ids"),
            ),
            CacheRule(
                "_edges",
                invalidators=_fs("append"),
                readers=_fs("edges"),
                guard=None,
                writers=_fs("edges"),
            ),
        ),
    ),
    StoreSpec(
        module="repro.serving.server",
        cls="WorkerResultCache",
        caches=(
            # The serving tier's per-worker pattern answers, keyed on the
            # worker store's version at compute time.  No in-class
            # invalidators — a write path that bumps the store version
            # invalidates by key mismatch inside ``lookup`` (its
            # ``entry is None or entry[0] != version`` test is the
            # guard); ``lookup`` also writes the OrderedDict for LRU
            # recency, hence its place among the writers.
            CacheRule(
                "_entries",
                invalidators=_fs(),
                readers=_fs("lookup"),
                guard=None,
                writers=_fs("store", "lookup"),
                exempt=_fs("__len__"),
            ),
        ),
        state=(
            StateRule("hits", _fs("lookup")),
            StateRule("misses", _fs("lookup")),
        ),
    ),
    StoreSpec(
        module="repro.serving.server",
        cls="KBServer",
        # Single-writer discipline: each lifetime counter has exactly one
        # blessed writing method (the serve loop owns served/applied/
        # batches; admission owns rejected), so ``stats`` snapshots are
        # consistent without locking.
        state=(
            StateRule("_served", _fs("_handle")),
            StateRule("_applied", _fs("_handle")),
            StateRule("_batches", _fs("_serve_loop")),
            StateRule("_rejected", _fs("_enqueue")),
        ),
    ),
)

STRIPE_RULES: tuple[StripeRule, ...] = (
    StripeRule(
        module="repro.rdf.dictionary",
        allowed=_fs("PartitionDictionary.encode"),
    ),
    # Epoch revival derives the replacement worker's *stripe index*
    # (node + epoch*k) with the same arithmetic shape; both revive paths
    # are audited here so a third copy of the formula fails loudly.
    StripeRule(
        module="repro.parallel.async_backend",
        allowed=_fs("run_async_inprocess._revive", "_make_logical_worker"),
    ),
    StripeRule(module="repro.parallel.worker"),
    StripeRule(module="repro.parallel.driver"),
    StripeRule(module="repro.datalog.columnar"),
)

#: Modules outside the store sources scanned for foreign writes into
#: spec-protected attributes (the cross-module half of ST304).
CONSUMER_MODULES: tuple[str, ...] = (
    "repro.datalog.columnar",
    "repro.datalog.incremental",
    "repro.datalog.engine",
    "repro.parallel.worker",
    "repro.parallel.async_backend",
    "repro.parallel.driver",
    # The distributed query coordinator reads worker stores and gathers
    # their batches; it must never reach into store privates.
    "repro.parallel.query",
    "repro.owl.kb",
    # The runtime sanitizer reads store privates but must never mutate
    # them; the foreign-write scan keeps that one-way promise checked.
    "repro.analysis.sanitize",
    # The serving load driver reads server stats; same one-way promise.
    "repro.serving.loadgen",
)

#: Attribute calls that mutate their receiver.
_MUTATING_CALLS: frozenset[str] = frozenset(
    {
        "add",
        "add_rows",
        "append",
        "clear",
        "delete_rows",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


# -- per-method event collection -----------------------------------------------


@dataclass
class _Events:
    """What one method does to each ``self.<attr>``: first line per kind."""

    writes: dict[str, int] = field(default_factory=dict)
    reads: dict[str, int] = field(default_factory=dict)
    flows: dict[str, int] = field(default_factory=dict)
    dyn_write: int | None = None


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _store_targets(target: ast.expr) -> Iterator[tuple[str, int]]:
    """Attributes written by one assignment/delete target.

    Covers ``self.A = ...``, ``self.A[i] = ...``, ``del self.A[i]`` and
    tuple/chained unpacking of the above.
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _store_targets(elt)
        return
    attr = _self_attr(target)
    if attr is not None:
        yield attr, target.lineno
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            yield attr, target.lineno


def _method_events(func: ast.AST) -> _Events:
    ev = _Events()
    for node in ast.walk(func):
        targets: Sequence[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for t in targets:
            for attr, line in _store_targets(t):
                ev.writes.setdefault(attr, line)
        if isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Name)
                and fn.id == "setattr"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
            ):
                ev.dyn_write = ev.dyn_write or node.lineno
            if isinstance(fn, ast.Attribute):
                recv = _self_attr(fn.value)
                if recv is not None and fn.attr in _MUTATING_CALLS:
                    ev.writes.setdefault(recv, node.lineno)
                if _self_attr(fn) is not None:
                    # self.<method>(..., self.A, ...): A escapes into a
                    # callee that may mutate it (e.g. _compact passing
                    # drop=self._tombs to _merge_indexes).
                    args: list[ast.expr] = list(node.args)
                    args.extend(kw.value for kw in node.keywords)
                    for arg in args:
                        a = _self_attr(arg)
                        if a is not None:
                            ev.flows.setdefault(a, node.lineno)
        attr2 = _self_attr(node)
        if attr2 is not None and isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Load):
                ev.reads.setdefault(attr2, node.lineno)
    return ev


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _class_methods(cls: ast.ClassDef) -> dict[str, ast.AST]:
    return {
        n.name: n
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _slot_names(cls: ast.ClassDef) -> set[str]:
    out: set[str] = set()
    for node in cls.body:
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id == "__slots__":
                    value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__slots__":
                value = node.value
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    out.add(elt.value)
    return out


def _mentions_guard(func: ast.AST, guard: str) -> bool:
    """Does the method read ``self.<guard>`` anywhere (staleness test)?"""
    for node in ast.walk(func):
        if _self_attr(node) == guard and isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Load):
                return True
    return False


def _has_none_guard(func: ast.AST) -> bool:
    """Does the method contain an ``is None`` / ``is not None`` test?"""
    for node in ast.walk(func):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        ):
            comparands = [node.left, *node.comparators]
            if any(
                isinstance(c, ast.Constant) and c.value is None for c in comparands
            ):
                return True
    return False


# -- ST303: stripe-minting arithmetic ------------------------------------------


def _add_terms(node: ast.expr) -> list[ast.expr]:
    """Flatten an ``a + b + c`` chain into its terms."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _add_terms(node.left) + _add_terms(node.right)
    return [node]


def _trailing_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_stripe_expr(node: ast.expr) -> bool:
    """``... + <j> * k + node_id``-shaped: a Mult-by-``k`` term plus a
    ``node_id``/``node`` term in one Add chain."""
    terms = _add_terms(node)
    if len(terms) < 2:
        return False
    has_mult_by_k = False
    has_node = False
    for term in terms:
        if isinstance(term, ast.BinOp) and isinstance(term.op, ast.Mult):
            sides = (_trailing_name(term.left), _trailing_name(term.right))
            if "k" in sides or "stripes" in sides:
                has_mult_by_k = True
        name = _trailing_name(term)
        if name in ("node_id", "node"):
            has_node = True
    return has_mult_by_k and has_node


def _stripe_sites(tree: ast.Module) -> list[tuple[str, int]]:
    """``(qualname, line)`` of every stripe-shaped expression."""
    sites: list[tuple[str, int]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif (
                isinstance(child, ast.BinOp)
                and isinstance(child.op, ast.Add)
                and _is_stripe_expr(child)
            ):
                sites.append((prefix.rstrip("."), child.lineno))
            else:
                visit(child, prefix)

    visit(tree, "")
    return sites


# -- the checks ----------------------------------------------------------------


def _finding(code: str, message: str, rel: str, line: int | None = None) -> Finding:
    return Finding(code, message, path=rel, line=line, pass_name=PASS_NAME)


def _check_store(spec: StoreSpec, tree: ast.Module, rel: str) -> list[Finding]:
    out: list[Finding] = []
    cls = _class_def(tree, spec.cls)
    if cls is None:
        out.append(
            _finding(
                "ST305",
                f"class {spec.cls} named by the store spec does not exist in "
                f"{spec.module} — the spec drifted from the code",
                rel,
            )
        )
        return out
    methods = _class_methods(cls)
    events = {name: _method_events(fn) for name, fn in methods.items()}
    slots = _slot_names(cls)
    known_attrs: set[str] = set(slots)
    for ev in events.values():
        known_attrs.update(ev.writes)
        known_attrs.update(ev.reads)

    def check_named(names: frozenset[str], role: str) -> None:
        for m in sorted(names):
            if m not in methods:
                out.append(
                    _finding(
                        "ST305",
                        f"{spec.cls}.{m} named by the store spec ({role}) does "
                        "not exist — the spec drifted from the code",
                        rel,
                        cls.lineno,
                    )
                )

    def check_attr(attr: str, role: str) -> None:
        if attr not in known_attrs:
            out.append(
                _finding(
                    "ST305",
                    f"{spec.cls}.{attr} named by the store spec ({role}) is "
                    "never defined — the spec drifted from the code",
                    rel,
                    cls.lineno,
                )
            )

    # -- version counters (ST300 missing bump, ST304 rogue bump) --
    for vrule in spec.versions:
        check_attr(vrule.attr, "version counter")
        check_named(vrule.bumpers, f"bumpers of {vrule.attr}")
        for m in sorted(vrule.bumpers):
            fn = methods.get(m)
            if fn is not None and vrule.attr not in events[m].writes:
                out.append(
                    _finding(
                        "ST300",
                        f"{spec.cls}.{m} mutates the store without bumping "
                        f"version counter {vrule.attr} — stale readers will "
                        "not notice the mutation",
                        rel,
                        getattr(fn, "lineno", None),
                    )
                )
        for m, ev in sorted(events.items()):
            if m in vrule.bumpers or m == "__init__":
                continue
            if vrule.attr in ev.writes:
                out.append(
                    _finding(
                        "ST304",
                        f"{spec.cls}.{m} writes version counter {vrule.attr} "
                        "outside the blessed bumpers "
                        f"({', '.join(sorted(vrule.bumpers))})",
                        rel,
                        ev.writes[vrule.attr],
                    )
                )

    # -- caches (ST300 missing invalidation, ST301 unguarded/unaudited reads,
    #    ST304 rogue writes) --
    for crule in spec.caches:
        check_attr(crule.attr, "cached artifact")
        declared = (
            crule.invalidators
            | crule.readers
            | crule.writers
            | crule.exempt
            | {"__init__"}
        )
        check_named(
            crule.invalidators | crule.readers | crule.writers | crule.exempt,
            f"cache rule for {crule.attr}",
        )
        for m in sorted(crule.invalidators):
            fn = methods.get(m)
            if fn is not None and crule.attr not in events[m].writes:
                out.append(
                    _finding(
                        "ST300",
                        f"{spec.cls}.{m} mutates the store without "
                        f"invalidating cached {crule.attr} — subsequent reads "
                        "would see a stale artifact",
                        rel,
                        getattr(fn, "lineno", None),
                    )
                )
        for m in sorted(crule.readers):
            fn = methods.get(m)
            if fn is None:
                continue
            guarded = (
                _mentions_guard(fn, crule.guard)
                if crule.guard is not None
                else _has_none_guard(fn)
            )
            if not guarded:
                what = (
                    f"staleness guard {crule.guard}"
                    if crule.guard is not None
                    else "an is-None rebuild guard"
                )
                out.append(
                    _finding(
                        "ST301",
                        f"{spec.cls}.{m} reads cached {crule.attr} without "
                        f"consulting {what}",
                        rel,
                        getattr(fn, "lineno", None),
                    )
                )
        for m, ev in sorted(events.items()):
            if m in declared:
                continue
            if crule.attr in ev.writes:
                out.append(
                    _finding(
                        "ST304",
                        f"{spec.cls}.{m} writes cached {crule.attr} outside "
                        "the audited writers "
                        f"({', '.join(sorted(crule.writers))})",
                        rel,
                        ev.writes[crule.attr],
                    )
                )
            elif crule.attr in ev.reads or crule.attr in ev.flows:
                line = ev.reads.get(crule.attr, ev.flows.get(crule.attr))
                out.append(
                    _finding(
                        "ST301",
                        f"{spec.cls}.{m} reads cached {crule.attr} outside "
                        "the audited readers "
                        f"({', '.join(sorted(crule.readers))}) — the read is "
                        "not covered by a staleness guard",
                        rel,
                        line,
                    )
                )

    # -- tombstones (ST302) --
    for trule in spec.tombstones:
        check_attr(trule.attr, "tombstone store")
        check_named(trule.delete_paths, f"delete paths of {trule.attr}")
        for m, ev in sorted(events.items()):
            if m in trule.delete_paths or m == "__init__":
                continue
            if trule.attr in ev.writes or trule.attr in ev.flows:
                line = ev.writes.get(trule.attr, ev.flows.get(trule.attr))
                out.append(
                    _finding(
                        "ST302",
                        f"{spec.cls}.{m} writes tombstone store {trule.attr} "
                        "outside the blessed delete paths "
                        f"({', '.join(sorted(trule.delete_paths))})",
                        rel,
                        line,
                    )
                )

    # -- raw state (ST304), incl. setattr escape hatches --
    all_writers: set[str] = {"__init__"}
    for srule in spec.state:
        all_writers.update(srule.writers)
    for srule in spec.state:
        check_attr(srule.attr, "state column")
        check_named(srule.writers, f"writers of {srule.attr}")
        for m, ev in sorted(events.items()):
            if m in srule.writers or m == "__init__":
                continue
            if srule.attr in ev.writes:
                out.append(
                    _finding(
                        "ST304",
                        f"{spec.cls}.{m} writes {srule.attr} bypassing the "
                        "mutation API (blessed writers: "
                        f"{', '.join(sorted(srule.writers))})",
                        rel,
                        ev.writes[srule.attr],
                    )
                )
    for m, ev in sorted(events.items()):
        if ev.dyn_write is not None and m not in all_writers:
            out.append(
                _finding(
                    "ST304",
                    f"{spec.cls}.{m} uses setattr(self, ...) outside the "
                    "blessed writers — dynamic writes bypass the dataflow "
                    "audit",
                    rel,
                    ev.dyn_write,
                )
            )
    return out


def _check_stripes(
    rule: StripeRule, tree: ast.Module, rel: str
) -> list[Finding]:
    out: list[Finding] = []
    seen: set[str] = set()
    for qual, line in _stripe_sites(tree):
        seen.add(qual)
        if qual not in rule.allowed:
            out.append(
                _finding(
                    "ST303",
                    "stripe-id arithmetic (base + j*k + node_id) outside "
                    f"PartitionDictionary: found in {qual or '<module>'} "
                    "— fresh ids must be minted through the dictionary",
                    rel,
                    line,
                )
            )
    index = _index_functions(tree)
    for qual in sorted(rule.allowed - seen):
        if qual not in index:
            out.append(
                _finding(
                    "ST305",
                    f"allowed stripe site {qual} no longer exists in "
                    f"{rule.module} — the spec drifted from the code",
                    rel,
                )
            )
    return out


def _protected_attrs(specs: Sequence[StoreSpec]) -> frozenset[str]:
    attrs: set[str] = set()
    for spec in specs:
        attrs.update(r.attr for r in spec.state)
        attrs.update(r.attr for r in spec.caches)
        attrs.update(r.attr for r in spec.versions)
        attrs.update(r.attr for r in spec.tombstones)
    # Public id columns are legitimately *read* everywhere and written by
    # sibling value classes (e.g. the wire messages own their own s_ids);
    # the foreign-write scan only polices private names.
    return frozenset(a for a in attrs if a.startswith("_"))


def _check_foreign_writes(
    tree: ast.Module, rel: str, protected: frozenset[str]
) -> list[Finding]:
    """Writes to protected private attrs through a non-``self`` receiver."""
    out: list[Finding] = []

    def foreign(node: ast.expr) -> str | None:
        """``attr`` when node is ``<recv>.<protected>`` with recv != self."""
        if not isinstance(node, ast.Attribute) or node.attr not in protected:
            return None
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return None
        return node.attr

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, f"{prefix}{child.name}.")
                continue
            if isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
                continue
            targets: Sequence[ast.expr] = ()
            if isinstance(child, ast.Assign):
                targets = child.targets
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = (child.target,)
            elif isinstance(child, ast.Delete):
                targets = child.targets
            for t in targets:
                nodes: list[ast.expr] = [t]
                if isinstance(t, (ast.Tuple, ast.List)):
                    nodes = list(t.elts)
                for n in nodes:
                    tgt = n.value if isinstance(n, ast.Subscript) else n
                    attr = foreign(tgt)
                    if attr is not None:
                        out.append(
                            _finding(
                                "ST304",
                                f"{prefix.rstrip('.') or '<module>'} writes "
                                f"store-private {attr} of a foreign object — "
                                "mutations must go through the store's API",
                                rel,
                                n.lineno,
                            )
                        )
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _MUTATING_CALLS
            ):
                attr = foreign(child.func.value)
                if attr is not None:
                    out.append(
                        _finding(
                            "ST304",
                            f"{prefix.rstrip('.') or '<module>'} calls "
                            f".{child.func.attr}() on store-private {attr} of "
                            "a foreign object — mutations must go through "
                            "the store's API",
                            rel,
                            child.lineno,
                        )
                    )
            visit(child, prefix)

    visit(tree, "")
    return out


# -- entry points --------------------------------------------------------------


def verify_stores(
    specs: Sequence[StoreSpec] = STORE_SPECS,
    stripe_rules: Sequence[StripeRule] = STRIPE_RULES,
    sources: Mapping[str, str] | None = None,
) -> list[Finding]:
    """Run every store-invariant check; returns findings (empty == clean).

    ``sources`` overrides module source text by dotted name — the hook the
    drift tests use to verify that re-introducing a missing invalidation
    or a rogue tombstone write is actually caught.
    """
    findings: list[Finding] = []
    protected = _protected_attrs(specs)
    modules = (
        {s.module for s in specs}
        | {r.module for r in stripe_rules}
        | set(CONSUMER_MODULES)
    )
    trees: dict[str, tuple[ast.Module, str]] = {}
    for module in sorted(modules):
        rel = module.replace(".", "/") + ".py"
        try:
            text = module_source(module, sources)
            trees[module] = (ast.parse(text), rel)
        except (OSError, SyntaxError) as exc:
            findings.append(
                _finding(
                    "ST305",
                    f"cannot load module {module} for verification: {exc}",
                    rel,
                )
            )
    for spec in specs:
        if spec.module in trees:
            tree, rel = trees[spec.module]
            findings.extend(_check_store(spec, tree, rel))
    for rule in stripe_rules:
        if rule.module in trees:
            tree, rel = trees[rule.module]
            findings.extend(_check_stripes(rule, tree, rel))
    store_modules = {s.module for s in specs}
    for module, (tree, rel) in sorted(trees.items()):
        if module not in store_modules:
            findings.extend(_check_foreign_writes(tree, rel, protected))
    return findings


def store_spec_table(specs: Sequence[StoreSpec] = STORE_SPECS) -> str:
    """The store specs as markdown (for docs and ``--store-spec``)."""
    lines = [
        "| store | state (writers) | caches (guard) | tombstones | version |",
        "|---|---|---|---|---|",
    ]
    for spec in specs:
        state = "; ".join(
            f"{r.attr} ({', '.join(sorted(r.writers))})" for r in spec.state
        )
        caches = "; ".join(
            f"{r.attr} ({r.guard or 'is-None'})" for r in spec.caches
        )
        tombs = "; ".join(
            f"{r.attr} ({', '.join(sorted(r.delete_paths))})"
            for r in spec.tombstones
        )
        versions = "; ".join(
            f"{r.attr} ({', '.join(sorted(r.bumpers))})" for r in spec.versions
        )
        lines.append(
            f"| {spec.cls} | {state or '-'} | {caches or '-'} | "
            f"{tombs or '-'} | {versions or '-'} |"
        )
    return "\n".join(lines)
