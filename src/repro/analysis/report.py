"""Findings, reports, and the allowlist — the common currency of every pass.

Each static-analysis pass (:mod:`repro.analysis.protocol`,
:mod:`repro.analysis.lint`, the rule gate behind
:mod:`repro.analysis.preflight`) emits :class:`Finding` records; a run
collects them into an :class:`AnalysisReport` that renders as text for
humans or JSON for CI artifacts.

Suppression is explicit and audited: an allowlist file maps
``(code, path-glob)`` pairs to a *mandatory* one-line justification —
an entry without one is a parse error, so "silenced because it was
noisy" cannot happen silently.  Allowlist format, one entry per line::

    # comment
    CX101  src/repro/legacy/spool.py  -- poll loop predates the supervisor

i.e. ``<code>  <path glob>  -- <justification>``.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Finding:
    """One defect reported by one pass.

    >>> f = Finding("CX102", "bare except", path="src/x.py", line=3)
    >>> f.format()
    'src/x.py:3: CX102 bare except'
    """

    code: str
    message: str
    path: str = "<spec>"
    line: int = 0
    pass_name: str = ""
    severity: str = "error"

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "pass": self.pass_name,
            "severity": self.severity,
        }


class AllowlistError(ValueError):
    """A malformed allowlist line (most often: missing justification)."""


@dataclass(frozen=True)
class AllowlistEntry:
    """One audited suppression: a finding code, a path glob, and why.

    >>> e = AllowlistEntry("CX101", "src/repro/legacy/*.py", "pre-supervisor")
    >>> e.matches(Finding("CX101", "m", path="src/repro/legacy/spool.py"))
    True
    >>> e.matches(Finding("CX102", "m", path="src/repro/legacy/spool.py"))
    False
    """

    code: str
    pattern: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        if self.code != "*" and self.code != finding.code:
            return False
        path = finding.path.replace("\\", "/")
        return fnmatch.fnmatch(path, self.pattern) or path.endswith(
            "/" + self.pattern
        )


def parse_allowlist(text: str, source: str = "<allowlist>") -> list[AllowlistEntry]:
    """Parse the allowlist format; every entry must carry a justification."""
    entries: list[AllowlistEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, sep, justification = line.partition("--")
        justification = justification.strip()
        if not sep or not justification:
            raise AllowlistError(
                f"{source}:{lineno}: allowlist entry lacks a '-- justification' "
                f"(suppression without a recorded reason is not allowed): {line!r}"
            )
        parts = head.split()
        if len(parts) != 2:
            raise AllowlistError(
                f"{source}:{lineno}: expected '<code> <path-glob> -- <why>', "
                f"got {line!r}"
            )
        entries.append(AllowlistEntry(parts[0], parts[1], justification))
    return entries


def load_allowlist(path: str | Path | None) -> list[AllowlistEntry]:
    """Load an allowlist file; a missing/None path is an empty allowlist."""
    if path is None:
        return []
    p = Path(path)
    if not p.exists():
        return []
    return parse_allowlist(p.read_text(encoding="utf-8"), source=str(p))


@dataclass
class AnalysisReport:
    """Everything one analysis run produced, allowlist already applied."""

    findings: list[Finding] = field(default_factory=list)
    #: ``(finding, entry)`` pairs silenced by the allowlist — still visible
    #: in the JSON artifact, so suppressions are reviewable in CI.
    suppressed: list[tuple[Finding, AllowlistEntry]] = field(default_factory=list)
    passes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def extend(
        self, findings: Iterable[Finding], allowlist: Sequence[AllowlistEntry] = ()
    ) -> None:
        """Fold a pass's findings in, routing allowlisted ones aside."""
        for finding in findings:
            entry = next((e for e in allowlist if e.matches(finding)), None)
            if entry is not None:
                self.suppressed.append((finding, entry))
            else:
                self.findings.append(finding)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return out

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "passes": list(self.passes),
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                {
                    "finding": f.to_dict(),
                    "pattern": e.pattern,
                    "justification": e.justification,
                }
                for f, e in self.suppressed
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.format())
        for f, e in self.suppressed:
            lines.append(f"{f.format()}  [allowlisted: {e.justification}]")
        status = "OK" if self.ok else "FAIL"
        lines.append(
            f"{status}: {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} allowlisted, "
            f"passes: {', '.join(self.passes) or '-'}"
        )
        return "\n".join(lines)
