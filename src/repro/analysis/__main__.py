"""``python -m repro.analysis`` — run every static pass over the tree.

Exit status 0 when no unsuppressed error-severity findings remain,
1 otherwise, 2 on usage errors (e.g. a malformed allowlist).  The CI
``analysis`` job runs ``--format=json --output analysis-report.json``
and uploads the report as an artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import run_all, spec_table, store_spec_table
from repro.analysis.report import AllowlistError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Protocol verifier + concurrency lint for the parallel runtime.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--root", default=None, help="path findings are reported relative to"
    )
    parser.add_argument(
        "--allowlist",
        default=None,
        help="allowlist file (default: the repo's .analysis-allowlist if found)",
    )
    parser.add_argument(
        "--output", default=None, help="write the report here as well as stdout"
    )
    parser.add_argument(
        "--spec",
        action="store_true",
        help="print the protocol spec table (markdown) and exit",
    )
    parser.add_argument(
        "--store-spec",
        action="store_true",
        help="print the store-invariant spec table (markdown) and exit",
    )
    args = parser.parse_args(argv)

    if args.spec:
        print(spec_table())
        return 0
    if args.store_spec:
        print(store_spec_table())
        return 0

    try:
        report = run_all(
            paths=args.paths or None,
            root=args.root,
            allowlist_path=args.allowlist,
        )
    except AllowlistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rendered = report.to_json() if args.fmt == "json" else report.format_text()
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
