"""Runtime store sanitizer (SAN): sampled dynamic invariant checks.

The static dataflow pass (:mod:`repro.analysis.dataflow`, ST300-series)
proves the *code* follows the store discipline; this module checks the
*data* at runtime.  It is the dynamic half of the two-sided contract: an
opt-in layer that wraps the id-native stores with sampled checks of the
invariants the closure silently relies on —

* sorted-view monotonicity and permutation validity after every rebuild
  (``sorted-view-*``),
* run/block key ordering, per-block row counts and sample-key agreement
  across the LSM tiers (``run-*``), plus cross-tier and cross-run dedup
  (``lsm-*``),
* tombstone/resurrection consistency after ``add_rows``/``delete_rows``
  (``insert-visibility``/``delete-visibility``/``tombstone-*``),
* stripe disjointness of minted term ids across workers and epochs
  (``stripe-*``), and
* Safra ledger conservation — sent == received + outstanding has drained
  — at async termination (``ledger-*``).

A violated invariant raises a typed :class:`SanitizerError` naming the
store, the invariant, and the offending rows.  Enable with
``REPRO_SANITIZE=1`` in the environment or ``sanitize=True`` through
:class:`~repro.owl.kb.MaterializedKB`, the parallel driver, or the worker
config — the flag only selects the sanitized store subclasses at
construction time, so the unsanitized hot path carries zero overhead.

Sampling policy: structures at or below ``_SMALL_ROWS`` rows are checked
on every event (the vector ops cost microseconds there); larger ones are
checked with probability ``sample_rate`` (default 1/16) drawn from a
:func:`repro.util.seeding.rng_for` generator, so a failing run replays
deterministically.  ``verify()`` on either store runs the full
(unsampled) sweep — the smoke tests use it directly.

The sanitizer reads store privates but never mutates them; it is listed
in the dataflow pass's consumer-module scan to keep that one-way promise
checked.
"""

from __future__ import annotations

import os
import random
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.rdf.idstore import IdGraph, member_mask, pack_columns
from repro.rdf.runstore import RunStore
from repro.util.seeding import rng_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.parallel.termination import CountingTermination
    from repro.rdf.dictionary import PartitionDictionary
    from repro.rdf.runstore import _OrderIndex, _Run

#: Structures at or below this many rows are checked on every event.
_SMALL_ROWS = 4096

#: Default probability of checking a larger structure per event.
_DEFAULT_RATE = 1.0 / 16.0

#: Rows probed per membership spot-check.
_PROBE_ROWS = 64

ENV_FLAG = "REPRO_SANITIZE"


def sanitize_enabled(explicit: bool | None = None) -> bool:
    """Resolve the sanitizer switch: an explicit ``sanitize=`` argument
    wins; otherwise the ``REPRO_SANITIZE`` environment variable decides
    (so ``REPRO_SANITIZE=1 pytest ...`` needs no call-site changes)."""
    if explicit is not None:
        return explicit
    return os.environ.get(ENV_FLAG, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


class SanitizerError(RuntimeError):
    """A store invariant observed broken at runtime.

    ``store`` names the wrapped instance, ``invariant`` the violated rule
    (e.g. ``sorted-view-monotonic``), ``detail`` the offending rows.
    """

    def __init__(self, store: str, invariant: str, detail: str) -> None:
        self.store = store
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"[{invariant}] {store}: {detail}")


# -- shared primitives ---------------------------------------------------------


def _keys_lt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``a < b`` for packed keys (plain int64 or the
    structured multi-column dtype, whose voids have no ``<`` ufunc)."""
    if a.dtype.names is None:
        return np.asarray(a < b)
    out = np.zeros(a.shape, dtype=bool)
    tie = np.ones(a.shape, dtype=bool)
    for name in a.dtype.names:
        out |= tie & (a[name] < b[name])
        tie &= a[name] == b[name]
    return out


def _keys_eq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.dtype.names is None:
        return np.asarray(a == b)
    out = np.ones(a.shape, dtype=bool)
    for name in a.dtype.names:
        out &= a[name] == b[name]
    return out


def _key_str(keys: np.ndarray, i: int) -> str:
    return str(keys[i].item())


def _check_sorted(store: str, invariant: str, keys: np.ndarray) -> None:
    if len(keys) > 1:
        bad = np.flatnonzero(_keys_lt(keys[1:], keys[:-1]))
        if len(bad):
            i = int(bad[0])
            raise SanitizerError(
                store,
                invariant,
                f"keys out of order at index {i}: "
                f"{_key_str(keys, i)} > {_key_str(keys, i + 1)}",
            )


def _check_permutation(
    store: str, invariant: str, perm: np.ndarray, covered: int
) -> None:
    if len(perm) != covered:
        raise SanitizerError(
            store,
            invariant,
            f"permutation has {len(perm)} entries for {covered} covered rows",
        )
    if covered == 0:
        return
    if int(perm.min()) < 0 or int(perm.max()) >= covered:
        raise SanitizerError(
            store,
            invariant,
            f"permutation entries outside [0, {covered}): "
            f"min={int(perm.min())} max={int(perm.max())}",
        )
    seen = np.zeros(covered, dtype=bool)
    seen[perm] = True
    if not bool(seen.all()):
        missing = int(np.flatnonzero(~seen)[0])
        raise SanitizerError(
            store,
            invariant,
            f"permutation is not a bijection: row {missing} never mapped "
            "(a duplicate entry shadows it)",
        )


def _sample_rows(rng: random.Random, n: int, want: int) -> np.ndarray:
    """Up to ``want`` distinct row indices into ``n`` rows (sorted)."""
    if n <= want:
        return np.arange(n)
    return np.asarray(sorted(rng.sample(range(n), want)), dtype=np.intp)


# -- sanitized IdGraph ---------------------------------------------------------


class SanitizedIdGraph(IdGraph):
    """:class:`IdGraph` with sampled runtime invariant checks.

    Drop-in: same constructor plus keyword-only ``label``/``seed``/
    ``sample_rate``.  Checks fire after rebuilds, probes, and mutations;
    :meth:`verify` runs the full unsampled sweep.
    """

    def __init__(
        self,
        capacity: int = 0,
        tail_threshold: int | None = None,
        *,
        label: str = "IdGraph",
        seed: int = 0,
        sample_rate: float | None = None,
    ) -> None:
        super().__init__(capacity, tail_threshold)
        self._san_label = label
        self._san_rng = rng_for(seed, "sanitize", label)
        self._san_rate = _DEFAULT_RATE if sample_rate is None else sample_rate

    def _san_hit(self, size: int) -> bool:
        if size <= _SMALL_ROWS or self._san_rate >= 1.0:
            return True
        return bool(self._san_rng.random() < self._san_rate)

    def _rebuild(
        self, positions: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray, int]:
        cached = super()._rebuild(positions)
        keys, perm, covered = cached
        if self._san_hit(len(keys)):
            _check_sorted(self._san_label, "sorted-view-monotonic", keys)
            _check_permutation(
                self._san_label, "sorted-view-permutation", perm, covered
            )
        return cached

    def _view_parts(
        self, positions: tuple[int, ...]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        parts = super()._view_parts(positions)
        n = self._n
        for keys, rows in parts:
            if not self._san_hit(len(keys)):
                continue
            _check_sorted(self._san_label, "sorted-view-monotonic", keys)
            if len(rows) and (int(rows.min()) < 0 or int(rows.max()) >= n):
                raise SanitizerError(
                    self._san_label,
                    "sorted-view-rows",
                    f"view over positions {positions} maps to rows outside "
                    f"[0, {n}): min={int(rows.min())} max={int(rows.max())}",
                )
        return parts

    def add_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        added = super().add_rows(s, p, o)
        n_added = len(added[0])
        if n_added and self._san_hit(n_added):
            take = _sample_rows(self._san_rng, n_added, _PROBE_ROWS)
            present = self.contains_rows(
                added[0][take], added[1][take], added[2][take]
            )
            if not bool(present.all()):
                raise SanitizerError(
                    self._san_label,
                    "insert-visibility",
                    f"{int((~present).sum())} of {len(take)} freshly added "
                    "rows are not visible to membership probes",
                )
        return added

    def delete_rows(self, s: np.ndarray, p: np.ndarray, o: np.ndarray) -> int:
        removed = super().delete_rows(s, p, o)
        if removed and len(s) and self._san_hit(len(s)):
            take = _sample_rows(self._san_rng, len(s), _PROBE_ROWS)
            still = self.contains_rows(s[take], p[take], o[take])
            if bool(still.any()):
                raise SanitizerError(
                    self._san_label,
                    "delete-visibility",
                    f"{int(still.sum())} of {len(take)} deleted rows are "
                    "still visible to membership probes",
                )
        return removed

    def verify(self) -> None:
        """Full (unsampled) sweep over every cached view."""
        n = self._n
        for positions, (keys, perm, covered) in self._views.items():
            _check_sorted(
                self._san_label, "sorted-view-monotonic", keys
            )
            _check_permutation(
                self._san_label, "sorted-view-permutation", perm, covered
            )
            if covered > n:
                raise SanitizerError(
                    self._san_label,
                    "sorted-view-coverage",
                    f"view over positions {positions} covers {covered} rows "
                    f"but the store holds {n}",
                )
        for positions, (tkeys, rows, covered, vn) in self._tail_views.items():
            _check_sorted(self._san_label, "sorted-view-monotonic", tkeys)
            if vn > n or covered > vn:
                raise SanitizerError(
                    self._san_label,
                    "sorted-view-coverage",
                    f"tail view over positions {positions} claims "
                    f"(covered={covered}, n={vn}) but the store holds {n}",
                )
            if len(rows) and (
                int(rows.min()) < covered or int(rows.max()) >= vn
            ):
                raise SanitizerError(
                    self._san_label,
                    "sorted-view-rows",
                    f"tail view over positions {positions} maps outside "
                    f"[{covered}, {vn})",
                )


# -- sanitized RunStore --------------------------------------------------------


class SanitizedRunStore(RunStore):
    """:class:`RunStore` with sampled runtime invariant checks.

    Seals check the newest run's block structure and the tail/sealed
    dedup; mutations spot-check visibility and tombstone consistency;
    :meth:`verify` decodes every run for the full sweep.
    """

    def __init__(
        self,
        memory_budget_bytes: int | None = None,
        tail_rows: int | None = None,
        *,
        label: str = "RunStore",
        seed: int = 0,
        sample_rate: float | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(memory_budget_bytes, tail_rows, **kwargs)
        self._san_label = label
        self._san_rng = rng_for(seed, "sanitize", label)
        self._san_rate = _DEFAULT_RATE if sample_rate is None else sample_rate

    def _san_hit(self, size: int) -> bool:
        if size <= _SMALL_ROWS or self._san_rate >= 1.0:
            return True
        return bool(self._san_rng.random() < self._san_rate)

    def _seal(self) -> None:
        sealing = len(self._tail) > 0
        super()._seal()
        if sealing and self._runs:
            newest = self._runs[-1]
            if self._san_hit(newest.n_rows):
                self._check_run(newest.canonical, sample_blocks=True)
                self._check_tier_overlap(newest)

    def add_rows(
        self, s: np.ndarray, p: np.ndarray, o: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        added = super().add_rows(s, p, o)
        n_added = len(added[0])
        if n_added and self._san_hit(n_added):
            take = _sample_rows(self._san_rng, n_added, _PROBE_ROWS)
            ts, tp, to = added[0][take], added[1][take], added[2][take]
            present = self.contains_rows(ts, tp, to)
            if not bool(present.all()):
                raise SanitizerError(
                    self._san_label,
                    "insert-visibility",
                    f"{int((~present).sum())} of {len(take)} freshly added "
                    "rows are not visible (a resurrection may have failed "
                    "to consume its tombstone)",
                )
            if len(self._tombs):
                dead = self._tombs.contains_rows(ts, tp, to)
                if bool(dead.any()):
                    raise SanitizerError(
                        self._san_label,
                        "tombstone-resurrection",
                        f"{int(dead.sum())} of {len(take)} re-added rows are "
                        "still tombstoned",
                    )
        return added

    def delete_rows(self, s: np.ndarray, p: np.ndarray, o: np.ndarray) -> int:
        removed = super().delete_rows(s, p, o)
        if removed and len(s) and self._san_hit(len(s)):
            take = _sample_rows(self._san_rng, len(s), _PROBE_ROWS)
            still = self.contains_rows(s[take], p[take], o[take])
            if bool(still.any()):
                raise SanitizerError(
                    self._san_label,
                    "delete-visibility",
                    f"{int(still.sum())} of {len(take)} deleted rows are "
                    "still visible to membership probes",
                )
            self._check_tombstones_sampled()
        return removed

    # -- check bodies --

    def _check_run(self, idx: "_OrderIndex", sample_blocks: bool) -> None:
        _check_sorted(self._san_label, "run-sample-order", idx.samples)
        n_blocks = idx.n_blocks
        if n_blocks == 0:
            return
        if sample_blocks:
            blocks = {0, n_blocks - 1}
            if n_blocks > 2:
                blocks.add(int(self._san_rng.randrange(n_blocks)))
        else:
            blocks = set(range(n_blocks))
        prev_block: int | None = None
        prev_last: np.ndarray | None = None
        for b in sorted(blocks):
            cols = idx.decode_block(b)
            keys = pack_columns(cols)
            if len(keys) != int(idx.row_counts[b]):
                raise SanitizerError(
                    self._san_label,
                    "run-block-rows",
                    f"run {idx.serial} block {b} decoded {len(keys)} rows, "
                    f"metadata says {int(idx.row_counts[b])}",
                )
            if len(keys) == 0:
                continue
            if len(keys) > 1:
                viol = _keys_lt(keys[1:], keys[:-1]) | _keys_eq(
                    keys[1:], keys[:-1]
                )
                if bool(viol.any()):
                    i = int(np.flatnonzero(viol)[0])
                    raise SanitizerError(
                        self._san_label,
                        "run-key-order",
                        f"run {idx.serial} block {b} keys not strictly "
                        f"increasing at index {i} (duplicate or disorder)",
                    )
            if not bool(_keys_eq(keys[:1], idx.samples[b : b + 1])[0]):
                raise SanitizerError(
                    self._san_label,
                    "run-sample-drift",
                    f"run {idx.serial} block {b} first key "
                    f"{_key_str(keys, 0)} != sample key "
                    f"{_key_str(idx.samples, b)}",
                )
            if (
                prev_block == b - 1
                and prev_last is not None
                and not bool(_keys_lt(prev_last, keys[:1])[0])
            ):
                raise SanitizerError(
                    self._san_label,
                    "run-key-order",
                    f"run {idx.serial} block {b} starts at "
                    f"{_key_str(keys, 0)}, not after block {b - 1}'s last "
                    f"key {_key_str(prev_last, 0)}",
                )
            prev_block, prev_last = b, keys[-1:]

    def _check_tier_overlap(self, run: "_Run") -> None:
        """A sealed run's rows must not also live in the mutable tail."""
        idx = run.canonical
        if idx.n_blocks == 0 or len(self._tail) == 0:
            return
        cols = idx.decode_block(int(self._san_rng.randrange(idx.n_blocks)))
        take = _sample_rows(self._san_rng, len(cols[0]), _PROBE_ROWS)
        in_tail = self._tail.contains_rows(
            cols[0][take], cols[1][take], cols[2][take]
        )
        if bool(in_tail.any()):
            raise SanitizerError(
                self._san_label,
                "lsm-tier-dedup",
                f"{int(in_tail.sum())} of {len(take)} sealed rows from run "
                f"{idx.serial} also live in the tail",
            )

    def _check_tombstones_sampled(self) -> None:
        """Tombstones reference sealed rows only — never tail rows."""
        if len(self._tombs) == 0:
            return
        ts, tp, to = self._tombs.columns()
        take = _sample_rows(self._san_rng, len(ts), _PROBE_ROWS)
        in_tail = self._tail.contains_rows(ts[take], tp[take], to[take])
        if bool(in_tail.any()):
            raise SanitizerError(
                self._san_label,
                "tombstone-tail-overlap",
                f"{int(in_tail.sum())} of {len(take)} tombstones shadow "
                "live tail rows (tail deletes must compact physically)",
            )

    def verify(self) -> None:
        """Full (unsampled) sweep: every block of every run decoded."""
        sealed_parts: list[np.ndarray] = []
        for run in self._runs:
            idx = run.canonical
            self._check_run(idx, sample_blocks=False)
            for b in range(idx.n_blocks):
                sealed_parts.append(pack_columns(idx.decode_block(b)))
        if sealed_parts:
            sealed = np.sort(np.concatenate(sealed_parts))
        else:
            sealed = pack_columns(tuple(self._tail.columns())[:3])[:0]
        n_dupes = len(sealed) - len(np.unique(sealed))
        if n_dupes:
            raise SanitizerError(
                self._san_label,
                "lsm-cross-run-dedup",
                f"{n_dupes} duplicate rows across sealed runs",
            )
        tail_keys = np.sort(pack_columns(self._tail.columns()))
        if len(tail_keys) and len(sealed):
            overlap = member_mask(sealed, tail_keys)
            if bool(overlap.any()):
                raise SanitizerError(
                    self._san_label,
                    "lsm-tier-dedup",
                    f"{int(overlap.sum())} rows live in both the tail and "
                    "a sealed run",
                )
        tomb_keys = pack_columns(self._tombs.columns())
        if len(tomb_keys):
            orphans = ~member_mask(sealed, tomb_keys)
            if bool(orphans.any()):
                raise SanitizerError(
                    self._san_label,
                    "tombstone-orphan",
                    f"{int(orphans.sum())} tombstones reference rows absent "
                    "from every sealed run",
                )
            in_tail = member_mask(tail_keys, tomb_keys)
            if bool(in_tail.any()):
                raise SanitizerError(
                    self._san_label,
                    "tombstone-tail-overlap",
                    f"{int(in_tail.sum())} tombstones shadow live tail rows",
                )


# -- protocol-level checks -----------------------------------------------------


def check_stripe_disjointness(
    dictionaries: Sequence["PartitionDictionary"],
) -> None:
    """Minted term ids must be disjoint across workers and epochs.

    Each :class:`PartitionDictionary` mints ``base_size + j*k + node_id``;
    the check replays that formula per dictionary and verifies the mint
    sets never collide, every minted id decodes, and the decode
    round-trips through the encode map.
    """
    seen: dict[int, int] = {}
    for i, d in enumerate(dictionaries):
        if d.node_id < 0 or d.node_id >= d.k:
            raise SanitizerError(
                "PartitionDictionary",
                "stripe-config",
                f"dictionary {i} has node_id {d.node_id} outside "
                f"[0, {d.k}) — its stripe overlaps a sibling's",
            )
        for j in range(d._minted):
            tid = d._base_size + j * d.k + d.node_id
            if tid in seen:
                raise SanitizerError(
                    "PartitionDictionary",
                    "stripe-disjoint",
                    f"id {tid} minted by both dictionary {seen[tid]} and "
                    f"dictionary {i}",
                )
            seen[tid] = i
            term = d._by_id.get(tid)
            if term is None:
                raise SanitizerError(
                    "PartitionDictionary",
                    "stripe-mint",
                    f"minted id {tid} missing from dictionary {i}'s "
                    "decode map",
                )
            if d._to_id.get(term) != tid:
                raise SanitizerError(
                    "PartitionDictionary",
                    "stripe-roundtrip",
                    f"minted id {tid} decodes to {term!r} but that term "
                    f"encodes to {d._to_id.get(term)!r} in dictionary {i}",
                )


def check_ledger(det: "CountingTermination") -> None:
    """Safra ledger conservation at termination: every message the master
    forwarded has been acknowledged as consumed, nothing is outstanding,
    and no worker reports more consumption than was ever sent to it."""
    for node in range(det.k):
        forwarded, consumed = det.counts(node)
        if consumed > forwarded:
            raise SanitizerError(
                "CountingTermination",
                "ledger-negative",
                f"node {node} acknowledged {consumed} messages but only "
                f"{forwarded} were forwarded to it",
            )
    if not det.quiescent():
        raise SanitizerError(
            "CountingTermination",
            "ledger-conservation",
            f"termination declared with {det.in_flight()} messages in "
            f"flight (forwarded={det.forwarded} consumed={det.consumed})",
        )


# -- store factory -------------------------------------------------------------


def make_store(
    store: str | None,
    *,
    capacity: int = 0,
    memory_budget_bytes: int | None = None,
    label: str = "store",
    seed: int = 0,
) -> "IdGraph | RunStore":
    """Sanitized counterpart of the engine's store factory: a
    :class:`SanitizedRunStore` for ``store == "run"``, else a
    :class:`SanitizedIdGraph` (both are :class:`IdGraph`-compatible)."""
    if store == "run":
        return SanitizedRunStore(
            memory_budget_bytes=memory_budget_bytes, label=label, seed=seed
        )
    return SanitizedIdGraph(capacity=capacity, label=label, seed=seed)
