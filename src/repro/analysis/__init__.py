"""Static analysis for the parallel runtime: one import surface.

Four passes (see DESIGN.md §10 and §14):

* :mod:`repro.analysis.protocol` — the async control protocol as a
  declarative spec, statically verified against the backend sources.
* :mod:`repro.analysis.lint` — the PR-3 concurrency bug classes as AST
  rules plus the behavioral spawn-safety probe.
* :mod:`repro.analysis.dataflow` — the store-invariant contract
  (ST300-series): mutation/invalidation discipline of the id-native
  stores, tombstone paths, stripe minting.  Its runtime twin is
  :mod:`repro.analysis.sanitize` (``REPRO_SANITIZE=1``).
* :mod:`repro.analysis.preflight` — the run-time gate
  (``materialize(..., preflight=...)``) folding the rule-partitionability
  check and the passes above.

The rule-analysis helpers from :mod:`repro.datalog.analysis` are
re-exported here so gate callers need a single import.

Run it all from the command line::

    PYTHONPATH=src python -m repro.analysis --format=json
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.dataflow import (
    STORE_SPECS,
    STRIPE_RULES,
    CacheRule,
    StateRule,
    StoreSpec,
    StripeRule,
    TombstoneRule,
    VersionRule,
    store_spec_table,
    verify_stores,
)
from repro.analysis.lint import (
    DEFAULT_CONFIG,
    LintConfig,
    check_spawn_safety,
    lint_paths,
)
from repro.analysis.sanitize import (
    SanitizedIdGraph,
    SanitizedRunStore,
    SanitizerError,
    check_ledger,
    check_stripe_disjointness,
    sanitize_enabled,
)
from repro.analysis.preflight import (
    PreflightError,
    PreflightWarning,
    default_allowlist_path,
    run_preflight,
)
from repro.analysis.protocol import (
    ASYNC_PROTOCOL,
    HandlerSpec,
    LedgerRule,
    MessageSpec,
    ProtocolSpec,
    spec_table,
    verify_protocol,
)
from repro.analysis.report import (
    AllowlistEntry,
    AllowlistError,
    AnalysisReport,
    Finding,
    load_allowlist,
    parse_allowlist,
)
from repro.datalog.analysis import (
    JoinClass,
    PartitionabilityDiagnostic,
    check_data_partitionable,
    classify_rule,
    is_single_join,
    join_variables,
    partitionability_diagnostics,
)

__all__ = [
    "ASYNC_PROTOCOL",
    "AllowlistEntry",
    "AllowlistError",
    "AnalysisReport",
    "CacheRule",
    "DEFAULT_CONFIG",
    "Finding",
    "HandlerSpec",
    "JoinClass",
    "LedgerRule",
    "LintConfig",
    "MessageSpec",
    "PartitionabilityDiagnostic",
    "PreflightError",
    "PreflightWarning",
    "ProtocolSpec",
    "STORE_SPECS",
    "STRIPE_RULES",
    "SanitizedIdGraph",
    "SanitizedRunStore",
    "SanitizerError",
    "StateRule",
    "StoreSpec",
    "StripeRule",
    "TombstoneRule",
    "VersionRule",
    "check_data_partitionable",
    "check_ledger",
    "check_spawn_safety",
    "check_stripe_disjointness",
    "classify_rule",
    "default_allowlist_path",
    "is_single_join",
    "join_variables",
    "lint_paths",
    "load_allowlist",
    "parse_allowlist",
    "partitionability_diagnostics",
    "run_all",
    "run_preflight",
    "sanitize_enabled",
    "spec_table",
    "store_spec_table",
    "verify_protocol",
    "verify_stores",
]


def run_all(
    paths: Iterable[str | Path] | None = None,
    root: str | Path | None = None,
    allowlist_path: str | Path | None = None,
) -> AnalysisReport:
    """Run every pass over a source tree and return the combined report.

    With no arguments, scans the installed ``repro`` package (i.e. the
    repo's own ``src/repro`` when run from a checkout) and applies the
    repo's ``.analysis-allowlist`` if present.  This is what
    ``python -m repro.analysis`` and the CI ``analysis`` job run.
    """
    if root is None or paths is None:
        import repro

        pkg_dir = Path(repro.__file__).parent
        if root is None:
            root = pkg_dir.parent
        if paths is None:
            paths = [pkg_dir]
    if allowlist_path is None:
        allowlist_path = default_allowlist_path()
    allowlist = load_allowlist(allowlist_path)
    report = AnalysisReport()
    report.passes.append("protocol")
    report.extend(verify_protocol(), allowlist)
    report.passes.append("lint")
    report.extend(lint_paths(paths, DEFAULT_CONFIG, root=root), allowlist)
    report.extend(check_spawn_safety(), allowlist)
    report.passes.append("dataflow")
    report.extend(verify_stores(), allowlist)
    return report
