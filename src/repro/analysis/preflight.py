"""Preflight: one gate folding the rule check and the static passes.

Before PR 4, three unrelated mechanisms guarded three invariants: the
driver constructor called ``check_data_partitionable`` (once, at build
time), the protocol obligations were enforced only by the fault-injection
suite, and the concurrency conventions only by review.  ``run_preflight``
folds them into a single gate the driver exposes as
``materialize(..., preflight="strict"|"warn")``:

* **rules** — the data-partitioning soundness gate, now with atom-level
  diagnostics (:func:`repro.datalog.analysis.partitionability_diagnostics`).
  Re-checked at run time, not just construction: a rule set swapped or
  mutated after ``__init__`` would otherwise produce a silently wrong
  fixpoint.
* **protocol** — :func:`repro.analysis.protocol.verify_protocol` over the
  installed backend sources: a spec drift fails fast instead of hanging a
  run.
* **lint** — :func:`repro.analysis.lint.lint_paths` over the
  ``repro.parallel`` package plus the spawn-safety probe.
* **dataflow** — :func:`repro.analysis.dataflow.verify_stores` over the
  store sources: the ST300-series store-invariant contract (mutation/
  invalidation discipline, tombstone paths, stripe minting).

``mode="strict"`` raises :class:`PreflightError` (typed: carries the full
:class:`~repro.analysis.report.AnalysisReport`); ``"warn"`` emits a
:class:`PreflightWarning`; ``"off"`` skips everything.  Protocol and lint
results are cached per process — sources do not change under a running
interpreter — so repeated ``materialize`` calls pay the AST cost once.
"""

from __future__ import annotations

import warnings
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.dataflow import verify_stores
from repro.analysis.lint import (
    DEFAULT_CONFIG,
    check_spawn_safety,
    lint_paths,
)
from repro.analysis.protocol import ASYNC_PROTOCOL, verify_protocol
from repro.analysis.report import (
    AnalysisReport,
    Finding,
    load_allowlist,
)
from repro.datalog.analysis import partitionability_diagnostics
from repro.datalog.ast import Rule

PASS_NAME = "rules"

MODES = ("strict", "warn", "off")

#: Test hook: a mapping of module name -> source text makes the protocol
#: verifier see *that* code instead of the installed sources (and bypasses
#: the per-process cache).  Never set outside tests.
_SOURCES_OVERRIDE: Mapping[str, str] | None = None


class PreflightError(RuntimeError):
    """Preflight found violations in strict mode.

    Typed: ``report`` carries every finding (code, path, line, message),
    so callers can react to specific classes programmatically.
    """

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        self.codes = tuple(sorted({f.code for f in report.findings}))
        super().__init__(
            "preflight failed with "
            f"{len(report.findings)} finding(s) [{', '.join(self.codes)}]:\n"
            + report.format_text()
        )


class PreflightWarning(UserWarning):
    """Preflight found violations in warn mode."""


def rule_gate_findings(rules: Iterable[Rule]) -> list[Finding]:
    """The partitionability gate as findings (code ``RULES201``)."""
    return [
        Finding(
            "RULES201",
            "rule set is not data-partition-safe: " + diag.format(),
            path="<rules>",
            pass_name=PASS_NAME,
        )
        for diag in partitionability_diagnostics(rules)
    ]


@lru_cache(maxsize=1)
def _cached_protocol_findings() -> tuple[Finding, ...]:
    return tuple(verify_protocol(ASYNC_PROTOCOL))


def _protocol_findings() -> list[Finding]:
    if _SOURCES_OVERRIDE is not None:
        return verify_protocol(ASYNC_PROTOCOL, sources=_SOURCES_OVERRIDE)
    return list(_cached_protocol_findings())


@lru_cache(maxsize=1)
def _cached_dataflow_findings() -> tuple[Finding, ...]:
    return tuple(verify_stores())


def _dataflow_findings() -> list[Finding]:
    if _SOURCES_OVERRIDE is not None:
        return verify_stores(sources=_SOURCES_OVERRIDE)
    return list(_cached_dataflow_findings())


@lru_cache(maxsize=1)
def _cached_runtime_lint_findings() -> tuple[Finding, ...]:
    import repro.parallel

    pkg_file = repro.parallel.__file__
    if pkg_file is None:  # pragma: no cover - namespace packages only
        return ()
    pkg_dir = Path(pkg_file).parent
    root = pkg_dir.parent.parent  # .../src
    findings = lint_paths([pkg_dir], DEFAULT_CONFIG, root=root)
    findings.extend(check_spawn_safety())
    return tuple(findings)


def default_allowlist_path() -> Path | None:
    """The repo's ``.analysis-allowlist``, if running from a checkout."""
    import repro

    if repro.__file__ is None:  # pragma: no cover - namespace packages only
        return None
    for parent in Path(repro.__file__).resolve().parents:
        candidate = parent / ".analysis-allowlist"
        if candidate.exists():
            return candidate
    return None


def run_preflight(
    rules: Sequence[Rule] | None = None,
    mode: str = "strict",
    approach: str = "data",
    allowlist_path: str | Path | None = None,
    passes: Sequence[str] = ("rules", "protocol", "lint", "dataflow"),
) -> AnalysisReport:
    """Run the preflight gate; raise/warn/skip according to ``mode``.

    The rule gate runs only when ``rules`` is given *and*
    ``approach == "data"`` — rule partitioning replicates the full data
    set to every node, so multi-join rules are sound there and must not
    be rejected.
    """
    if mode not in MODES:
        raise ValueError(f"preflight mode must be one of {MODES}, got {mode!r}")
    report = AnalysisReport()
    if mode == "off":
        return report
    allowlist = load_allowlist(
        allowlist_path if allowlist_path is not None else default_allowlist_path()
    )
    if "rules" in passes and rules is not None and approach == "data":
        report.passes.append("rules")
        report.extend(rule_gate_findings(rules), allowlist)
    if "protocol" in passes:
        report.passes.append("protocol")
        report.extend(_protocol_findings(), allowlist)
    if "lint" in passes:
        report.passes.append("lint")
        report.extend(_cached_runtime_lint_findings(), allowlist)
    if "dataflow" in passes:
        report.passes.append("dataflow")
        report.extend(_dataflow_findings(), allowlist)
    if not report.ok:
        if mode == "strict":
            raise PreflightError(report)
        warnings.warn(
            PreflightWarning(
                f"preflight found {len(report.findings)} violation(s):\n"
                + report.format_text()
            ),
            stacklevel=2,
        )
    return report
