"""Concurrency lint: the PR-3 bug classes as machine-checked rules.

The fault-tolerance work (PR 3) fixed, by hand, a family of bugs that the
parallel runtime is structurally prone to re-growing: blocking waits with
no timeout (a dead peer wedges the process forever), classes crossing a
process boundary that do not survive pickling under ``spawn``,
module-level mutable state silently forked into workers, unseeded
randomness making runs irreproducible, and bare ``except`` clauses that
swallow the typed failures the supervisor depends on.  This linter
codifies each class as an AST rule so the regression is a finding, not a
production hang.

Rules (codes ``CX1xx``):

* ``CX101`` **unbounded blocking call** — ``.get()`` on a queue-like
  receiver, ``.join()`` with no arguments, or ``.recv()`` without a
  timeout, outside the blessed supervised wrappers
  (:attr:`LintConfig.blessed`).  The supervisor's own ``get`` polls with
  ``timeout=`` and folds liveness in; everything else must too.
* ``CX102`` **bare except** — ``except:`` or ``except BaseException:``
  anywhere; they catch ``KeyboardInterrupt``/``SystemExit`` and turn a
  worker kill into a zombie.
* ``CX103`` **swallowed broad except** — ``except Exception:`` (or
  broader) whose whole body is ``pass``/``continue``/``...``: the typed
  ``WorkerFailure`` diagnostics cannot surface through it.
* ``CX104`` **module-level mutable state** in spawn-reachable modules
  (:attr:`LintConfig.spawn_scope`): a dict/list/set at module scope is
  copied, not shared, across ``fork``/``spawn`` — reads look fine, writes
  silently diverge per process.
* ``CX105`` **unseeded randomness** — module-global ``random.*`` calls,
  ``random.Random()``/``numpy.random.default_rng()`` with no seed, or
  legacy ``numpy.random.*`` globals: engine and partitioning runs must be
  replayable from a seed (see ``repro.util.seeding``).
* ``CX106`` **spawn-unsafe wire class** — a class that travels on a
  multiprocessing queue fails a pickle round-trip (checked behaviorally
  against :data:`WIRE_EXAMPLES`; e.g. deleting ``Atom.__reduce__``
  breaks the immutability-guarded slot restore).

``CX101``–``CX105`` are purely syntactic.  ``CX106`` instantiates known
wire types and round-trips them through ``pickle`` — the exact property
``spawn`` needs.
"""

from __future__ import annotations

import ast
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis.report import Finding

PASS_NAME = "lint"

#: Receiver names (last dotted component) that make an untimed ``.get()``
#: or ``.recv()`` look like a blocking transport wait rather than a
#: ``dict.get``.  ``.join()`` needs no heuristic: a zero-argument join is
#: suspect on any receiver (``str.join`` always takes the iterable).
_QUEUEISH = re.compile(
    r"(queue|inbox|outbox|mailbox|mbox|channel|chan|pipe|conn|connection|sock|socket)s?$",
    re.IGNORECASE,
)

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict"}
)

_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "seed",
    }
)

_NUMPY_RANDOM_FUNCS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "random_sample",
    }
)


@dataclass(frozen=True)
class LintConfig:
    """What the linter scans and what it exempts.

    ``blessed`` are function qualnames allowed to make untimed blocking
    calls — the supervised wrappers whose *job* is the bounded wait.
    ``spawn_scope`` are path substrings marking modules importable inside
    worker processes, where module-level mutable state is a CX104.
    """

    blessed: frozenset[str] = frozenset(
        {"ProcessSupervisor.get", "shutdown_processes"}
    )
    #: The id-native worker path imports the columnar store and kernels
    #: inside worker processes, so they carry the same CX104 obligations
    #: as the parallel runtime proper.
    spawn_scope: tuple[str, ...] = (
        "repro/parallel/",
        "repro/rdf/idstore",
        "repro/rdf/runstore",
        # The vectorized query kernel runs against worker stores (the
        # distributed fast path imports it inside worker answering).
        "repro/rdf/idquery",
        "repro/datalog/columnar",
        "repro/datalog/incremental",
        # The sanitizer wraps worker stores, so it loads in worker
        # processes too; the dataflow verifier rides along for symmetry.
        "repro/analysis/dataflow",
        "repro/analysis/sanitize",
        # The serving tier holds workers resident and shares their
        # stores across server threads — same shared-state obligations.
        "repro/serving/",
    )
    #: Scope for CX105: unseeded randomness matters where determinism is a
    #: correctness property (engines, partitioning, the parallel runtime).
    seeded_scope: tuple[str, ...] = (
        "repro/datalog/",
        "repro/partitioning/",
        "repro/parallel/",
        "repro/graphpart/",
        "repro/rdf/idstore",
        "repro/rdf/runstore",
        "repro/rdf/idquery",
        "repro/analysis/dataflow",
        "repro/analysis/sanitize",
        # Serving benchmarks must be reproducible: the load mix and
        # batching order may not depend on unseeded randomness.
        "repro/serving/",
    )

    def in_scope(self, path: str, scope: tuple[str, ...]) -> bool:
        posix = path.replace("\\", "/")
        return any(marker in posix for marker in scope)


DEFAULT_CONFIG = LintConfig()


def _receiver_tail(func: ast.Attribute) -> str | None:
    """Last name component of the call receiver (``a.b.q.get`` -> ``q``)."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return None  # "sep".join(...) — a string literal receiver
    return None


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _kwarg_is_false(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


class _FileLinter:
    """Runs every syntactic rule over one parsed file."""

    def __init__(self, path: str, tree: ast.Module, config: LintConfig) -> None:
        self.path = path
        self.tree = tree
        self.config = config
        self.findings: list[Finding] = []
        self._numpy_aliases = {"numpy"}
        self._random_aliases = {"random"}

    def run(self) -> list[Finding]:
        self._collect_aliases()
        self._visit(self.tree, "<module>")
        self._check_module_state()
        return self.findings

    def _emit(self, code: str, message: str, line: int) -> None:
        self.findings.append(
            Finding(code, message, path=self.path, line=line, pass_name=PASS_NAME)
        )

    # -- alias tracking ------------------------------------------------------

    def _collect_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self._numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        self._random_aliases.add(alias.asname or "random")

    # -- one-pass walk tracking the enclosing qualname (for blessing) --------

    def _visit(self, node: ast.AST, qualname: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                inner = (
                    child.name
                    if qualname == "<module>"
                    else f"{qualname}.{child.name}"
                )
                self._visit(child, inner)
                continue
            if isinstance(child, ast.Call):
                if not self._is_blessed(qualname):
                    self._check_blocking(child)
                self._check_randomness(child)
            elif isinstance(child, ast.ExceptHandler):
                self._check_except(child)
            self._visit(child, qualname)

    def _is_blessed(self, qualname: str) -> bool:
        return any(
            qualname == b or qualname.endswith("." + b)
            for b in self.config.blessed
        )

    # -- CX101 ----------------------------------------------------------------

    def _check_blocking(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        name = func.attr
        receiver = _receiver_tail(func)
        if name == "get":
            if receiver is None or not _QUEUEISH.search(receiver):
                return
            if _has_kwarg(call, "timeout"):
                return
            if _kwarg_is_false(call, "block"):
                return
            if call.args and not (
                isinstance(call.args[0], ast.Constant)
                and call.args[0].value is True
            ):
                # Queue.get's only positionals are (block, timeout); a
                # non-True first positional is dict.get(key, ...) — or a
                # non-blocking get(False) — not an unbounded wait.
                return
            self._emit(
                "CX101",
                f"unbounded blocking {receiver}.get() — pass timeout= and "
                "fold liveness checks into the wait (see ProcessSupervisor.get)",
                call.lineno,
            )
        elif name == "join":
            if isinstance(func.value, ast.Constant):
                return  # "sep".join(...)
            if call.args or _has_kwarg(call, "timeout"):
                return
            self._emit(
                "CX101",
                f"unbounded {receiver or '<expr>'}.join() — join with a "
                "timeout and escalate (see shutdown_processes)",
                call.lineno,
            )
        elif name == "recv":
            if receiver is None or not _QUEUEISH.search(receiver):
                return
            if _has_kwarg(call, "timeout"):
                return
            self._emit(
                "CX101",
                f"unbounded blocking {receiver}.recv() — poll with a bounded "
                "wait so a dead peer cannot wedge this process",
                call.lineno,
            )

    # -- CX102 / CX103 ---------------------------------------------------------

    def _check_except(self, handler: ast.ExceptHandler) -> None:
        broad = False
        if handler.type is None:
            self._emit(
                "CX102",
                "bare except: catches KeyboardInterrupt/SystemExit and hides "
                "typed failures — catch the specific exception",
                handler.lineno,
            )
            broad = True
        elif isinstance(handler.type, ast.Name):
            if handler.type.id == "BaseException":
                self._emit(
                    "CX102",
                    "except BaseException: catches interpreter-exit signals — "
                    "catch the specific exception",
                    handler.lineno,
                )
                broad = True
            elif handler.type.id == "Exception":
                broad = True
        if broad and all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in handler.body
        ):
            self._emit(
                "CX103",
                "broad except swallows the error (body is pass/continue) — "
                "the supervisor's typed diagnostics cannot surface through it",
                handler.lineno,
            )

    # -- CX104 ----------------------------------------------------------------

    def _check_module_state(self) -> None:
        if not self.config.in_scope(self.path, self.config.spawn_scope):
            return
        for stmt in self.tree.body:
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
                targets = [stmt.target]
            else:
                continue
            if not self._is_mutable_literal(value):
                continue
            names = [
                t.id
                for t in targets
                if isinstance(t, ast.Name)
                and not (t.id.startswith("__") and t.id.endswith("__"))
            ]
            if not names:
                continue
            self._emit(
                "CX104",
                f"module-level mutable state {', '.join(names)} in a "
                "spawn-reachable module — each worker process gets a diverging "
                "copy; move it into the worker/config object",
                stmt.lineno,
            )

    @staticmethod
    def _is_mutable_literal(value: ast.expr) -> bool:
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            return name in _MUTABLE_CALLS
        return False

    # -- CX105 ----------------------------------------------------------------

    def _check_randomness(self, call: ast.Call) -> None:
        if not self.config.in_scope(self.path, self.config.seeded_scope):
            return
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        # random.<func>() on the module-global generator.
        if isinstance(value, ast.Name) and value.id in self._random_aliases:
            if func.attr in _GLOBAL_RANDOM_FUNCS:
                self._emit(
                    "CX105",
                    f"module-global random.{func.attr}() — derive a seeded "
                    "Random via repro.util.seeding.rng_for instead",
                    call.lineno,
                )
            elif func.attr == "Random" and not call.args and not call.keywords:
                self._emit(
                    "CX105",
                    "random.Random() without a seed — runs must be replayable",
                    call.lineno,
                )
        # numpy.random.<func>() legacy globals / unseeded default_rng().
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self._numpy_aliases
        ):
            if func.attr in _NUMPY_RANDOM_FUNCS:
                self._emit(
                    "CX105",
                    f"legacy numpy.random.{func.attr}() global — use a seeded "
                    "numpy.random.default_rng(seed)",
                    call.lineno,
                )
            elif func.attr == "default_rng" and not call.args and not call.keywords:
                self._emit(
                    "CX105",
                    "numpy.random.default_rng() without a seed — runs must be "
                    "replayable",
                    call.lineno,
                )


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    return out


def _rel_path(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(
    paths: Iterable[str | Path],
    config: LintConfig = DEFAULT_CONFIG,
    root: str | Path | None = None,
) -> list[Finding]:
    """Lint files/directories; returns findings ordered by (path, line)."""
    findings: list[Finding] = []
    root_path = Path(root) if root is not None else None
    for file_path in iter_python_files(paths):
        rel = _rel_path(file_path, root_path)
        try:
            tree = ast.parse(file_path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    "CX100",
                    f"cannot parse: {exc.msg}",
                    path=rel,
                    line=exc.lineno or 0,
                    pass_name=PASS_NAME,
                )
            )
            continue
        findings.extend(_FileLinter(rel, tree, config).run())
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


# -- CX106: behavioral spawn-safety probe --------------------------------------


def _wire_examples() -> dict[str, object]:
    """Representative instances of every type that crosses an mp queue.

    Built lazily (import cycles: analysis must stay importable without the
    whole runtime).  One example per class is enough: the probe checks the
    *mechanism* (``__reduce__``/dataclass pickling), not the data.
    """
    from repro.datalog.ast import Atom, Rule
    from repro.parallel.messages import (
        Adopt,
        Deliver,
        EncodedBatch,
        Finish,
        Heartbeat,
        OutputMsg,
        Produced,
        Stop,
        TupleBatch,
    )
    from repro.rdf.terms import BNode, Literal, URI, Variable
    from repro.rdf.triple import Triple

    s, p, o = URI("ex:s"), URI("ex:p"), URI("ex:o")
    triple = Triple(s, p, o)
    atom = Atom(Variable("x"), p, Variable("y"))
    rule = Rule("r", (Atom(Variable("x"), p, Variable("y")),), atom)
    return {
        "repro.rdf.terms.URI": s,
        "repro.rdf.terms.BNode": BNode("b0"),
        "repro.rdf.terms.Literal": Literal("v"),
        "repro.rdf.terms.Variable": Variable("x"),
        "repro.rdf.triple.Triple": triple,
        "repro.datalog.ast.Atom": atom,
        "repro.datalog.ast.Rule": rule,
        "repro.parallel.messages.TupleBatch": TupleBatch.make(0, 1, 0, [triple]),
        "repro.parallel.messages.EncodedBatch": EncodedBatch.make(
            0, 1, 0, [(0, 1, 2)], [(2, o)]
        ),
        "repro.parallel.messages.Heartbeat": Heartbeat(0, 0, 1),
        "repro.parallel.messages.Produced": Produced(0, 0, (), 1),
        "repro.parallel.messages.OutputMsg": OutputMsg(0, 0, (triple,)),
        "repro.parallel.messages.Deliver": Deliver(TupleBatch.make(0, 1, 0, [])),
        "repro.parallel.messages.Adopt": Adopt(0, 1, None),
        "repro.parallel.messages.Finish": Finish(),
        "repro.parallel.messages.Stop": Stop(),
    }


def check_spawn_safety(
    examples: dict[str, object] | None = None,
    equals: Callable[[object, object], bool] | None = None,
) -> list[Finding]:
    """CX106: every wire class must survive a pickle round-trip.

    This is exactly what ``spawn``-based multiprocessing does to every
    config, rule set, and batch; a class that fails here (e.g. after
    losing its ``__reduce__``) would crash — or worse, silently
    mis-rebuild — at the process boundary.
    """
    findings: list[Finding] = []
    items = examples if examples is not None else _wire_examples()
    for dotted, obj in sorted(items.items()):
        module_path = "/".join(dotted.split(".")[:-1]) + ".py"
        try:
            restored = pickle.loads(pickle.dumps(obj))
        except Exception as exc:  # noqa — any pickling failure is the finding
            findings.append(
                Finding(
                    "CX106",
                    f"{dotted} is not spawn-safe: pickle round-trip raised "
                    f"{type(exc).__name__}: {exc}",
                    path=module_path,
                    pass_name=PASS_NAME,
                )
            )
            continue
        same = equals(obj, restored) if equals is not None else _default_equal(
            obj, restored
        )
        if not same:
            findings.append(
                Finding(
                    "CX106",
                    f"{dotted} does not survive a pickle round-trip intact "
                    "(restored object differs) — spawn would corrupt it",
                    path=module_path,
                    pass_name=PASS_NAME,
                )
            )
    return findings


def _default_equal(obj: object, restored: object) -> bool:
    if type(obj) is not type(restored):
        return False
    try:
        if obj != restored:
            # Identity-compared classes (no __eq__) are fine as long as the
            # round trip reproduced the type; value classes must match.
            return type(obj).__eq__ is object.__eq__
    except Exception:
        return False
    try:
        if hash(obj) != hash(restored):
            return False
    except TypeError:
        pass  # unhashable wire payloads (EncodedBatch) are fine
    return True
