"""Protocol verifier: the async control protocol as a checkable spec.

PRs 2–3 grew the asynchronous runtime a typed, epoch-stamped control
protocol (``Produced``/``OutputMsg``/``Heartbeat`` worker→master,
``Deliver``/``Adopt``/``Finish``/``Stop`` master→worker) whose
correctness obligations — every message type handled in every reachable
state, stale-epoch drops on every epoch-guarded receive path, ledger
counters mutated only inside accounted paths — were, until now, enforced
by convention and by the fault-injection suite catching the hang *after*
a regression.  This module lifts those obligations into an explicit
declarative spec (:data:`ASYNC_PROTOCOL`) and statically checks the
handler code against it, so deleting an ``isinstance(msg, Finish)``
branch or an ``msg.epoch < epoch[...]`` guard fails a tier-1 test (and
the CI ``analysis`` job) instead of deadlocking a production run.

Checks, in spec order (finding codes ``PROTO0xx``):

* ``PROTO001`` — a spec message type is missing from
  :mod:`repro.parallel.messages` (or vice versa: ``PROTO002`` a control
  message registered there is absent from the spec).
* ``PROTO003`` — an epoch-stamped message class lost its ``node_id`` or
  ``epoch`` field.
* ``PROTO010`` — a handler no longer dispatches on a message type the
  spec requires it to handle (the "unhandled Stop" class of bug).
* ``PROTO011`` — a handler dispatches on a message type the spec does
  not know (protocol grew without the spec — drift).
* ``PROTO012`` — the handler's fall-through consumption (e.g. the
  worker's ``msg.batch`` for ``Deliver``) disappeared.
* ``PROTO020`` — an epoch-guarded receive branch lost its stale-epoch
  drop (``<msg>.epoch < ...`` comparison).
* ``PROTO030`` — a termination-ledger counter is mutated outside the
  spec's accounted call paths.
* ``PROTO031`` — an accounted path named by the spec no longer exists
  (the spec itself drifted from the code).

All checks are purely syntactic (``ast`` over the backend sources) plus
one reflective pass over the message dataclasses; nothing is executed.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.analysis.report import Finding

PASS_NAME = "protocol"

M2W = "master->worker"
W2M = "worker->master"


@dataclass(frozen=True)
class MessageSpec:
    """One control-message type: direction and stamping obligations."""

    name: str
    direction: str
    #: Worker-originated messages must carry (node_id, epoch) so the
    #: master can drop a dead incarnation's leftovers.
    epoch_stamped: bool = False


@dataclass(frozen=True)
class HandlerSpec:
    """One receive loop and the message types it must dispatch on.

    ``handles`` are checked as ``isinstance(<msg>, <Name>)`` tests
    anywhere in the function; ``fallthrough`` is a message consumed
    without an isinstance test, witnessed by an attribute access
    (``fallthrough_attr``) on the message object; ``epoch_guarded``
    branches must contain a ``<expr>.epoch < <expr>`` comparison.
    """

    module: str
    function: str
    role: str
    handles: frozenset[str] = frozenset()
    fallthrough: str | None = None
    fallthrough_attr: str | None = None
    epoch_guarded: frozenset[str] = frozenset()


@dataclass(frozen=True)
class LedgerRule:
    """Where a termination-ledger mutator may be called from."""

    module: str
    method: str
    allowed_callers: frozenset[str]


@dataclass(frozen=True)
class ProtocolSpec:
    """The whole declarative protocol: messages, handlers, ledger paths."""

    messages: tuple[MessageSpec, ...]
    handlers: tuple[HandlerSpec, ...]
    ledger: tuple[LedgerRule, ...]

    def message_names(self) -> frozenset[str]:
        return frozenset(m.name for m in self.messages)

    def by_direction(self, direction: str) -> tuple[MessageSpec, ...]:
        return tuple(m for m in self.messages if m.direction == direction)


_ASYNC = "repro.parallel.async_backend"
_SUP = "repro.parallel.supervisor"

#: The asynchronous runtime's control protocol (DESIGN.md §7–§8, §10).
ASYNC_PROTOCOL = ProtocolSpec(
    messages=(
        MessageSpec("Deliver", M2W),
        MessageSpec("Adopt", M2W),
        MessageSpec("Finish", M2W),
        MessageSpec("Stop", M2W),
        MessageSpec("Produced", W2M, epoch_stamped=True),
        MessageSpec("OutputMsg", W2M, epoch_stamped=True),
        MessageSpec("Heartbeat", W2M, epoch_stamped=True),
    ),
    handlers=(
        # The worker process loop: every master->worker message must be
        # dispatched in its single serving state; Deliver is the
        # fall-through (`batch = msg.batch`).
        HandlerSpec(
            module=_ASYNC,
            function="_async_worker_main",
            role="worker",
            handles=frozenset({"Stop", "Finish", "Adopt"}),
            fallthrough="Deliver",
            fallthrough_attr="batch",
        ),
        # The async master loop: every worker->master message except
        # Heartbeat (absorbed by the supervisor below) must be
        # dispatched, and each dispatch must drop stale epochs.
        HandlerSpec(
            module=_ASYNC,
            function="run_multiprocess_async",
            role="master",
            handles=frozenset({"Produced", "OutputMsg"}),
            epoch_guarded=frozenset({"Produced", "OutputMsg"}),
        ),
        # The supervised wait absorbs Heartbeat for both backends.
        HandlerSpec(
            module=_SUP,
            function="ProcessSupervisor.get",
            role="master",
            handles=frozenset({"Heartbeat"}),
        ),
    ),
    ledger=(
        LedgerRule(
            _ASYNC,
            "record_forward",
            frozenset(
                {
                    "run_async_inprocess._emit",
                    "run_async_inprocess._revive",
                    "run_apply_inprocess._emit",
                    "run_multiprocess_async.relay",
                    "run_multiprocess_async.recover",
                }
            ),
        ),
        LedgerRule(
            _ASYNC,
            "record_delivery",
            frozenset(
                {
                    "run_async_inprocess",
                    "run_async_inprocess._revive",
                    "run_apply_inprocess._drain",
                }
            ),
        ),
        LedgerRule(
            _ASYNC, "record_ack", frozenset({"run_multiprocess_async"})
        ),
        LedgerRule(
            _ASYNC,
            "reset_node",
            frozenset(
                {"run_async_inprocess._revive", "run_multiprocess_async.recover"}
            ),
        ),
        LedgerRule(
            _ASYNC,
            "mark_bootstrapped",
            frozenset(
                {
                    "run_async_inprocess",
                    "run_async_inprocess._revive",
                    "run_apply_inprocess",
                    "run_multiprocess_async",
                }
            ),
        ),
    ),
)


def spec_table(spec: ProtocolSpec = ASYNC_PROTOCOL) -> str:
    """The spec's message table as markdown (for docs and ``--spec``)."""
    handled_in: dict[str, list[str]] = {m.name: [] for m in spec.messages}
    for h in spec.handlers:
        for name in sorted(h.handles):
            handled_in.setdefault(name, []).append(f"{h.module}:{h.function}")
        if h.fallthrough:
            handled_in.setdefault(h.fallthrough, []).append(
                f"{h.module}:{h.function} (fall-through)"
            )
    lines = [
        "| message | direction | epoch-stamped | handled in |",
        "|---|---|---|---|",
    ]
    for m in spec.messages:
        lines.append(
            f"| {m.name} | {m.direction} | "
            f"{'yes' if m.epoch_stamped else 'no'} | "
            f"{'; '.join(handled_in.get(m.name, [])) or '-'} |"
        )
    return "\n".join(lines)


# -- source + AST plumbing -----------------------------------------------------


def module_source(name: str, sources: Mapping[str, str] | None = None) -> str:
    """The module's source text, overridable for drift tests."""
    if sources is not None and name in sources:
        return sources[name]
    mod = importlib.import_module(name)
    if mod.__file__ is None:  # pragma: no cover - namespace packages only
        raise FileNotFoundError(f"module {name} has no source file")
    return Path(mod.__file__).read_text(encoding="utf-8")


def _index_functions(tree: ast.Module) -> dict[str, ast.AST]:
    """Map dotted qualnames (``Class.method``, ``outer.inner``) to defs."""
    index: dict[str, ast.AST] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                index[qual] = child
                visit(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return index


def _isinstance_targets(call: ast.Call) -> Iterator[str]:
    """Class names tested by one ``isinstance(x, C)``/``isinstance(x, (A, B))``."""
    if not (isinstance(call.func, ast.Name) and call.func.id == "isinstance"):
        return
    if len(call.args) != 2:
        return
    target = call.args[1]
    elts = target.elts if isinstance(target, ast.Tuple) else [target]
    for elt in elts:
        if isinstance(elt, ast.Name):
            yield elt.id
        elif isinstance(elt, ast.Attribute):
            yield elt.attr


def _dispatched_names(func: ast.AST) -> dict[str, ast.Call]:
    """All class names isinstance-dispatched anywhere inside ``func``."""
    out: dict[str, ast.Call] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            for name in _isinstance_targets(node):
                out.setdefault(name, node)
    return out


def _has_epoch_drop(body: Sequence[ast.stmt]) -> bool:
    """Does this branch body contain an ``<expr>.epoch < <expr>`` test?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            if (
                isinstance(left, ast.Attribute)
                and left.attr == "epoch"
                and any(isinstance(op, (ast.Lt, ast.NotEq)) for op in node.ops)
            ):
                return True
    return False


def _guarded_branches(func: ast.AST, message: str) -> list[ast.If]:
    """Every ``if``/``elif`` whose test isinstance-checks ``message``."""
    out: list[ast.If] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        for sub in ast.walk(node.test):
            if isinstance(sub, ast.Call) and message in _isinstance_targets(sub):
                out.append(node)
                break
    return out


def _call_sites(
    tree: ast.Module, methods: frozenset[str]
) -> list[tuple[str, str, int]]:
    """``(method, caller_qualname, line)`` for attribute calls to ``methods``."""
    sites: list[tuple[str, str, int]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    if child.func.attr in methods:
                        sites.append(
                            (child.func.attr, prefix.rstrip("."), child.lineno)
                        )
                visit(child, prefix)

    visit(tree, "")
    return sites


# -- the verification passes ---------------------------------------------------


def _check_registry(spec: ProtocolSpec) -> list[Finding]:
    """Spec <-> repro.parallel.messages drift (PROTO001/002/003)."""
    from repro.parallel import messages as messages_mod

    findings: list[Finding] = []
    registry = {
        M2W: {cls.__name__ for cls in messages_mod.MASTER_TO_WORKER},
        W2M: {cls.__name__ for cls in messages_mod.WORKER_TO_MASTER},
    }
    for direction in (M2W, W2M):
        spec_names = {m.name for m in spec.by_direction(direction)}
        for name in sorted(spec_names - registry[direction]):
            findings.append(
                Finding(
                    "PROTO001",
                    f"spec message {name} ({direction}) is not registered in "
                    "repro.parallel.messages",
                    path="repro/parallel/messages.py",
                    pass_name=PASS_NAME,
                )
            )
        for name in sorted(registry[direction] - spec_names):
            findings.append(
                Finding(
                    "PROTO002",
                    f"control message {name} ({direction}) is registered in "
                    "repro.parallel.messages but absent from the protocol spec",
                    path="repro/parallel/messages.py",
                    pass_name=PASS_NAME,
                )
            )
    for m in spec.messages:
        if not m.epoch_stamped:
            continue
        cls = getattr(messages_mod, m.name, None)
        if cls is None or not dataclasses.is_dataclass(cls):
            continue  # PROTO001 already covers a missing class
        fields = {f.name for f in dataclasses.fields(cls)}
        missing = {"node_id", "epoch"} - fields
        if missing:
            findings.append(
                Finding(
                    "PROTO003",
                    f"epoch-stamped message {m.name} lost required field(s) "
                    f"{', '.join(sorted(missing))}",
                    path="repro/parallel/messages.py",
                    pass_name=PASS_NAME,
                )
            )
    return findings


def _check_handler(
    spec: ProtocolSpec, handler: HandlerSpec, tree: ast.Module, rel: str
) -> list[Finding]:
    findings: list[Finding] = []
    index = _index_functions(tree)
    func = index.get(handler.function)
    if func is None:
        findings.append(
            Finding(
                "PROTO031",
                f"handler {handler.function} named by the spec does not exist "
                f"in {handler.module}",
                path=rel,
                pass_name=PASS_NAME,
            )
        )
        return findings
    dispatched = _dispatched_names(func)
    known = spec.message_names()
    for name in sorted(handler.handles):
        if name not in dispatched:
            findings.append(
                Finding(
                    "PROTO010",
                    f"{handler.function} ({handler.role} loop) no longer "
                    f"handles {name} — every reachable state must dispatch it",
                    path=rel,
                    line=getattr(func, "lineno", 0),
                    pass_name=PASS_NAME,
                )
            )
    for name in sorted(set(dispatched) - known):
        # Only flag names that are actually control messages (defined in
        # repro.parallel.messages): payload isinstance checks like
        # EncodedBatch are not protocol dispatches.
        from repro.parallel import messages as messages_mod

        if hasattr(messages_mod, name):
            findings.append(
                Finding(
                    "PROTO011",
                    f"{handler.function} dispatches on {name}, which is not "
                    "in the protocol spec — update ASYNC_PROTOCOL",
                    path=rel,
                    line=dispatched[name].lineno,
                    pass_name=PASS_NAME,
                )
            )
    if handler.fallthrough and handler.fallthrough_attr:
        consumed = any(
            isinstance(node, ast.Attribute)
            and node.attr == handler.fallthrough_attr
            for node in ast.walk(func)
        )
        if not consumed:
            findings.append(
                Finding(
                    "PROTO012",
                    f"{handler.function} lost the fall-through consumption of "
                    f"{handler.fallthrough} (no .{handler.fallthrough_attr} "
                    "access)",
                    path=rel,
                    line=getattr(func, "lineno", 0),
                    pass_name=PASS_NAME,
                )
            )
    for name in sorted(handler.epoch_guarded):
        branches = _guarded_branches(func, name)
        if not branches:
            continue  # PROTO010 already reported the missing dispatch
        if not any(_has_epoch_drop(b.body) for b in branches):
            findings.append(
                Finding(
                    "PROTO020",
                    f"{handler.function}: the {name} receive path has no "
                    "stale-epoch drop (<msg>.epoch < current) — a dead "
                    "incarnation's leftovers would corrupt the ledger",
                    path=rel,
                    line=branches[0].lineno,
                    pass_name=PASS_NAME,
                )
            )
    return findings


def _check_ledger(
    spec: ProtocolSpec, module: str, tree: ast.Module, rel: str
) -> list[Finding]:
    findings: list[Finding] = []
    rules = [r for r in spec.ledger if r.module == module]
    if not rules:
        return findings
    methods = frozenset(r.method for r in rules)
    by_method = {r.method: r for r in rules}
    seen_callers: dict[str, set[str]] = {m: set() for m in methods}
    for method, caller, line in _call_sites(tree, methods):
        seen_callers[method].add(caller)
        if caller not in by_method[method].allowed_callers:
            findings.append(
                Finding(
                    "PROTO030",
                    f"ledger counter {method}() mutated outside the accounted "
                    f"paths (called from {caller or '<module>'}; allowed: "
                    f"{', '.join(sorted(by_method[method].allowed_callers))})",
                    path=rel,
                    line=line,
                    pass_name=PASS_NAME,
                )
            )
    index = _index_functions(tree)
    for method, rule in sorted(by_method.items()):
        for caller in sorted(rule.allowed_callers - seen_callers[method]):
            if caller not in index:
                findings.append(
                    Finding(
                        "PROTO031",
                        f"accounted path {caller} for {method}() no longer "
                        "exists — the spec drifted from the code",
                        path=rel,
                        pass_name=PASS_NAME,
                    )
                )
    return findings


def verify_protocol(
    spec: ProtocolSpec = ASYNC_PROTOCOL,
    sources: Mapping[str, str] | None = None,
) -> list[Finding]:
    """Run every protocol check; returns findings (empty == conformant).

    ``sources`` overrides module source text by dotted name — the hook the
    drift tests use to verify that removing a handler or an epoch guard is
    actually caught.
    """
    findings: list[Finding] = _check_registry(spec)
    modules = {h.module for h in spec.handlers} | {r.module for r in spec.ledger}
    trees: dict[str, tuple[ast.Module, str]] = {}
    for module in sorted(modules):
        rel = module.replace(".", "/") + ".py"
        try:
            text = module_source(module, sources)
            trees[module] = (ast.parse(text), rel)
        except (OSError, SyntaxError) as exc:
            findings.append(
                Finding(
                    "PROTO031",
                    f"cannot load module {module} for verification: {exc}",
                    path=rel,
                    pass_name=PASS_NAME,
                )
            )
    for handler in spec.handlers:
        if handler.module in trees:
            tree, rel = trees[handler.module]
            findings.extend(_check_handler(spec, handler, tree, rel))
    for module, (tree, rel) in sorted(trees.items()):
        findings.extend(_check_ledger(spec, module, tree, rel))
    return findings
