"""Partitioning-quality metrics — Section III's four goals, as measurables.

The paper proposes (and Table I reports):

* ``bal`` — standard deviation of the number of *nodes* (resources) per
  partition.  Diagnostic for balanced computation, because reasoning time
  grows with node count.
* ``IR`` (input replication) — Σ nodes per partition / distinct nodes in
  the input graph.  Diagnostic for both duplicated work and communication
  volume.  1.0 means no replication; the paper quotes ~1.07–1.2 for graph
  partitioning and ~1.7–3 for hash at larger k.  (The paper prints IR − 1
  in Table I — "duplication ... is nearly 10%" for 0.07–0.13 — we report
  both conventions.)
* ``OR`` (output replication) — Σ result tuples per partition / tuples in
  the unioned output.  Measured after a parallel run.
* partition time — wall-clock of the partitioning itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.partitioning.base import DataPartitioningResult
from repro.rdf.graph import Graph


@dataclass
class DataPartitionMetrics:
    """The Table-I row for one (policy, k) pair."""

    policy: str
    k: int
    bal: float
    input_replication: float
    partition_time: float
    total_nodes: int
    nodes_per_partition: list[int]
    output_replication: float | None = None

    @property
    def duplication(self) -> float:
        """IR expressed as excess fraction (the paper's Table-I IR column):
        0.07 means 7% of nodes are replicated copies."""
        return self.input_replication - 1.0

    def row(self) -> list:
        """Experiment-harness table row (matches Table I's columns)."""
        return [
            self.policy,
            self.k,
            round(self.bal, 1),
            "-" if self.output_replication is None
            else round(self.output_replication - 1.0, 3),
            round(self.duplication, 3),
            round(self.partition_time, 3),
        ]


def _stddev(values: Sequence[int]) -> float:
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def compute_data_metrics(
    result: DataPartitioningResult,
    instance: Graph,
) -> DataPartitionMetrics:
    """Compute bal and IR for a data-partitioning result.

    ``instance`` is the unpartitioned instance graph (schema already
    stripped) the result was produced from; it supplies the distinct-node
    denominator of IR.
    """
    vocab = result.vocabulary
    nodes_per_partition = result.nodes_per_partition or [
        len(p.resources() - vocab) for p in result.partitions
    ]
    total_nodes = len(instance.resources() - vocab)
    replicated_sum = sum(nodes_per_partition)
    ir = replicated_sum / total_nodes if total_nodes else 1.0
    return DataPartitionMetrics(
        policy=result.policy_name,
        k=result.k,
        bal=_stddev(nodes_per_partition),
        input_replication=ir,
        partition_time=result.partition_time,
        total_nodes=total_nodes,
        nodes_per_partition=list(nodes_per_partition),
    )


def output_replication(partition_outputs: Sequence[Graph]) -> float:
    """OR = Σ per-partition result tuples / tuples in the unioned result.

    Computed over the *outputs* of a parallel run (base + inferred per
    partition).  1.0 means every result tuple was derived/held exactly
    once.
    """
    union: set = set()
    total = 0
    for g in partition_outputs:
        total += len(g)
        for t in g:
            union.add(t)
    return total / len(union) if union else 1.0
