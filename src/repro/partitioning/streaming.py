"""Streaming data partitioning over N-Triples files.

Section III-A's scalability argument for the hash and domain-specific
policies is that they "can be implemented as a streaming algorithm, i.e.,
the whole data graph need not be loaded into the memory".  This module is
that implementation: one pass over an N-Triples file, one output file per
partition, constant memory beyond the output buffers (plus, for the domain
policy, the group-assignment table, which is tiny — one entry per
*cluster*, not per resource).

The graph policy cannot stream (it needs the whole structure); asking for
it here raises, pointing at the in-memory path.

Group balancing note: the in-memory domain policy balances groups by their
*final* sizes, which a single pass cannot know in advance; the streaming
version assigns each new group to the lightest partition *by running
triple count* — fully streaming, slightly less balanced.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, TextIO

from repro.owl.vocabulary import RDF, is_schema_triple
from repro.partitioning.base import HashOwner
from repro.rdf.ntriples import parse_ntriples_line, triple_to_ntriples
from repro.rdf.terms import Term, is_resource
from repro.util.timing import Stopwatch


@dataclass
class StreamingReport:
    """Outcome of a streaming partition run."""

    k: int
    policy: str
    triples_read: int
    triples_written: int
    lines_skipped: int
    partition_files: list[Path] = field(default_factory=list)
    triples_per_partition: list[int] = field(default_factory=list)
    schema_file: Path | None = None
    schema_triples: int = 0
    elapsed: float = 0.0

    @property
    def replication(self) -> float:
        """Written / instance-read ratio (1.0..2.0): the streaming
        analogue of IR (schema lines excluded from the denominator)."""
        data = self.triples_read - self.schema_triples
        return self.triples_written / data if data else 1.0


class _PartitionWriters:
    """One buffered output file per partition."""

    def __init__(self, directory: Path, k: int, prefix: str) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        self.paths = [directory / f"{prefix}{i:04d}.nt" for i in range(k)]
        self._handles: list[TextIO] = [
            path.open("w", encoding="utf-8") for path in self.paths
        ]
        self.counts = [0] * k

    def write(self, pid: int, line: str) -> None:
        self._handles[pid].write(line)
        self.counts[pid] += 1

    def close(self) -> None:
        for handle in self._handles:
            handle.close()


def stream_partition(
    source: str | os.PathLike,
    out_dir: str | os.PathLike,
    k: int,
    group_of: Callable[[Term], str | None] | None = None,
    salt: int = 0,
    prefix: str = "part",
    strict: bool = True,
) -> StreamingReport:
    """Partition an N-Triples file into ``k`` per-partition files in one
    streaming pass (Algorithm 1 with a hash or domain owner).

    ``group_of=None`` selects the hash policy; a grouper function selects
    the domain policy (new groups are assigned to the lightest partition
    on first sight).  Placement follows Algorithm 1: the line is written to
    the owner of the subject and (when different) the owner of the object;
    literal objects are subject-only.

    ``strict=False`` skips malformed lines (counted in the report) instead
    of raising — the forgiving mode for scraped web data.

    Differences from the in-memory :func:`partition_data`, both inherent
    to streaming:

    * schema triples are diverted to ``<out_dir>/schema.nt`` as they are
      recognized (every node later loads that file in full);
    * ``rdf:type`` triples are placed on the subject's owner only — the
      streaming approximation of the vocabulary rule (a class URI's owner
      cannot be consulted because class-ness is only known from the whole
      stream; subject-only placement is sound for the compiled rule set
      for the same reason the vocabulary rule is).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    source = Path(source)
    watch = Stopwatch()

    hash_owner = HashOwner(k, salt=salt)
    group_part: dict[str, int] = {}
    part_load = [0] * k

    def owner(term: Term) -> int:
        if group_of is None:
            return hash_owner(term)
        group = group_of(term)
        if group is None:
            return hash_owner(term)
        pid = group_part.get(group)
        if pid is None:
            pid = min(range(k), key=part_load.__getitem__)
            group_part[group] = pid
        return pid

    out_path = Path(out_dir)
    writers = _PartitionWriters(out_path, k, prefix)
    read = written = skipped = schema_count = 0
    schema_path = out_path / "schema.nt"
    try:
        with source.open("r", encoding="utf-8") as fh, \
                schema_path.open("w", encoding="utf-8") as schema_out:
            for lineno, line in enumerate(fh, start=1):
                try:
                    triple = parse_ntriples_line(line, lineno)
                except Exception:
                    if strict:
                        raise
                    skipped += 1
                    continue
                if triple is None:
                    continue
                read += 1
                out_line = triple_to_ntriples(triple) + "\n"
                if is_schema_triple(triple):
                    schema_out.write(out_line)
                    schema_count += 1
                    continue
                subject_owner = owner(triple.s)
                writers.write(subject_owner, out_line)
                written += 1
                part_load[subject_owner] += 1
                if (
                    triple.p != RDF.type
                    and is_resource(triple.o)
                ):
                    object_owner = owner(triple.o)
                    if object_owner != subject_owner:
                        writers.write(object_owner, out_line)
                        written += 1
                        part_load[object_owner] += 1
    finally:
        writers.close()

    return StreamingReport(
        k=k,
        policy="domain" if group_of is not None else "hash",
        triples_read=read,
        triples_written=written,
        lines_skipped=skipped,
        partition_files=writers.paths,
        triples_per_partition=list(writers.counts),
        schema_file=schema_path,
        schema_triples=schema_count,
        elapsed=watch.elapsed(),
    )
