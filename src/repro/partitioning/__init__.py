"""Workload partitioning — the paper's core contribution (Section III).

Two families:

* **Data partitioning** (:func:`partition_data`, Algorithm 1): strip the
  schema, derive a resource *owner list* with a pluggable policy, place each
  triple on the owner partition(s) of its subject and object.  Policies
  (Section III-A): :class:`GraphPartitioningPolicy` (multilevel graph
  partitioning — the paper's Metis), :class:`HashPartitioningPolicy`
  (streaming hash), :class:`DomainPartitioningPolicy` (streaming,
  dataset-aware).
* **Rule partitioning** (:func:`partition_rules`, Algorithm 2): build the
  rule-dependency graph, optionally weight edges by predicate statistics,
  and partition it; each node gets all the data and a rule subset.

Metrics (Section III, goals 1–4): :func:`compute_data_metrics` — ``bal``,
input replication ``IR``, output replication ``OR``, and partitioning time.
"""

from repro.partitioning.base import (
    DataPartitioningResult,
    HashOwner,
    OwnerFunction,
    RulePartitioningResult,
    TableOwner,
)
from repro.partitioning.data_generic import partition_data
from repro.partitioning.policies import (
    DomainPartitioningPolicy,
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
    PartitioningPolicy,
)
from repro.partitioning.rulepart import partition_rules
from repro.partitioning.streaming import StreamingReport, stream_partition
from repro.partitioning.metrics import (
    DataPartitionMetrics,
    compute_data_metrics,
    output_replication,
)

__all__ = [
    "OwnerFunction",
    "TableOwner",
    "HashOwner",
    "DataPartitioningResult",
    "RulePartitioningResult",
    "partition_data",
    "PartitioningPolicy",
    "GraphPartitioningPolicy",
    "HashPartitioningPolicy",
    "DomainPartitioningPolicy",
    "partition_rules",
    "StreamingReport",
    "stream_partition",
    "DataPartitionMetrics",
    "compute_data_metrics",
    "output_replication",
]
