"""Algorithm 2 — rule-base partitioning.

Build the rule dependency graph (vertex per rule; edge when one rule's head
can feed another's body; optional weights from predicate statistics), then
partition it with the standard multilevel graph partitioner, minimizing the
weight of cut edges — each cut edge is a producer/consumer pair split
across nodes, i.e. tuples that must be communicated.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.datalog.analysis import rule_dependency_graph, self_recursive
from repro.datalog.ast import Rule
from repro.graphpart import MultilevelPartitioner, CSRGraph
from repro.partitioning.base import RulePartitioningResult
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable
from repro.util.timing import Stopwatch

#: Work multiplier for self-recursive rules (transitivity et al.): their
#: output re-feeds their own body, so true cost tracks the closure rather
#: than the base matches.  A fixed factor is a heuristic; the experiments
#: only need "recursive rules are much heavier than zero-join rules".
RECURSIVE_WEIGHT_FACTOR = 4


def graph_workload_estimator(graph: Graph) -> Callable[[Rule], int]:
    """Per-rule workload estimate from the actual data distribution.

    Each body atom contributes the number of triples matching its *ground
    positions* (so ``(?s rdf:type ub:Course)`` counts Course instances, not
    every type triple); self-recursive rules are scaled by
    :data:`RECURSIVE_WEIGHT_FACTOR`.  This is the "a priori knowledge about
    the distribution of different predicates in the dataset" the paper
    proposes, taken one step further from predicates to patterns.
    """

    def estimate(rule: Rule) -> int:
        total = 0
        for atom in rule.body:
            s = None if isinstance(atom.s, Variable) else atom.s
            p = None if isinstance(atom.p, Variable) else atom.p
            o = None if isinstance(atom.o, Variable) else atom.o
            total += graph.count(s, p, o)
        if self_recursive(rule):
            total *= RECURSIVE_WEIGHT_FACTOR
        return 1 + total

    return estimate


def partition_rules(
    rules: Sequence[Rule],
    k: int,
    predicate_stats: Mapping[Term, int] | None = None,
    workload_estimator: Callable[[Rule], int] | None = None,
    seed: int = 0,
    balance_factor: float = 1.3,
) -> RulePartitioningResult:
    """Partition a rule base into ``k`` subsets (Algorithm 2).

    ``predicate_stats`` (triple counts per predicate, from
    :func:`repro.datalog.analysis.predicate_counts`) turns on the paper's
    edge weighting: an edge from a prolific producer weighs more, so the
    partitioner prefers to keep it internal.

    The balance constraint is looser than for data partitioning
    (``balance_factor=1.3``): rule counts per node matter less than cut
    edges because per-rule workloads are wildly uneven anyway — the paper
    balances "no. of rules in each partition" only approximately.

    >>> from repro.owl.rules_horst import horst_raw_rules
    >>> result = partition_rules(horst_raw_rules(), k=2)
    >>> sorted(len(s) for s in result.rule_sets)[0] > 0
    True
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k > len(rules):
        raise ValueError(
            f"cannot split {len(rules)} rules into {k} non-empty partitions"
        )
    watch = Stopwatch()

    vertices, edges = rule_dependency_graph(rules, predicate_stats)
    n = len(vertices)
    if edges:
        edge_array = np.asarray(list(edges.keys()), dtype=np.int64)
        weight_array = np.asarray(list(edges.values()), dtype=np.int64)
    else:
        edge_array = np.empty((0, 2), dtype=np.int64)
        weight_array = np.empty(0, dtype=np.int64)

    # Vertex weights estimate per-rule workload, so the balance constraint
    # equalizes expected *work*, not just rule counts — the paper balances
    # rule counts and notes statistics-based weighting as the refinement;
    # per-rule workloads are wildly uneven, so the refinement matters.
    # Preferred: a pattern-selectivity estimator over the actual data
    # (:func:`graph_workload_estimator`); fallback: predicate counts.
    vertex_weights = None
    if workload_estimator is not None:
        vertex_weights = np.asarray(
            [workload_estimator(rule) for rule in vertices], dtype=np.int64
        )
    elif predicate_stats is not None:
        vertex_weights = np.asarray(
            [
                1
                + sum(
                    int(predicate_stats.get(atom.p, 0))
                    for atom in rule.body
                    if not atom.p.is_variable
                )
                for rule in vertices
            ],
            dtype=np.int64,
        )

    graph = CSRGraph.from_edges(
        n, edge_array, edge_weights=weight_array, vertex_weights=vertex_weights
    )
    report = MultilevelPartitioner(
        k=k, seed=seed, balance_factor=balance_factor
    ).partition(graph)

    rule_sets: list[list[Rule]] = [[] for _ in range(k)]
    for i, rule in enumerate(vertices):
        rule_sets[int(report.assignment[i])].append(rule)

    # The partitioner may leave a part empty on tiny dependency graphs;
    # rebalance by moving the least-connected rules out of the largest set.
    for pid in range(k):
        while not rule_sets[pid]:
            donor = max(range(k), key=lambda i: len(rule_sets[i]))
            if len(rule_sets[donor]) <= 1:
                raise RuntimeError("cannot produce non-empty rule partitions")
            rule_sets[pid].append(rule_sets[donor].pop())

    return RulePartitioningResult(
        rule_sets=rule_sets,
        policy_name="rule-dependency",
        partition_time=watch.elapsed(),
        edge_cut=report.edge_cut,
        dependency_edges=edges,
    )
