"""Algorithm 1 — generic data partitioning.

Steps, verbatim from the paper:

1. Remove all tuples involving schema elements (they go to every node with
   the rule set).
2. Derive the resource owner list with the chosen policy.
3. Assign every tuple to the partition owning its subject **and** the
   partition owning its object — so a tuple lives on at most two
   partitions, and any two tuples that can join on a shared resource are
   co-located on that resource's owner.

Correctness precondition (Section II/III-A): the rule set consists of
zero-join and single-join rules joining on subject/object positions.  The
caller can enforce this with
:func:`repro.datalog.analysis.check_data_partitionable`; the parallel
reasoner does so automatically.
"""

from __future__ import annotations

from repro.owl.reasoner import split_schema
from repro.owl.vocabulary import RDF
from repro.partitioning.base import DataPartitioningResult
from repro.partitioning.policies import PartitioningPolicy
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, is_resource
from repro.util.timing import Stopwatch


def default_vocabulary(instance: Graph) -> set[Term]:
    """Terms to exclude from ownership: class URIs in ``rdf:type`` object
    position.

    Class URIs are hub nodes — every instance of ``ex:Course`` has an edge
    to the single ``ex:Course`` vertex — and owning them would replicate
    every type triple of a class onto one partition, wrecking both balance
    and replication.  Excluding them is sound because compiled OWL-Horst
    rules mention classes only as *constants*: no rule joins two tuples
    through a variable bound to a class, so class co-location is never
    needed.  (A term that also occurs as an instance subject is data, not
    vocabulary, and stays owned — the conservative hedge for user rule
    sets.)
    """
    vocab = {
        t.o for t in instance.match(None, RDF.type, None) if is_resource(t.o)
    }
    return {
        v for v in vocab if next(instance.match(v, None, None), None) is None
    }


def partition_data(
    graph: Graph,
    policy: PartitioningPolicy,
    k: int,
    strip_schema: bool = True,
    vocabulary: set[Term] | None = None,
) -> DataPartitioningResult:
    """Partition a KB's instance triples into ``k`` parts (Algorithm 1).

    ``graph`` may mix schema and instance triples; with ``strip_schema``
    (default) the TBox is separated out and returned via ``result.schema``.
    ``vocabulary`` terms (default: :func:`default_vocabulary`) are treated
    like literals — never owned, never a placement target.  The input
    graph is not mutated.

    >>> from repro.rdf import Graph, URI, Triple
    >>> from repro.partitioning.policies import HashPartitioningPolicy
    >>> g = Graph([Triple(URI("ex:a"), URI("ex:p"), URI("ex:b"))])
    >>> result = partition_data(g, HashPartitioningPolicy(), k=2)
    >>> sum(len(p) for p in result.partitions) >= 1
    True
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    watch = Stopwatch()

    if strip_schema:
        schema, instance = split_schema(graph)
    else:
        schema, instance = Graph(), graph

    vocab = (
        default_vocabulary(instance) if vocabulary is None else set(vocabulary)
    )
    owner = policy.build(instance, k, vocabulary=frozenset(vocab))

    partitions = [Graph() for _ in range(k)]
    for t in instance:
        subject_owner = owner(t.s)
        partitions[subject_owner].add(t)
        if is_resource(t.o) and t.o not in vocab:
            object_owner = owner(t.o)
            if object_owner != subject_owner:
                partitions[object_owner].add(t)
        # Literal and vocabulary objects have no owner; subject placement
        # suffices (neither can bind the join variable of a compiled
        # single-join rule).

    nodes_per_partition = [
        len(p.resources() - vocab) for p in partitions
    ]

    return DataPartitioningResult(
        partitions=partitions,
        owner=owner,
        schema=schema,
        policy_name=policy.name,
        partition_time=watch.elapsed(),
        nodes_per_partition=nodes_per_partition,
        vocabulary=vocab,
    )
