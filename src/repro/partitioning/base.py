"""Partitioning result types and owner functions.

The *owner function* abstraction captures the paper's "partition table":
data partitioning assigns every resource an owning partition, and both the
placement step of Algorithm 1 and the tuple-routing step of Algorithm 3
consult that assignment.  Two realizations:

* :class:`TableOwner` — an explicit dict (graph and domain policies); this
  is the partition table the master ships to every node.
* :class:`HashOwner` — a pure function of the term (hash policy); nothing
  to ship, the paper's "owner-list need not be replicated in each
  partition" scalability advantage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Protocol

from repro.datalog.ast import Rule
from repro.rdf.graph import Graph
from repro.rdf.terms import Term


class OwnerFunction(Protocol):
    """Maps a resource term to its owning partition id in ``[0, k)``."""

    k: int

    def __call__(self, term: Term) -> int: ...


class TableOwner:
    """Owner function backed by an explicit resource -> partition dict.

    Resources absent from the table (e.g. resources first introduced by
    inference, like a restriction class used as an rdf:type object) fall
    back to a deterministic hash — every node computes the same fallback,
    so routing stays consistent without coordination.
    """

    __slots__ = ("k", "table", "_fallback")

    def __init__(self, k: int, table: dict[Term, int]) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        for term, pid in table.items():
            if not 0 <= pid < k:
                raise ValueError(f"owner of {term} is {pid}, outside [0, {k})")
        self.k = k
        self.table = table
        self._fallback = HashOwner(k)

    def __call__(self, term: Term) -> int:
        pid = self.table.get(term)
        if pid is None:
            return self._fallback(term)
        return pid

    def id_table(self, dictionary) -> dict[int, int]:
        """The owner table re-keyed by dictionary id.

        Covers the terms already present in ``dictionary`` (the base
        stripe the master encoded); the id-routing layer consults this
        with two int probes per tuple and falls back to the term-level
        owner only for ids minted after partitioning.
        """
        out: dict[int, int] = {}
        for term, pid in self.table.items():
            tid = dictionary.get(term)
            if tid is not None:
                out[tid] = pid
        return out

    def __len__(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:
        return f"<TableOwner k={self.k} resources={len(self.table)}>"


class HashOwner:
    """Owner = stable hash of the term, mod k.

    Uses BLAKE2b over the term's N-Triples form, so the assignment is
    identical across processes and runs (Python's ``hash`` is per-process
    randomized for strings, which would break cross-partition routing).
    """

    __slots__ = ("k", "salt")

    def __init__(self, k: int, salt: int = 0) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.salt = salt

    def __call__(self, term: Term) -> int:
        h = hashlib.blake2b(
            term.n3().encode(), digest_size=8, salt=self.salt.to_bytes(8, "big")
        )
        return int.from_bytes(h.digest(), "big") % self.k

    def __repr__(self) -> str:
        return f"<HashOwner k={self.k}>"


@dataclass
class DataPartitioningResult:
    """Output of Algorithm 1.

    ``partitions[i]`` holds partition i's base tuples (instance triples
    placed on the owner of their subject and of their object — each triple
    on at most two partitions).  ``schema`` is the stripped TBox, which
    every node receives in full alongside the complete compiled rule set.
    """

    partitions: list[Graph]
    owner: OwnerFunction
    schema: Graph
    policy_name: str
    partition_time: float
    #: Distinct resources per partition (the "No. of nodes in each
    #: partition" of the paper's bal/IR metrics), vocabulary excluded.
    nodes_per_partition: list[int] = field(default_factory=list)
    #: Terms excluded from ownership (class URIs etc.); see
    #: :func:`repro.partitioning.data_generic.default_vocabulary`.
    vocabulary: set = field(default_factory=set)

    @property
    def k(self) -> int:
        return len(self.partitions)


@dataclass
class RulePartitioningResult:
    """Output of Algorithm 2: rule subsets plus the dependency-graph cut."""

    rule_sets: list[list[Rule]]
    policy_name: str
    partition_time: float
    edge_cut: int
    dependency_edges: dict[tuple[int, int], int]

    @property
    def k(self) -> int:
        return len(self.rule_sets)
