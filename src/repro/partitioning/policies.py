"""Owner-list policies — Section III-A's three concrete algorithms.

A policy turns an instance graph into an :class:`OwnerFunction`.  The
trade-offs the paper discusses:

========================  =========  ==========  ==============
policy                    streaming  owner list  edge-cut aware
========================  =========  ==========  ==============
GraphPartitioningPolicy   no         table       yes (multilevel)
HashPartitioningPolicy    yes        none        no
DomainPartitioningPolicy  yes        table       indirectly
========================  =========  ==========  ==============
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.graphpart import MultilevelPartitioner, CSRGraph
from repro.partitioning.base import HashOwner, OwnerFunction, TableOwner
from repro.rdf.dictionary import EncodedGraph
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, URI


class PartitioningPolicy(Protocol):
    """Builds an owner function for an instance graph.

    ``vocabulary`` terms (class URIs and other non-data hubs; see
    :func:`repro.partitioning.data_generic.default_vocabulary`) must be
    excluded from the ownership structure — they are never placement
    targets.
    """

    name: str

    def build(
        self, instance: Graph, k: int, vocabulary: frozenset[Term] = frozenset()
    ) -> OwnerFunction: ...


class GraphPartitioningPolicy:
    """Classical graph partitioning (Section III-A-1).

    The instance triples are viewed as an undirected graph — one vertex per
    resource, one edge per (subject, object) pair, uniform vertex weights —
    and split into k balanced minimum-edge-cut parts by the multilevel
    partitioner.  The owner list is each part's vertex set.
    """

    def __init__(
        self,
        seed: int = 0,
        balance_factor: float = 1.05,
        refinement: bool = True,
    ) -> None:
        self.name = "graph"
        self.seed = seed
        self.balance_factor = balance_factor
        self.refinement = refinement
        #: Quality report of the last build (edge cut, balance) — surfaced
        #: by the experiment harness next to the paper's metrics.
        self.last_report = None

    def build(
        self, instance: Graph, k: int, vocabulary: frozenset[Term] = frozenset()
    ) -> OwnerFunction:
        encoded = EncodedGraph.from_triples(iter(instance))
        vocab_ids = {
            encoded.dictionary.encode_existing(term)
            for term in vocabulary
            if term in encoded.dictionary
        }
        resource_ids = [
            int(i) for i in encoded.resource_ids() if int(i) not in vocab_ids
        ]
        if not resource_ids:
            return TableOwner(k, {})
        # Compact resource ids to 0..n-1 for the partitioner; edges into
        # vocabulary hubs are dropped with their endpoints.
        id_to_vertex = {t: i for i, t in enumerate(resource_ids)}
        edges = encoded.edges()
        kept_rows = [
            (id_to_vertex[int(s)], id_to_vertex[int(o)])
            for s, o in edges
            if int(s) in id_to_vertex and int(o) in id_to_vertex
        ]
        compact = np.asarray(kept_rows, dtype=np.int64).reshape(-1, 2)
        graph = CSRGraph.from_edges(len(resource_ids), compact)
        report = MultilevelPartitioner(
            k=k,
            seed=self.seed,
            balance_factor=self.balance_factor,
            refinement=self.refinement,
        ).partition(graph)
        self.last_report = report
        table = {
            encoded.dictionary.decode(int(tid)): int(report.assignment[vertex])
            for tid, vertex in id_to_vertex.items()
        }
        return TableOwner(k, table)

    def __repr__(self) -> str:
        return f"GraphPartitioningPolicy(seed={self.seed})"


class HashPartitioningPolicy:
    """Generic hash partitioning (Section III-A-2).

    Stateless and streaming: the owner of a resource is a stable hash mod
    k, so no pass over the data and no owner table.  The price the paper
    measures: the hash ignores edge locality, so replication (IR) is high —
    at 8/16 partitions the paper's runs exhausted memory.
    """

    def __init__(self, salt: int = 0) -> None:
        self.name = "hash"
        self.salt = salt

    def build(
        self, instance: Graph, k: int, vocabulary: frozenset[Term] = frozenset()
    ) -> OwnerFunction:
        # Stateless: vocabulary exclusion happens at placement time in
        # Algorithm 1; the hash function itself needs no adjustment.
        return HashOwner(k, salt=self.salt)

    def __repr__(self) -> str:
        return f"HashPartitioningPolicy(salt={self.salt})"


class DomainPartitioningPolicy:
    """Dataset-aware streaming partitioning (Section III-A-3).

    A caller-supplied ``group_of`` function maps each resource to a domain
    group key (e.g. the university a LUBM entity belongs to — entities of
    one university are far likelier to be related to each other than across
    universities).  Groups are assigned whole to partitions, each new group
    going to the currently lightest partition (greedy balancing).  Resources
    with no recognizable group (``group_of`` returns None) are spread by
    hash.

    Like the hash policy this is one streaming pass; unlike it, co-grouped
    resources stay together, so edge cuts track the dataset's natural
    cluster boundaries.
    """

    def __init__(self, group_of: Callable[[Term], str | None]) -> None:
        self.name = "domain"
        self.group_of = group_of

    def build(
        self, instance: Graph, k: int, vocabulary: frozenset[Term] = frozenset()
    ) -> OwnerFunction:
        group_sizes: dict[str, int] = {}
        resource_group: dict[Term, str] = {}
        ungrouped: list[Term] = []
        for resource in instance.resources():
            if resource in vocabulary:
                continue
            group = self.group_of(resource)
            if group is None:
                ungrouped.append(resource)
            else:
                resource_group[resource] = group
                group_sizes[group] = group_sizes.get(group, 0) + 1

        # Largest groups first, each to the lightest partition so far
        # (greedy multiprocessor scheduling — 4/3-competitive, plenty for
        # the paper's "nearly equal" goal).
        part_load = [0] * k
        group_part: dict[str, int] = {}
        for group, size in sorted(
            group_sizes.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lightest = min(range(k), key=part_load.__getitem__)
            group_part[group] = lightest
            part_load[lightest] += size

        fallback = HashOwner(k)
        table = {
            resource: group_part[group]
            for resource, group in resource_group.items()
        }
        for resource in ungrouped:
            table[resource] = fallback(resource)
        return TableOwner(k, table)

    def __repr__(self) -> str:
        return "DomainPartitioningPolicy()"


def uri_prefix_grouper(pattern: str) -> Callable[[Term], str | None]:
    """Helper for building domain policies: groups URIs by the first match
    of a regex ``pattern`` (group 0) in their string form.

    >>> from repro.rdf.terms import URI
    >>> g = uri_prefix_grouper(r"University\\d+")
    >>> g(URI("http://www.University3.edu/Dept1/prof2"))
    'University3'
    """
    import re

    compiled = re.compile(pattern)

    def group_of(term: Term) -> str | None:
        if not isinstance(term, URI):
            return None
        m = compiled.search(term.value)
        return m.group(0) if m else None

    return group_of
