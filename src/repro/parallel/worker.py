"""One partition's node loop (the per-node body of Algorithm 3).

A worker owns its base tuples (plus the full schema), its rule set (the
complete compiled set for data partitioning, a subset for rule
partitioning), and a router.  Two entry points:

* :meth:`PartitionWorker.bootstrap` — the first round: run the local
  reasoner to fixpoint over the base tuples.
* :meth:`PartitionWorker.step` — a subsequent round: ingest tuples received
  from other nodes, resume the fixpoint with them as the delta.

Both return a :class:`RoundResult` carrying the outgoing batches (already
routed and de-duplicated — a tuple is sent to a given destination at most
once per worker lifetime) and the measured reasoning time/work for the
round, which the simulated cluster turns into timelines.

Reasoning strategies (mirrors :class:`repro.owl.reasoner.HorstReasoner`):
``forward`` runs semi-naive throughout; ``backward`` runs the Jena-style
per-resource SLD materialization for the bootstrap round — the
super-linear-cost path Section VI analyzes — then semi-naive for the
incremental rounds (the hybrid shape of Jena's engine; incoming deltas are
small, so the bootstrap dominates, as in the paper's Fig 2 where reasoning
time dwarfs IO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

from repro.datalog.ast import Rule
from repro.datalog.backward import materialize_backward
from repro.datalog.engine import SemiNaiveEngine
from repro.parallel.faults import maybe_crash
from repro.parallel.messages import EncodedBatch, Message, TupleBatch
from repro.parallel.routing import Router
from repro.rdf.dictionary import PartitionDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.rdf.triple import Triple
from repro.util.timing import Stopwatch

Strategy = Literal["forward", "backward"]


@dataclass
class RoundResult:
    """What one node did in one round."""

    node_id: int
    round_no: int
    outgoing: list[Message]
    derived: int
    received: int
    reasoning_time: float
    work: int

    @property
    def sent_tuples(self) -> int:
        return sum(len(b) for b in self.outgoing)


class PartitionWorker:
    """One node of the parallel system.

    >>> from repro.parallel.routing import BroadcastRouter
    >>> from repro.datalog.parser import parse_rules
    >>> from repro.rdf import Graph, URI, Triple
    >>> rules = parse_rules('''@prefix ex: <ex:>
    ... [t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]''')
    >>> g = Graph([Triple(URI("ex:1"), URI("ex:p"), URI("ex:2"))])
    >>> w = PartitionWorker(0, g, rules, BroadcastRouter(2))
    >>> result = w.bootstrap()
    >>> result.derived
    0
    """

    def __init__(
        self,
        node_id: int,
        base: Graph,
        rules: Sequence[Rule],
        router: Router,
        strategy: Strategy = "forward",
        schema: Graph | None = None,
        forward_received: bool = False,
        compile_rules: bool = True,
        dictionary: PartitionDictionary | None = None,
        epoch: int = 0,
    ) -> None:
        self.node_id = node_id
        #: Incarnation number: 0 for the original worker, bumped each time
        #: supervision re-runs this node after a failure.  Consumed by the
        #: wire protocol (stale-message filtering) and the fault-injection
        #: point (replacements are immune to the injected crash).
        self.epoch = epoch
        #: Step calls so far — the deterministic trigger counter for the
        #: env-configured crash injection (see repro.parallel.faults).
        self._steps = 0
        self.graph = base.copy()
        if schema is not None:
            # Schema triples are replicated to every node (Algorithm 1
            # strips them from the partitioned data; rules are compiled so
            # they are rarely needed, but user rule sets may reference them).
            self.graph.update(iter(schema))
        self.rules = tuple(rules)
        #: Every partition runs the compiled kernels by default — the
        #: per-partition fixpoint is the hottest path in Algorithms 1-3.
        self.engine = SemiNaiveEngine(self.rules, compile_rules=compile_rules)
        self.router = router
        self.strategy: Strategy = strategy
        #: Re-route tuples received from peers (dedup-guarded).  Off for
        #: static partitioning (the sender already reached every owner);
        #: required when ownership can change mid-run (dynamic
        #: rebalancing), where an in-flight tuple may land on a node that
        #: is no longer the owner and must be forwarded onward.
        self.forward_received = forward_received
        self.round_no = 0
        #: When a dictionary is supplied the worker speaks the id-encoded
        #: wire protocol: fresh tuples are encoded once at the routing
        #: boundary, the sent-dedup and (where the router supports it)
        #: destination lookups key on int id-triples, and outgoing batches
        #: are :class:`EncodedBatch` rows plus a per-destination
        #: delta-dictionary of newly minted terms.
        self.dictionary = dictionary
        if dictionary is not None:
            bind = getattr(router, "bind_dictionary", None)
            if bind is not None and getattr(router, "_subject_owner", None) is None:
                bind(dictionary)
        #: Tuples already sent (to anyone) — each tuple is routed once.
        #: Term triples, or id rows when the dictionary is active.
        self._sent: set = set()
        #: Per destination: non-base ids whose delta entry already shipped.
        self._known_by_dest: dict[int, set[int]] = {}

    # -- rounds --------------------------------------------------------------

    def bootstrap(self) -> RoundResult:
        """Round 0: local fixpoint over the base tuples."""
        watch = Stopwatch()
        if self.strategy == "backward":
            materialized, stats = materialize_backward(self.graph, self.rules)
            fresh = [t for t in materialized if t not in self.graph]
            self.graph = materialized
            work = stats.work
        else:
            result = self.engine.run(self.graph)
            fresh = list(result.inferred)
            work = result.stats.work
        reasoning_time = watch.elapsed()
        return self._finish_round(fresh, received=0,
                                  reasoning_time=reasoning_time, work=work)

    def step(self, incoming: Iterable[Message]) -> RoundResult:
        """One communication round: ingest received batches (term-level or
        id-encoded), resume the fixpoint with them as the delta."""
        self._steps += 1
        maybe_crash(self.node_id, self.epoch, self._steps)
        received: list[Triple] = []
        for batch in incoming:
            if isinstance(batch, EncodedBatch):
                if self.dictionary is None:
                    raise RuntimeError(
                        "received an EncodedBatch but this worker has no "
                        "dictionary to decode it"
                    )
                triples: Iterable[Triple] = batch.decode(self.dictionary)
            else:
                triples = batch.triples
            for t in triples:
                if t not in self.graph:
                    received.append(t)
        watch = Stopwatch()
        if received:
            result = self.engine.run(self.graph, delta=received)
            fresh = list(result.inferred)
            work = result.stats.work
        else:
            fresh = []
            work = 0
        reasoning_time = watch.elapsed()
        # With static ownership the sender already routed received tuples
        # to every owner, so only locally derived tuples are routed.  Under
        # dynamic rebalancing ownership may have moved since the sender
        # routed, so received tuples re-enter routing (dedup keeps this
        # from looping).
        routable = list(fresh)
        if self.forward_received:
            routable.extend(received)
        return self._finish_round(fresh, received=len(received),
                                  reasoning_time=reasoning_time, work=work,
                                  routable=routable)

    def _finish_round(
        self, fresh: Sequence[Triple], received: int,
        reasoning_time: float, work: int,
        routable: Sequence[Triple] | None = None,
    ) -> RoundResult:
        to_route = routable if routable is not None else fresh
        if self.dictionary is not None:
            batches: list[Message] = self._route_encoded(to_route)
        else:
            outgoing_map: dict[int, list[Triple]] = {}
            for t in to_route:
                if t in self._sent:
                    continue
                dests = self.router.destinations(self.node_id, t)
                if dests:
                    self._sent.add(t)
                    for d in dests:
                        outgoing_map.setdefault(d, []).append(t)
            batches = [
                TupleBatch.make(self.node_id, dest, self.round_no, triples)
                for dest, triples in sorted(outgoing_map.items())
            ]
        result = RoundResult(
            node_id=self.node_id,
            round_no=self.round_no,
            outgoing=batches,
            derived=len(fresh),
            received=received,
            reasoning_time=reasoning_time,
            work=work,
        )
        self.round_no += 1
        return result

    def _route_encoded(self, triples: Sequence[Triple]) -> list[Message]:
        """Id-encoded routing: each fresh tuple is encoded exactly once;
        dedup and (for owner-table routers) destination lookups are int
        probes; a term's serialization ships to a given peer at most once,
        in the batch's delta-dictionary."""
        d = self.dictionary
        assert d is not None
        enc = d.encode
        base_size = d.base_size
        by_id = (
            self.router.destinations_by_id
            if getattr(self.router, "_subject_owner", None) is not None
            else None
        )
        rows_by_dest: dict[int, list[tuple[int, int, int]]] = {}
        delta_by_dest: dict[int, list[tuple[int, Term]]] = {}
        for t in triples:
            row = (enc(t.s), enc(t.p), enc(t.o))
            if row in self._sent:
                continue
            if by_id is not None:
                dests = by_id(self.node_id, row[0], row[2], t)
            else:
                dests = self.router.destinations(self.node_id, t)
            if not dests:
                continue
            self._sent.add(row)
            for dest in dests:
                rows_by_dest.setdefault(dest, []).append(row)
                if row[0] >= base_size or row[1] >= base_size or row[2] >= base_size:
                    known = self._known_by_dest.setdefault(dest, set())
                    for tid, term in zip(row, t):
                        if tid >= base_size and tid not in known:
                            known.add(tid)
                            delta_by_dest.setdefault(dest, []).append((tid, term))
        return [
            EncodedBatch.make(
                self.node_id, dest, self.round_no, rows,
                delta_by_dest.get(dest, ()),
            )
            for dest, rows in sorted(rows_by_dest.items())
        ]

    # -- results ---------------------------------------------------------------

    def output_graph(self) -> Graph:
        """This node's final KB (base + received + inferred)."""
        return self.graph
