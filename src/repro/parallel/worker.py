"""One partition's node loop (the per-node body of Algorithm 3).

A worker owns its base tuples (plus the full schema), its rule set (the
complete compiled set for data partitioning, a subset for rule
partitioning), and a router.  Two entry points:

* :meth:`PartitionWorker.bootstrap` — the first round: run the local
  reasoner to fixpoint over the base tuples.
* :meth:`PartitionWorker.step` — a subsequent round: ingest tuples received
  from other nodes, resume the fixpoint with them as the delta.

Both return a :class:`RoundResult` carrying the outgoing batches (already
routed and de-duplicated — a tuple is sent to a given destination at most
once per worker lifetime) and the measured reasoning time/work for the
round, which the simulated cluster turns into timelines.

Reasoning strategies (mirrors :class:`repro.owl.reasoner.HorstReasoner`):
``forward`` runs semi-naive throughout; ``backward`` runs the Jena-style
per-resource SLD materialization for the bootstrap round — the
super-linear-cost path Section VI analyzes — then semi-naive for the
incremental rounds (the hybrid shape of Jena's engine; incoming deltas are
small, so the bootstrap dominates, as in the paper's Fig 2 where reasoning
time dwarfs IO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from repro.datalog.ast import Rule
from repro.datalog.backward import materialize_backward
from repro.datalog.engine import SemiNaiveEngine
from repro.parallel.messages import TupleBatch
from repro.parallel.routing import Router
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple
from repro.util.timing import Stopwatch

Strategy = Literal["forward", "backward"]


@dataclass
class RoundResult:
    """What one node did in one round."""

    node_id: int
    round_no: int
    outgoing: list[TupleBatch]
    derived: int
    received: int
    reasoning_time: float
    work: int

    @property
    def sent_tuples(self) -> int:
        return sum(len(b) for b in self.outgoing)


class PartitionWorker:
    """One node of the parallel system.

    >>> from repro.parallel.routing import BroadcastRouter
    >>> from repro.datalog.parser import parse_rules
    >>> from repro.rdf import Graph, URI, Triple
    >>> rules = parse_rules('''@prefix ex: <ex:>
    ... [t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]''')
    >>> g = Graph([Triple(URI("ex:1"), URI("ex:p"), URI("ex:2"))])
    >>> w = PartitionWorker(0, g, rules, BroadcastRouter(2))
    >>> result = w.bootstrap()
    >>> result.derived
    0
    """

    def __init__(
        self,
        node_id: int,
        base: Graph,
        rules: Sequence[Rule],
        router: Router,
        strategy: Strategy = "forward",
        schema: Graph | None = None,
        forward_received: bool = False,
        compile_rules: bool = True,
    ) -> None:
        self.node_id = node_id
        self.graph = base.copy()
        if schema is not None:
            # Schema triples are replicated to every node (Algorithm 1
            # strips them from the partitioned data; rules are compiled so
            # they are rarely needed, but user rule sets may reference them).
            self.graph.update(iter(schema))
        self.rules = tuple(rules)
        #: Every partition runs the compiled kernels by default — the
        #: per-partition fixpoint is the hottest path in Algorithms 1-3.
        self.engine = SemiNaiveEngine(self.rules, compile_rules=compile_rules)
        self.router = router
        self.strategy: Strategy = strategy
        #: Re-route tuples received from peers (dedup-guarded).  Off for
        #: static partitioning (the sender already reached every owner);
        #: required when ownership can change mid-run (dynamic
        #: rebalancing), where an in-flight tuple may land on a node that
        #: is no longer the owner and must be forwarded onward.
        self.forward_received = forward_received
        self.round_no = 0
        #: Tuples already sent (to anyone) — each tuple is routed once.
        self._sent: set[Triple] = set()

    # -- rounds --------------------------------------------------------------

    def bootstrap(self) -> RoundResult:
        """Round 0: local fixpoint over the base tuples."""
        watch = Stopwatch()
        if self.strategy == "backward":
            materialized, stats = materialize_backward(self.graph, self.rules)
            fresh = [t for t in materialized if t not in self.graph]
            self.graph = materialized
            work = stats.work
        else:
            result = self.engine.run(self.graph)
            fresh = list(result.inferred)
            work = result.stats.work
        reasoning_time = watch.elapsed()
        return self._finish_round(fresh, received=0,
                                  reasoning_time=reasoning_time, work=work)

    def step(self, incoming: Iterable[TupleBatch]) -> RoundResult:
        """One communication round: ingest received batches, resume the
        fixpoint with them as the delta."""
        received: list[Triple] = []
        for batch in incoming:
            for t in batch.triples:
                if t not in self.graph:
                    received.append(t)
        watch = Stopwatch()
        if received:
            result = self.engine.run(self.graph, delta=received)
            fresh = list(result.inferred)
            work = result.stats.work
        else:
            fresh = []
            work = 0
        reasoning_time = watch.elapsed()
        # With static ownership the sender already routed received tuples
        # to every owner, so only locally derived tuples are routed.  Under
        # dynamic rebalancing ownership may have moved since the sender
        # routed, so received tuples re-enter routing (dedup keeps this
        # from looping).
        routable = list(fresh)
        if self.forward_received:
            routable.extend(received)
        return self._finish_round(fresh, received=len(received),
                                  reasoning_time=reasoning_time, work=work,
                                  routable=routable)

    def _finish_round(
        self, fresh: Sequence[Triple], received: int,
        reasoning_time: float, work: int,
        routable: Sequence[Triple] | None = None,
    ) -> RoundResult:
        outgoing_map: dict[int, list[Triple]] = {}
        for t in (routable if routable is not None else fresh):
            if t in self._sent:
                continue
            dests = self.router.destinations(self.node_id, t)
            if dests:
                self._sent.add(t)
                for d in dests:
                    outgoing_map.setdefault(d, []).append(t)
        batches = [
            TupleBatch.make(self.node_id, dest, self.round_no, triples)
            for dest, triples in sorted(outgoing_map.items())
        ]
        result = RoundResult(
            node_id=self.node_id,
            round_no=self.round_no,
            outgoing=batches,
            derived=len(fresh),
            received=received,
            reasoning_time=reasoning_time,
            work=work,
        )
        self.round_no += 1
        return result

    # -- results ---------------------------------------------------------------

    def output_graph(self) -> Graph:
        """This node's final KB (base + received + inferred)."""
        return self.graph
