"""One partition's node loop (the per-node body of Algorithm 3).

A worker owns its base tuples (plus the full schema), its rule set (the
complete compiled set for data partitioning, a subset for rule
partitioning), and a router.  Two entry points:

* :meth:`PartitionWorker.bootstrap` — the first round: run the local
  reasoner to fixpoint over the base tuples.
* :meth:`PartitionWorker.step` — a subsequent round: ingest tuples received
  from other nodes, resume the fixpoint with them as the delta.

Both return a :class:`RoundResult` carrying the outgoing batches (already
routed and de-duplicated — a tuple is sent to a given destination at most
once per worker lifetime) and the measured reasoning time/work for the
round, which the simulated cluster turns into timelines.

Reasoning strategies (mirrors :class:`repro.owl.reasoner.HorstReasoner`):
``forward`` runs semi-naive throughout; ``backward`` runs the Jena-style
per-resource SLD materialization for the bootstrap round — the
super-linear-cost path Section VI analyzes — then semi-naive for the
incremental rounds (the hybrid shape of Jena's engine; incoming deltas are
small, so the bootstrap dominates, as in the paper's Fig 2 where reasoning
time dwarfs IO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Mapping, Sequence

import numpy as np

from repro.datalog.ast import Atom, Rule
from repro.datalog.backward import materialize_backward
from repro.datalog.columnar import ColumnarEngine, Columns
from repro.datalog.engine import EngineStats, SemiNaiveEngine
from repro.parallel.faults import maybe_crash
from repro.parallel.messages import EncodedBatch, Message, RemovalBatch, TupleBatch
from repro.parallel.routing import Router
from repro.rdf.dictionary import PartitionDictionary
from repro.rdf.graph import Graph
from repro.rdf.idstore import IdGraph, member_mask
from repro.rdf.runstore import RunStore
from repro.rdf.terms import Term, Variable
from repro.rdf.triple import Triple
from repro.util.timing import Stopwatch

Strategy = Literal["forward", "backward"]

#: Pseudo-destination for coordinator-bound query answers.  Shares the
#: per-destination ship-once delta-dictionary bookkeeping with real peers
#: but can never collide with a node id (the same convention as
#: master-originated batches, which use ``sender=-1``).
QUERY_DEST = -1


def _concat_columns(parts: Sequence[Columns]) -> Columns:
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


@dataclass
class RoundResult:
    """What one node did in one round."""

    node_id: int
    round_no: int
    outgoing: list[Message]
    derived: int
    received: int
    reasoning_time: float
    work: int

    @property
    def sent_tuples(self) -> int:
        return sum(len(b) for b in self.outgoing)


class PartitionWorker:
    """One node of the parallel system.

    >>> from repro.parallel.routing import BroadcastRouter
    >>> from repro.datalog.parser import parse_rules
    >>> from repro.rdf import Graph, URI, Triple
    >>> rules = parse_rules('''@prefix ex: <ex:>
    ... [t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]''')
    >>> g = Graph([Triple(URI("ex:1"), URI("ex:p"), URI("ex:2"))])
    >>> w = PartitionWorker(0, g, rules, BroadcastRouter(2))
    >>> result = w.bootstrap()
    >>> result.derived
    0
    """

    def __init__(
        self,
        node_id: int,
        base: Graph,
        rules: Sequence[Rule],
        router: Router,
        strategy: Strategy = "forward",
        schema: Graph | None = None,
        forward_received: bool = False,
        compile_rules: bool = True,
        dictionary: PartitionDictionary | None = None,
        epoch: int = 0,
        engine: str | None = None,
        store: str | None = None,
        memory_budget_bytes: int | None = None,
        sanitize: bool | None = None,
    ) -> None:
        self.node_id = node_id
        #: Incarnation number: 0 for the original worker, bumped each time
        #: supervision re-runs this node after a failure.  Consumed by the
        #: wire protocol (stale-message filtering) and the fault-injection
        #: point (replacements are immune to the injected crash).
        self.epoch = epoch
        #: Step calls so far — the deterministic trigger counter for the
        #: env-configured crash injection (see repro.parallel.faults).
        self._steps = 0
        self.graph = base.copy()
        if schema is not None:
            # Schema triples are replicated to every node (Algorithm 1
            # strips them from the partitioned data; rules are compiled so
            # they are rarely needed, but user rule sets may reference them).
            self.graph.update(iter(schema))
        self.rules = tuple(rules)
        #: Id-native columnar mode: the partition's KB lives as int64
        #: columns in an :class:`IdGraph` keyed by the partition
        #: dictionary.  Received ``EncodedBatch`` rows are canonicalized,
        #: deduplicated, reasoned over and routed without materializing a
        #: single ``Term``/``Triple`` object — decode happens once, at
        #: output gather.  Requires the id wire protocol (a dictionary)
        #: and the forward strategy.
        self.id_native = (
            engine == "columnar"
            and dictionary is not None
            and strategy == "forward"
        )
        #: Columnar store choice: "dense" (IdGraph) or "run" — the
        #: memory-budgeted compressed :class:`RunStore`; ``None`` derives
        #: it from whether a budget was given.  Recorded on the worker so
        #: supervision can rebuild adopted incarnations with the same
        #: storage and budget.
        if store is None:
            store = "run" if memory_budget_bytes is not None else "dense"
        self.store = store
        self.memory_budget_bytes = memory_budget_bytes
        #: Runtime-sanitizer switch (tri-state; None defers to
        #: REPRO_SANITIZE).  Recorded so supervision rebuilds adopted
        #: incarnations with the same checking.
        self.sanitize = sanitize
        if self.id_native:
            assert dictionary is not None
            self.engine = None
            self._columnar: ColumnarEngine | None = ColumnarEngine(
                self.rules, dictionary)
            self._idgraph: IdGraph | RunStore | None
            from repro.analysis.sanitize import make_store, sanitize_enabled

            if sanitize_enabled(sanitize):
                self._idgraph = make_store(
                    store,
                    capacity=len(self.graph),
                    memory_budget_bytes=memory_budget_bytes,
                    label=f"worker{node_id}-store",
                    seed=node_id,
                )
            elif store == "run":
                self._idgraph = RunStore(
                    memory_budget_bytes=memory_budget_bytes)
            else:
                self._idgraph = IdGraph(capacity=len(self.graph))
            enc = dictionary.encode
            s_list, p_list, o_list = [], [], []
            for t in self.graph:
                s_list.append(enc(t.s))
                p_list.append(enc(t.p))
                o_list.append(enc(t.o))
            s_arr = np.asarray(s_list, dtype=np.int64)
            p_arr = np.asarray(p_list, dtype=np.int64)
            o_arr = np.asarray(o_list, dtype=np.int64)
            self._idgraph.add_rows(s_arr, p_arr, o_arr)
            #: The asserted rows (base partition + schema) in id space —
            #: DRed's rederivation keeps asserted-but-also-derivable rows
            #: alive from this set; user retractions remove from it.
            self._base_rows: IdGraph | None = IdGraph(capacity=len(s_arr))
            self._base_rows.add_rows(s_arr, p_arr, o_arr)
            #: Rows marked by the overdeletion phase but not yet
            #: physically deleted (see :meth:`finalize_removals`).
            self._overdeleted: IdGraph | None = IdGraph()
        else:
            #: Every partition runs the compiled kernels by default — the
            #: per-partition fixpoint is the hottest path in Algorithms 1-3.
            self.engine = SemiNaiveEngine(
                self.rules, compile_rules=compile_rules, engine=engine,
                store=store if engine == "columnar" else None,
                memory_budget_bytes=(
                    memory_budget_bytes if engine == "columnar" else None),
                sanitize=sanitize)
            self._columnar = None
            self._idgraph = None
            self._base_rows = None
            self._overdeleted = None
        #: Cumulative six-field engine counters across all rounds — what
        #: the driver merges into a KB's totals (the backward bootstrap
        #: reports only its scalar ``work``; its SLD counters are not
        #: semi-naive-comparable and stay out of this).
        self.engine_stats = EngineStats()
        self.router = router
        self.strategy: Strategy = strategy
        #: Re-route tuples received from peers (dedup-guarded).  Off for
        #: static partitioning (the sender already reached every owner);
        #: required when ownership can change mid-run (dynamic
        #: rebalancing), where an in-flight tuple may land on a node that
        #: is no longer the owner and must be forwarded onward.
        self.forward_received = forward_received
        self.round_no = 0
        #: When a dictionary is supplied the worker speaks the id-encoded
        #: wire protocol: fresh tuples are encoded once at the routing
        #: boundary, the sent-dedup and (where the router supports it)
        #: destination lookups key on int id-triples, and outgoing batches
        #: are :class:`EncodedBatch` rows plus a per-destination
        #: delta-dictionary of newly minted terms.
        self.dictionary = dictionary
        if dictionary is not None:
            bind = getattr(router, "bind_dictionary", None)
            if bind is not None and getattr(router, "_subject_owner", None) is None:
                bind(dictionary)
        #: Tuples already sent (to anyone) — each tuple is routed once.
        #: Term triples, or id rows when the dictionary is active.
        self._sent: set = set()
        #: Per destination: non-base ids whose delta entry already shipped.
        self._known_by_dest: dict[int, set[int]] = {}

    # -- rounds --------------------------------------------------------------

    def bootstrap(self) -> RoundResult:
        """Round 0: local fixpoint over the base tuples."""
        watch = Stopwatch()
        if self.id_native:
            assert self._columnar is not None and self._idgraph is not None
            fixpoint = self._columnar.run(self._idgraph)
            self.engine_stats.merge(fixpoint.stats)
            reasoning_time = watch.elapsed()
            return self._finish_round_rows(
                fixpoint.inferred, received=0,
                reasoning_time=reasoning_time, work=fixpoint.stats.work)
        if self.strategy == "backward":
            materialized, stats = materialize_backward(self.graph, self.rules)
            fresh = [t for t in materialized if t not in self.graph]
            self.graph = materialized
            work = stats.work
        else:
            assert self.engine is not None
            result = self.engine.run(self.graph)
            self.engine_stats.merge(result.stats)
            fresh = list(result.inferred)
            work = result.stats.work
        reasoning_time = watch.elapsed()
        return self._finish_round(fresh, received=0,
                                  reasoning_time=reasoning_time, work=work)

    def step(self, incoming: Iterable[Message]) -> RoundResult:
        """One communication round: ingest received batches (term-level or
        id-encoded), resume the fixpoint with them as the delta."""
        self._steps += 1
        maybe_crash(self.node_id, self.epoch, self._steps)
        if self.id_native:
            return self._step_rows(incoming)
        received: list[Triple] = []
        for batch in incoming:
            if isinstance(batch, RemovalBatch):
                raise RuntimeError(
                    "removal batches require an id-native columnar worker "
                    "(engine='columnar' with the id wire protocol)"
                )
            if isinstance(batch, EncodedBatch):
                if self.dictionary is None:
                    raise RuntimeError(
                        "received an EncodedBatch but this worker has no "
                        "dictionary to decode it"
                    )
                triples: Iterable[Triple] = batch.decode(self.dictionary)
            else:
                triples = batch.triples
            for t in triples:
                if t not in self.graph:
                    received.append(t)
        watch = Stopwatch()
        if received:
            result = self.engine.run(self.graph, delta=received)
            self.engine_stats.merge(result.stats)
            fresh = list(result.inferred)
            work = result.stats.work
        else:
            fresh = []
            work = 0
        reasoning_time = watch.elapsed()
        # With static ownership the sender already routed received tuples
        # to every owner, so only locally derived tuples are routed.  Under
        # dynamic rebalancing ownership may have moved since the sender
        # routed, so received tuples re-enter routing (dedup keeps this
        # from looping).
        routable = list(fresh)
        if self.forward_received:
            routable.extend(received)
        return self._finish_round(fresh, received=len(received),
                                  reasoning_time=reasoning_time, work=work,
                                  routable=routable)

    def _finish_round(
        self, fresh: Sequence[Triple], received: int,
        reasoning_time: float, work: int,
        routable: Sequence[Triple] | None = None,
    ) -> RoundResult:
        to_route = routable if routable is not None else fresh
        if self.dictionary is not None:
            batches: list[Message] = self._route_encoded(to_route)
        else:
            outgoing_map: dict[int, list[Triple]] = {}
            for t in to_route:
                if t in self._sent:
                    continue
                dests = self.router.destinations(self.node_id, t)
                if dests:
                    self._sent.add(t)
                    for d in dests:
                        outgoing_map.setdefault(d, []).append(t)
            batches = [
                TupleBatch.make(self.node_id, dest, self.round_no, triples)
                for dest, triples in sorted(outgoing_map.items())
            ]
        result = RoundResult(
            node_id=self.node_id,
            round_no=self.round_no,
            outgoing=batches,
            derived=len(fresh),
            received=received,
            reasoning_time=reasoning_time,
            work=work,
        )
        self.round_no += 1
        return result

    def _route_encoded(self, triples: Sequence[Triple]) -> list[Message]:
        """Id-encoded routing: each fresh tuple is encoded exactly once;
        dedup and (for owner-table routers) destination lookups are int
        probes; a term's serialization ships to a given peer at most once,
        in the batch's delta-dictionary."""
        d = self.dictionary
        assert d is not None
        enc = d.encode
        base_size = d.base_size
        by_id = (
            self.router.destinations_by_id
            if getattr(self.router, "_subject_owner", None) is not None
            else None
        )
        rows_by_dest: dict[int, list[tuple[int, int, int]]] = {}
        delta_by_dest: dict[int, list[tuple[int, Term]]] = {}
        for t in triples:
            row = (enc(t.s), enc(t.p), enc(t.o))
            if row in self._sent:
                continue
            if by_id is not None:
                dests = by_id(self.node_id, row[0], row[2], t)
            else:
                dests = self.router.destinations(self.node_id, t)
            if not dests:
                continue
            self._sent.add(row)
            for dest in dests:
                rows_by_dest.setdefault(dest, []).append(row)
                if row[0] >= base_size or row[1] >= base_size or row[2] >= base_size:
                    known = self._known_by_dest.setdefault(dest, set())
                    for tid, term in zip(row, t):
                        if tid >= base_size and tid not in known:
                            known.add(tid)
                            delta_by_dest.setdefault(dest, []).append((tid, term))
        return [
            EncodedBatch.make(
                self.node_id, dest, self.round_no, rows,
                delta_by_dest.get(dest, ()),
            )
            for dest, rows in sorted(rows_by_dest.items())
        ]

    # -- id-native rounds -------------------------------------------------------

    def _step_rows(self, incoming: Iterable[Message]) -> RoundResult:
        """Id-native :meth:`step`: batches land as id columns, are
        canonicalized (two peers may have minted different ids for the same
        runtime term), membership-filtered against the columnar store, and
        fed to the columnar fixpoint — no term objects anywhere.

        The ``received`` count keeps the term path's semantics exactly:
        each incoming row is tested against the *pre-step* store, so a row
        arriving in two batches in the same round is counted twice, as the
        term path's per-triple graph test does.
        """
        d = self.dictionary
        idg = self._idgraph
        columnar = self._columnar
        assert d is not None and idg is not None and columnar is not None
        parts: list[Columns] = []
        removals: list[RemovalBatch] = []
        received = 0
        for batch in incoming:
            if isinstance(batch, RemovalBatch):
                removals.append(batch)
                continue
            if isinstance(batch, EncodedBatch):
                if batch.delta:
                    d.apply_delta(batch.delta)
                s = d.canonical_ids(batch.s_ids)
                p = d.canonical_ids(batch.p_ids)
                o = d.canonical_ids(batch.o_ids)
            else:
                triples = batch.triples
                s = d.encode_many(t.s for t in triples)
                p = d.encode_many(t.p for t in triples)
                o = d.encode_many(t.o for t in triples)
            if len(s) == 0:
                continue
            keep = ~idg.contains_rows(s, p, o)
            fresh_count = int(keep.sum())
            if fresh_count:
                parts.append((s[keep], p[keep], o[keep]))
                received += fresh_count
        watch = Stopwatch()
        extra: list[Message] = []
        work = 0
        if removals:
            extra, taken, od_work = self._ingest_removals(removals)
            received += taken
            work += od_work
        if parts:
            delta = _concat_columns(parts)
            fixpoint = columnar.run(idg, delta)
            self.engine_stats.merge(fixpoint.stats)
            fresh = fixpoint.inferred
            work += fixpoint.stats.work
        else:
            delta = None
            empty = np.empty(0, dtype=np.int64)
            fresh = (empty, empty, empty)
        reasoning_time = watch.elapsed()
        routable = fresh
        if self.forward_received and delta is not None:
            routable = _concat_columns([fresh, delta])
        return self._finish_round_rows(fresh, received=received,
                                       reasoning_time=reasoning_time,
                                       work=work, routable=routable,
                                       extra_outgoing=extra)

    def _finish_round_rows(
        self, fresh: Columns, received: int,
        reasoning_time: float, work: int,
        routable: Columns | None = None,
        extra_outgoing: list[Message] | None = None,
    ) -> RoundResult:
        rows = routable if routable is not None else fresh
        outgoing = self._route_rows(rows)
        if extra_outgoing:
            outgoing = extra_outgoing + outgoing
        result = RoundResult(
            node_id=self.node_id,
            round_no=self.round_no,
            outgoing=outgoing,
            derived=len(fresh[0]),
            received=received,
            reasoning_time=reasoning_time,
            work=work,
        )
        self.round_no += 1
        return result

    def _route_rows(self, rows: Columns) -> list[Message]:
        """Id-native routing: the hot path is two int dict probes per row
        (:meth:`DataPartitionRouter.destinations_by_id_cached`); a row's
        terms are decoded only on a cold cache (a term first seen this
        round) or for a router with no id tables at all."""
        d = self.dictionary
        assert d is not None
        base_size = d.base_size
        router = self.router
        warm = getattr(router, "_subject_owner", None) is not None
        cached = getattr(router, "destinations_by_id_cached", None) if warm else None
        by_id = getattr(router, "destinations_by_id", None) if warm else None
        rows_by_dest: dict[int, list[tuple[int, int, int]]] = {}
        delta_by_dest: dict[int, list[tuple[int, Term]]] = {}
        sent = self._sent
        for s, p, o in zip(rows[0].tolist(), rows[1].tolist(), rows[2].tolist()):
            row = (s, p, o)
            if row in sent:
                continue
            dests = cached(self.node_id, s, o) if cached is not None else None
            if dests is None:
                t = Triple(d.decode(s), d.decode(p), d.decode(o))
                if by_id is not None:
                    dests = by_id(self.node_id, s, o, t)
                else:
                    dests = router.destinations(self.node_id, t)
            if not dests:
                continue
            sent.add(row)
            for dest in dests:
                rows_by_dest.setdefault(dest, []).append(row)
                if s >= base_size or p >= base_size or o >= base_size:
                    known = self._known_by_dest.setdefault(dest, set())
                    for tid in row:
                        if tid >= base_size and tid not in known:
                            known.add(tid)
                            delta_by_dest.setdefault(dest, []).append(
                                (tid, d.decode(tid)))
        return [
            EncodedBatch.make(
                self.node_id, dest, self.round_no, dest_rows,
                delta_by_dest.get(dest, ()),
            )
            for dest, dest_rows in sorted(rows_by_dest.items())
        ]

    # -- distributed query answering (id-native only) ----------------------------

    def begin_query_session(self) -> None:
        """Reset the ship-once delta bookkeeping for coordinator-bound
        query answers.  Each :class:`~repro.parallel.query.
        DistributedQueryEngine` gather starts from a blank coordinator
        dictionary, so the first answers of a session must re-ship every
        non-base result id's term."""
        self._known_by_dest.pop(QUERY_DEST, None)

    def answer_pattern(
        self,
        pattern: Atom,
        bound_ids: Mapping[int, np.ndarray] | None = None,
        delta: Sequence[tuple[int, Term]] = (),
    ) -> tuple[EncodedBatch, int]:
        """Local matches for one triple pattern, as an id-encoded batch —
        the scatter half of the distributed query fast path.

        ``delta`` registers coordinator-shipped ``(id, term)`` pairs so
        the ``bound_ids`` semi-join sets (pattern position -> candidate
        ids in the coordinator's space) translate into this worker's id
        space.  The smallest set is pushed *into* the index probe — one
        batched range lookup over its candidates — and the rest filter
        the surfaced rows by sorted-set membership, so only rows that can
        still join at the coordinator are shipped back.  Result ids
        outside the base stripe travel with a delta-dictionary entry at
        most once per query session (:meth:`begin_query_session`).

        Returns ``(batch, probes)``: ``probes`` counts the candidate rows
        the index surfaced before any filtering, the same work unit the
        term-level scatter reports.
        """
        if not self.id_native:
            raise RuntimeError(
                "answer_pattern requires an id-native columnar worker "
                "(engine='columnar' with the id wire protocol)")
        d = self.dictionary
        idg = self._idgraph
        assert d is not None and idg is not None
        if delta:
            d.apply_delta(delta)
        empty = np.empty(0, dtype=np.int64)

        def batch_of(s: np.ndarray, p: np.ndarray, o: np.ndarray,
                     probes: int) -> tuple[EncodedBatch, int]:
            out_delta: list[tuple[int, Term]] = []
            base_size = d.base_size
            nonbase = np.concatenate(
                [s[s >= base_size], p[p >= base_size], o[o >= base_size]])
            if len(nonbase):
                known = self._known_by_dest.setdefault(QUERY_DEST, set())
                for tid in np.unique(nonbase).tolist():
                    if tid not in known:
                        known.add(tid)
                        out_delta.append((tid, d.decode(tid)))
            return (
                EncodedBatch(self.node_id, QUERY_DEST, self.round_no,
                             s, p, o, tuple(out_delta)),
                probes,
            )

        # Constant positions: a term this partition's dictionary has
        # never seen cannot occur in its store.
        const_items: list[tuple[int, int]] = []
        var_first: dict[Variable, int] = {}
        dup_checks: list[tuple[int, int]] = []
        for pos, term in enumerate(pattern):
            if isinstance(term, Variable):
                if term in var_first:
                    dup_checks.append((pos, var_first[term]))
                else:
                    var_first[term] = pos
            else:
                tid = d.get(term)
                if tid is None:
                    return batch_of(empty, empty, empty, 0)
                const_items.append((pos, tid))

        # Semi-join sets, translated to local ids.  Sets stay sorted
        # (np.unique) for the membership filter below.
        sets: dict[int, np.ndarray] = {}
        for pos, ids in (bound_ids or {}).items():
            sets[pos] = np.unique(
                d.canonical_ids(np.asarray(ids, dtype=np.int64)))

        if sets:
            anchor_pos = min(sets, key=lambda pos: len(sets[pos]))
            anchor = sets.pop(anchor_pos)
            if len(anchor) == 0:
                return batch_of(empty, empty, empty, 0)
            items = [(anchor_pos, anchor)] + [
                (pos, np.full(len(anchor), tid, dtype=np.int64))
                for pos, tid in const_items
            ]
        elif const_items:
            items = [(pos, np.asarray([tid], dtype=np.int64))
                     for pos, tid in const_items]
        else:
            items = []

        if items:
            items.sort(key=lambda item: item[0])
            vals, reps = idg.probe(
                tuple(pos for pos, _col in items),
                tuple(col for _pos, col in items),
            )
            probes = len(reps)
        else:
            vals = idg.columns()
            probes = len(vals[0])
        if len(vals[0]) and (sets or dup_checks):
            mask = np.ones(len(vals[0]), dtype=bool)
            for pos, members in sets.items():
                mask &= member_mask(members, vals[pos])
            for pos, first in dup_checks:
                mask &= vals[pos] == vals[first]
            vals = (vals[0][mask], vals[1][mask], vals[2][mask])
        return batch_of(vals[0], vals[1], vals[2], probes)

    @property
    def store_version(self) -> int:
        """The columnar store's monotone row-set version (id-native only)
        — the serving tier's result-cache key: it moves exactly when the
        store's logical row set changes."""
        if self._idgraph is None:
            raise RuntimeError("store_version requires an id-native worker")
        return self._idgraph.version

    def apply_closure_delta(
        self,
        adds: Iterable[Triple] = (),
        removes: Iterable[Triple] = (),
    ) -> tuple[int, int]:
        """Edit the local closure store directly (the serving tier's
        update propagation: the coordinator runs DRed over the
        authoritative KB and pushes the *net* closure delta here).

        ``adds`` are encoded (minting local ids as needed) and inserted;
        ``removes`` are looked up without minting — a term this worker's
        dictionary has never seen cannot occur in its store, so such rows
        are skipped.  Returns ``(rows added, rows removed)``; the store's
        version counter moves iff the row set changed, which is what
        invalidates version-keyed result caches.
        """
        if not self.id_native:
            raise RuntimeError(
                "apply_closure_delta requires an id-native columnar worker")
        d = self.dictionary
        idg = self._idgraph
        assert d is not None and idg is not None
        removed = 0
        rm_rows: list[tuple[int, int, int]] = []
        for t in removes:
            s_id, p_id, o_id = d.get(t.s), d.get(t.p), d.get(t.o)
            if s_id is None or p_id is None or o_id is None:
                continue
            rm_rows.append((s_id, p_id, o_id))
        if rm_rows:
            arr = np.asarray(rm_rows, dtype=np.int64)
            removed = idg.delete_rows(
                arr[:, 0].copy(), arr[:, 1].copy(), arr[:, 2].copy())
        added = 0
        add_list = list(adds)
        if add_list:
            enc = d.encode
            s_arr = np.asarray([enc(t.s) for t in add_list], dtype=np.int64)
            p_arr = np.asarray([enc(t.p) for t in add_list], dtype=np.int64)
            o_arr = np.asarray([enc(t.o) for t in add_list], dtype=np.int64)
            fresh = idg.add_rows(s_arr, p_arr, o_arr)
            added = len(fresh[0])
        return added, removed

    # -- distributed DRed (id-native only) --------------------------------------

    def _ingest_removals(
        self, batches: Sequence[RemovalBatch]
    ) -> tuple[list[Message], int, int]:
        """DRed phase 1, this node's share: canonicalize the received
        removal rows, drop user-retracted rows from the asserted base,
        run the overdeletion fixpoint against the **unmutated** local
        store (nothing is physically deleted until
        :meth:`finalize_removals`), and broadcast the locally discovered
        cascade to every peer.  Overdeletions travel by *broadcast*, not
        ownership: a derived row's replicas may live on any node that
        ever derived or received it, and all of them must mark it.
        Receiver-side dedup (rows already in the local overdeleted set
        are dropped) makes the echo converge.

        Returns ``(outgoing broadcasts, rows newly marked from the
        batches, overdeletion work)``.
        """
        d = self.dictionary
        idg = self._idgraph
        columnar = self._columnar
        over = self._overdeleted
        if not self.id_native:
            raise RuntimeError(
                "removal batches require an id-native columnar worker "
                "(engine='columnar' with the id wire protocol)"
            )
        assert (d is not None and idg is not None and columnar is not None
                and over is not None and self._base_rows is not None)
        from repro.datalog import incremental

        parts: list[Columns] = []
        taken = 0
        for batch in batches:
            if batch.delta:
                d.apply_delta(batch.delta)
            s = d.canonical_ids(batch.s_ids)
            p = d.canonical_ids(batch.p_ids)
            o = d.canonical_ids(batch.o_ids)
            if len(s) == 0:
                continue
            if batch.retract_base:
                self._base_rows.delete_rows(s, p, o)
            fresh = idg.contains_rows(s, p, o) & ~over.contains_rows(s, p, o)
            taken += int(fresh.sum())
            parts.append((s, p, o))
        if not parts:
            return [], 0, 0
        seed = _concat_columns(parts)
        stats = EngineStats()
        cascade = incremental.overdelete_id(columnar, idg, seed, over, stats)
        self.engine_stats.merge(stats)
        return self._broadcast_removals(cascade), taken, stats.work

    def _broadcast_removals(self, rows: Columns) -> list[Message]:
        """One :class:`RemovalBatch` per peer (``retract_base=False`` —
        a propagated cascade never touches anyone's asserted base).  The
        delta-dictionary bookkeeping mirrors :meth:`_route_rows`: a peer
        may be told to delete a row whose terms it has never decoded."""
        if len(rows[0]) == 0:
            return []
        d = self.dictionary
        assert d is not None
        base_size = d.base_size
        k = getattr(self.router, "k", None)
        assert k is not None, "removal broadcast needs a router with .k"
        row_list = list(zip(rows[0].tolist(), rows[1].tolist(),
                            rows[2].tolist()))
        out: list[Message] = []
        for dest in range(k):
            if dest == self.node_id:
                continue
            delta: list[tuple[int, Term]] = []
            known = self._known_by_dest.setdefault(dest, set())
            for row in row_list:
                for tid in row:
                    if tid >= base_size and tid not in known:
                        known.add(tid)
                        delta.append((tid, d.decode(tid)))
            out.append(RemovalBatch.from_columns(
                self.node_id, dest, self.round_no, rows, delta))
        return out

    def finalize_removals(self) -> RoundResult:
        """DRed phases 2-4, this node's share — called by the master
        once the cluster-wide overdeletion has reached quiescence (the
        counting ledger drained with no removal batch in flight):

        * physically delete the overdeleted rows from the local store;
        * evict them from the sent-dedup — every peer deleted its copy
          too, so a row restored here must be allowed to re-ship;
        * rederive survivors (still-asserted rows, one-step derivable
          rows) from the local remnant and re-close over them;
        * route the restored rows exactly like fresh derivations — the
          subsequent normal drain restores the cross-node closure the
          same way the original fixpoint built it.
        """
        idg = self._idgraph
        columnar = self._columnar
        over = self._overdeleted
        if not self.id_native:
            raise RuntimeError(
                "finalize_removals requires an id-native columnar worker")
        assert (idg is not None and columnar is not None and over is not None
                and self._base_rows is not None)
        from repro.datalog import incremental

        watch = Stopwatch()
        empty = np.empty(0, dtype=np.int64)
        fresh: Columns = (empty, empty, empty)
        stats = EngineStats()
        if len(over):
            o_s, o_p, o_o = over.columns()
            sent = self._sent
            for row in zip(o_s.tolist(), o_p.tolist(), o_o.tolist()):
                sent.discard(row)
            seed = incremental.rederive_id(
                columnar, idg, over, self._base_rows, stats)
            if len(seed):
                fixpoint = columnar.run(idg, delta=seed.columns())
                stats.merge(fixpoint.stats)
                fresh = _concat_columns([seed.columns(), fixpoint.inferred])
            self._overdeleted = IdGraph()
            self.engine_stats.merge(stats)
        reasoning_time = watch.elapsed()
        return self._finish_round_rows(
            fresh, received=0, reasoning_time=reasoning_time,
            work=stats.work)

    # -- results ---------------------------------------------------------------

    def output_graph(self) -> Graph:
        """This node's final KB (base + received + inferred).  The
        id-native worker decodes its columnar store here — the single
        id -> term materialization point of a run."""
        if self.id_native:
            assert self.dictionary is not None and self._idgraph is not None
            s, p, o = self._idgraph.columns()
            d = self.dictionary
            out = Graph()
            for st, pt, ot in zip(
                d.decode_many(s), d.decode_many(p), d.decode_many(o)
            ):
                out.add(Triple(st, pt, ot))
            return out
        return self.graph
