"""Run statistics: everything the experiments need to rebuild the paper's
figures — per-node per-round reasoning times, message volumes, and the
derived reasoning/IO/sync/aggregation breakdown (Fig 2's four series).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeRoundStats:
    """One node's measurements for one round."""

    node_id: int
    round_no: int
    reasoning_time: float
    work: int
    derived: int
    received_tuples: int
    sent_tuples: int
    sent_bytes: int
    received_bytes: int
    sent_messages: int


@dataclass
class AsyncRunStats:
    """Accounting for one asynchronous (round-free) run.

    There are no rounds to tabulate; what matters is total wire traffic —
    messages relayed, tuple rows, payload bytes, delta-dictionary entries
    shipped — plus per-node delivery counts (how unevenly the inbox load
    spread), which the cost models consume in place of Fig 2's per-round
    series.

    Fault-tolerance accounting rides along: every
    :class:`~repro.parallel.supervisor.WorkerFailure` the supervisor
    converted into a recovery (or an abort) lands in ``failures`` as a
    :class:`~repro.parallel.supervisor.FailureRecord`, ``retries`` counts
    recovery attempts, and ``retransmitted`` counts ledger-replayed
    batches (relayed again, but not new wire traffic in ``messages``).
    """

    k: int
    messages: int = 0
    tuples: int = 0
    payload_bytes: int = 0
    delta_terms: int = 0
    #: Messages delivered to each node.
    deliveries: list[int] = field(default_factory=list)
    #: One FailureRecord per WorkerFailure event observed.
    failures: list = field(default_factory=list)
    #: Recovery attempts performed (<= the policy's max_retries).
    retries: int = 0
    #: Batches re-delivered from the relay ledger (recovery replay and
    #: dropped-batch retransmission).
    retransmitted: int = 0

    def __post_init__(self) -> None:
        if not self.deliveries:
            self.deliveries = [0] * self.k

    @property
    def worker_failures(self) -> int:
        return len(self.failures)

    def record_batch(self, batch) -> None:
        """Account one relayed batch (TupleBatch or EncodedBatch)."""
        self.messages += 1
        self.tuples += len(batch)
        self.payload_bytes += batch.payload_bytes()
        self.delta_terms += len(getattr(batch, "delta", ()))
        self.deliveries[batch.dest] += 1

    def record_failure(self, record) -> None:
        """Account one WorkerFailure event (a FailureRecord)."""
        self.failures.append(record)


@dataclass
class RunStats:
    """Per-round, per-node measurements of a full parallel run.

    ``rounds[r][i]`` is node i's stats in round r.  Aggregation helpers
    fold these into the per-node and per-run numbers the experiments print.
    """

    k: int
    rounds: list[list[NodeRoundStats]] = field(default_factory=list)
    aggregation_time: float = 0.0
    partition_time: float = 0.0

    # -- foldings -------------------------------------------------------------

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def reasoning_time_per_node(self) -> list[float]:
        out = [0.0] * self.k
        for round_stats in self.rounds:
            for s in round_stats:
                out[s.node_id] += s.reasoning_time
        return out

    def work_per_node(self) -> list[int]:
        out = [0] * self.k
        for round_stats in self.rounds:
            for s in round_stats:
                out[s.node_id] += s.work
        return out

    def bytes_per_node(self) -> list[tuple[int, int]]:
        """(sent, received) byte totals per node."""
        out = [(0, 0)] * self.k
        for round_stats in self.rounds:
            for s in round_stats:
                sent, recv = out[s.node_id]
                out[s.node_id] = (sent + s.sent_bytes, recv + s.received_bytes)
        return out

    def messages_per_node(self) -> list[int]:
        out = [0] * self.k
        for round_stats in self.rounds:
            for s in round_stats:
                out[s.node_id] += s.sent_messages
        return out

    def total_tuples_communicated(self) -> int:
        return sum(s.sent_tuples for r in self.rounds for s in r)

    def total_derived(self) -> int:
        return sum(s.derived for r in self.rounds for s in r)
