"""Run-trace export: RunStats / AsyncRunStats to CSV/JSON for offline
analysis.

The experiment harness prints the aggregate figures; anyone studying the
runtime (per-round load curves, traffic matrices, migration effects) wants
the raw per-node per-round records.  This module serializes
:class:`~repro.parallel.stats.RunStats` losslessly in both formats and
reloads the JSON form, so traces can be archived next to the experiment
CSVs and replayed through :class:`~repro.parallel.simulated.SimulatedCluster`
(via ``reconstruct``) under different cost models later.

The asynchronous runtime's :class:`~repro.parallel.stats.AsyncRunStats`
has its own JSON pair (:func:`async_stats_to_json` /
:func:`async_stats_from_json`), including the fault-tolerance ledger —
every :class:`~repro.parallel.supervisor.FailureRecord`, the retry count,
and the retransmitted-batch count — which the fault-injection tests
archive as a CI artifact.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.parallel.stats import AsyncRunStats, NodeRoundStats, RunStats
from repro.parallel.supervisor import FailureRecord

#: CSV column order (stable; new fields append).
CSV_COLUMNS = (
    "round_no",
    "node_id",
    "reasoning_time",
    "work",
    "derived",
    "received_tuples",
    "sent_tuples",
    "sent_bytes",
    "received_bytes",
    "sent_messages",
)


def stats_to_csv(stats: RunStats) -> str:
    """One row per (round, node), plus a header."""
    lines = [",".join(CSV_COLUMNS)]
    for round_stats in stats.rounds:
        for s in sorted(round_stats, key=lambda e: e.node_id):
            lines.append(
                ",".join(
                    str(getattr(s, column)) for column in CSV_COLUMNS
                )
            )
    return "\n".join(lines) + "\n"


def stats_to_json(stats: RunStats) -> str:
    """Lossless JSON document (round-trips via :func:`stats_from_json`)."""
    payload: Mapping = {
        "k": stats.k,
        "partition_time": stats.partition_time,
        "aggregation_time": stats.aggregation_time,
        "rounds": [
            [
                {column: getattr(s, column) for column in CSV_COLUMNS}
                for s in sorted(round_stats, key=lambda e: e.node_id)
            ]
            for round_stats in stats.rounds
        ],
    }
    return json.dumps(payload, indent=2)


def stats_from_json(document: str) -> RunStats:
    """Inverse of :func:`stats_to_json`."""
    payload = json.loads(document)
    stats = RunStats(
        k=int(payload["k"]),
        partition_time=float(payload.get("partition_time", 0.0)),
        aggregation_time=float(payload.get("aggregation_time", 0.0)),
    )
    for round_payload in payload["rounds"]:
        stats.rounds.append(
            [
                NodeRoundStats(
                    node_id=int(e["node_id"]),
                    round_no=int(e["round_no"]),
                    reasoning_time=float(e["reasoning_time"]),
                    work=int(e["work"]),
                    derived=int(e["derived"]),
                    received_tuples=int(e["received_tuples"]),
                    sent_tuples=int(e["sent_tuples"]),
                    sent_bytes=int(e["sent_bytes"]),
                    received_bytes=int(e["received_bytes"]),
                    sent_messages=int(e["sent_messages"]),
                )
                for e in round_payload
            ]
        )
    return stats


def async_stats_to_json(stats: AsyncRunStats) -> str:
    """Lossless JSON for one asynchronous run's accounting, failures
    included (round-trips via :func:`async_stats_from_json`)."""
    payload: Mapping = {
        "k": stats.k,
        "messages": stats.messages,
        "tuples": stats.tuples,
        "payload_bytes": stats.payload_bytes,
        "delta_terms": stats.delta_terms,
        "deliveries": list(stats.deliveries),
        "retries": stats.retries,
        "retransmitted": stats.retransmitted,
        "failures": [record.to_dict() for record in stats.failures],
    }
    return json.dumps(payload, indent=2)


def async_stats_from_json(document: str) -> AsyncRunStats:
    """Inverse of :func:`async_stats_to_json`."""
    payload = json.loads(document)
    stats = AsyncRunStats(
        k=int(payload["k"]),
        messages=int(payload.get("messages", 0)),
        tuples=int(payload.get("tuples", 0)),
        payload_bytes=int(payload.get("payload_bytes", 0)),
        delta_terms=int(payload.get("delta_terms", 0)),
        deliveries=[int(d) for d in payload.get("deliveries", [])],
        retries=int(payload.get("retries", 0)),
        retransmitted=int(payload.get("retransmitted", 0)),
    )
    for record_payload in payload.get("failures", []):
        stats.failures.append(FailureRecord.from_dict(record_payload))
    return stats
