"""Deterministic fault injection for the parallel runtime.

Two injection surfaces, matching the two executors:

* **In-process** (:func:`repro.parallel.async_backend.run_async_inprocess`)
  — a :class:`FaultPlan` drives per-channel and per-node faults with full
  determinism: kill or freeze a worker after it has consumed N messages,
  and drop, duplicate, or delay the N-th batch of a (sender, dest)
  channel.  Because the executor owns delivery, every schedule is exactly
  reproducible, which makes the recovery path unit-testable.
* **Multiprocess** — an environment-triggered ``os._exit`` point
  (:func:`maybe_crash`) inside :meth:`PartitionWorker.step
  <repro.parallel.worker.PartitionWorker.step>`.  Setting
  ``REPRO_FAULT_KILL="<node_id>:<nth_step>"`` in the master's environment
  makes that node's process hard-exit on its n-th step call (1-based),
  under both ``fork`` and ``spawn`` (children inherit the environment
  either way).  Replacement workers run at ``epoch >= 1`` and are immune,
  so an injected crash fires exactly once per run.

Fault semantics and why recovery masks them (DESIGN.md §8):

* ``kill`` / ``freeze`` — the node's unacknowledged messages never drain;
  the supervisor converts the stall into a
  :class:`~repro.parallel.supervisor.WorkerFailure` and, under
  ``degrade="recover"``, replays the master's relay ledger into a fresh
  worker.
* ``drop`` — the batch is counted as forwarded but never delivered; the
  counting ledger's imbalance is detected when nothing else is deliverable
  and the batch is retransmitted from the ledger.
* ``duplicate`` — two wire copies, both counted and both consumed;
  receiver-side graph dedup makes the second a no-op.
* ``delay`` — the channel is held for N delivery steps.  Order *within*
  the channel is preserved (the wire protocol's FIFO-per-channel
  assumption, which delta dictionaries rely on); only cross-channel
  arrival order shifts, which the fixpoint must tolerate anyway.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

#: ``"<node_id>:<nth_step>"`` — hard-exit that node on its n-th step call.
KILL_ENV = "REPRO_FAULT_KILL"

_ACTIONS = ("drop", "duplicate", "delay")


@dataclass(frozen=True)
class ChannelFault:
    """One fault on one channel: act on the ``index``-th batch (0-based)
    emitted on the (sender, dest) channel."""

    sender: int
    dest: int
    index: int
    action: str
    #: For ``action="delay"``: hold the channel this many delivery steps.
    delay: int = 5

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown channel fault action {self.action!r}; "
                f"expected one of {_ACTIONS}"
            )


@dataclass
class FaultPlan:
    """A deterministic schedule of faults for one in-process run.

    >>> plan = FaultPlan(kill_after={1: 2})
    >>> plan.kill_after[1]
    2
    >>> FaultPlan(channel=[ChannelFault(0, 1, 0, "drop")]).channel_fault((0, 1), 0).action
    'drop'
    """

    #: node -> crash while consuming its (N+1)-th delivered message
    #: (0-based count == N at delivery time).
    kill_after: Mapping[int, int] = field(default_factory=dict)
    #: node -> stop consuming at the same trigger point (process lives on).
    freeze_after: Mapping[int, int] = field(default_factory=dict)
    channel: Sequence[ChannelFault] = ()

    def __post_init__(self) -> None:
        self._by_key = {
            (f.sender, f.dest, f.index): f for f in self.channel
        }

    def channel_fault(self, key: tuple[int, int], index: int) -> ChannelFault | None:
        """The fault scheduled for the ``index``-th batch on channel
        ``key``, if any."""
        return self._by_key.get((key[0], key[1], index))

    def any_faults(self) -> bool:
        return bool(self.kill_after or self.freeze_after or self.channel)


def env_kill_plan() -> tuple[int, int] | None:
    """Parse :data:`KILL_ENV` into ``(node_id, nth_step)``, or ``None``."""
    raw = os.environ.get(KILL_ENV)
    if not raw:
        return None
    try:
        node_text, step_text = raw.split(":", 1)
        return int(node_text), int(step_text)
    except ValueError as exc:
        raise ValueError(
            f"{KILL_ENV} must be '<node_id>:<nth_step>', got {raw!r}"
        ) from exc


def maybe_crash(node_id: int, epoch: int, steps: int) -> None:
    """The multiprocess injection point (called from the worker's step
    path).  Hard-exits — no cleanup, no queue flush, exactly like a real
    crash — when the env-configured node reaches its n-th step at epoch 0.
    """
    if epoch != 0:
        return  # replacements are immune: a crash injects once per run
    plan = env_kill_plan()
    if plan is not None and plan[0] == node_id and steps >= plan[1]:
        from repro.parallel.supervisor import INJECTED_EXIT_CODE

        os._exit(INJECTED_EXIT_CODE)
