"""Inter-partition message types.

Two payload kinds:

* :class:`TupleBatch` — triples as term objects, sized by their N-Triples
  serialization.  The original text-based wire format; still the payload
  of the shared-file backend and the lock-step differential oracle.
* :class:`EncodedBatch` — triples as three parallel int64 id columns plus
  a *delta-dictionary* (the ``(id, term)`` pairs the receiver has not seen
  yet).  The id-encoded wire format of the asynchronous runtime: a tuple
  costs 24 bytes on the wire, and a term's serialization travels at most
  once per (sender, receiver) pair.

Both cache their payload size at first computation — cost models call
``payload_bytes()`` repeatedly, and re-serializing every triple per call
made that quadratic in practice.

Plus the typed *control messages* of the supervised multiprocess
protocol (master <-> worker queues).  Worker-originated messages carry
the logical node id and an *epoch*: recovery re-runs a lost node as a
fresh incarnation with a bumped epoch, and the master discards anything
stamped with an older one — a message from a dead incarnation can still
be sitting in the outbox when its replacement boots, and must never
corrupt the termination ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.rdf.ntriples import triple_to_ntriples
from repro.rdf.terms import Term
from repro.rdf.triple import Triple

#: Wire cost of one id-encoded tuple: three little-endian int64 columns.
ROW_BYTES = 24
#: Per-entry framing overhead of a delta-dictionary record: the 8-byte id
#: plus a length prefix for the term's serialized form.
DELTA_ENTRY_OVERHEAD = 12


class Message(Protocol):
    """What every wire message exposes to transports and cost models."""

    sender: int
    dest: int
    round_no: int

    def __len__(self) -> int: ...

    def payload_bytes(self) -> int: ...


class SupportsDecode(Protocol):
    """What :meth:`EncodedBatch.decode` needs from a dictionary."""

    def apply_delta(self, delta: Sequence[tuple[int, Term]]) -> None: ...

    def decode(self, term_id: int) -> Term: ...

    def decode_many(self, ids: np.ndarray) -> list[Term]: ...


@dataclass(frozen=True)
class TupleBatch:
    """A batch of tuples in flight from ``sender`` to ``dest``."""

    sender: int
    dest: int
    round_no: int
    triples: tuple[Triple, ...]
    #: Cached N-Triples serialization (computed once, lazily).
    _serialized: str | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def make(
        cls, sender: int, dest: int, round_no: int, triples: Sequence[Triple]
    ) -> "TupleBatch":
        return cls(sender=sender, dest=dest, round_no=round_no, triples=tuple(triples))

    def __len__(self) -> int:
        return len(self.triples)

    def payload_bytes(self) -> int:
        """Serialized size (N-Triples, one line per tuple, newline
        included) — the unit every cost model consumes.  O(1) after the
        first call."""
        return len(self.serialize())

    def serialize(self) -> str:
        cached = self._serialized
        if cached is None:
            cached = "".join(triple_to_ntriples(t) + "\n" for t in self.triples)
            # Frozen dataclass: the cache slot is set through the back
            # door; it is derived state, invisible to eq/repr.
            object.__setattr__(self, "_serialized", cached)
        return cached


class EncodedBatch:
    """A batch of id-encoded tuples plus the delta-dictionary to read them.

    ``s_ids``/``p_ids``/``o_ids`` are parallel int64 columns; row i is one
    triple.  ``delta`` carries the ``(id, term)`` pairs for ids the
    destination cannot yet decode — newly minted terms ship exactly once
    per peer, enforced by the sender's per-destination bookkeeping
    (:class:`repro.parallel.worker.PartitionWorker`).  Ship-once requires
    FIFO (sender, dest) channels: a later batch may reference an id whose
    delta entry traveled in an earlier one.  Queue and MPI transports
    guarantee this; only cross-channel arrival order is unconstrained.

    The payload size is fixed at construction: 24 bytes per row plus the
    delta entries' serialized terms — by design O(1) to query, since the
    async master asks for it on every relay.
    """

    __slots__ = ("sender", "dest", "round_no", "s_ids", "p_ids", "o_ids",
                 "delta", "_payload_bytes")

    def __init__(
        self,
        sender: int,
        dest: int,
        round_no: int,
        s_ids: np.ndarray,
        p_ids: np.ndarray,
        o_ids: np.ndarray,
        delta: tuple[tuple[int, Term], ...] = (),
    ) -> None:
        if not (len(s_ids) == len(p_ids) == len(o_ids)):
            raise ValueError("id columns must have equal length")
        self.sender = sender
        self.dest = dest
        self.round_no = round_no
        self.s_ids = s_ids
        self.p_ids = p_ids
        self.o_ids = o_ids
        self.delta = tuple(delta)
        self._payload_bytes = ROW_BYTES * len(s_ids) + sum(
            DELTA_ENTRY_OVERHEAD + len(term.n3().encode("utf-8"))
            for _tid, term in self.delta
        )

    @classmethod
    def make(
        cls,
        sender: int,
        dest: int,
        round_no: int,
        rows: Sequence[tuple[int, int, int]],
        delta: Sequence[tuple[int, Term]] = (),
    ) -> "EncodedBatch":
        """Build from ``(s_id, p_id, o_id)`` rows."""
        if rows:
            arr = np.asarray(rows, dtype=np.int64)
            s_ids, p_ids, o_ids = arr[:, 0], arr[:, 1], arr[:, 2]
        else:
            s_ids = p_ids = o_ids = np.empty(0, dtype=np.int64)
        return cls(sender, dest, round_no, s_ids, p_ids, o_ids, tuple(delta))

    def __len__(self) -> int:
        return len(self.s_ids)

    def payload_bytes(self) -> int:
        return self._payload_bytes

    def rows(self) -> list[tuple[int, int, int]]:
        """The id rows as Python int tuples (dedup/test helper)."""
        return list(
            zip(
                (int(i) for i in self.s_ids),
                (int(i) for i in self.p_ids),
                (int(i) for i in self.o_ids),
            )
        )

    def decode(self, dictionary: "SupportsDecode") -> list[Triple]:
        """Materialize term-level triples.  Registers this batch's delta
        into ``dictionary`` (a :class:`~repro.rdf.dictionary.PartitionDictionary`
        or anything with ``apply_delta``/``decode``) first, so rows are
        always decodable."""
        if self.delta:
            dictionary.apply_delta(self.delta)
        subjects = dictionary.decode_many(self.s_ids)
        predicates = dictionary.decode_many(self.p_ids)
        objects = dictionary.decode_many(self.o_ids)
        return [Triple(s, p, o) for s, p, o in zip(subjects, predicates, objects)]

    def __repr__(self) -> str:
        return (
            f"<EncodedBatch {self.sender}->{self.dest} round={self.round_no} "
            f"rows={len(self)} delta={len(self.delta)}>"
        )


class RemovalBatch(EncodedBatch):
    """An id-encoded batch of rows to *delete* — the wire payload of
    distributed DRed's overdeletion phase.

    Same columns/delta layout and payload accounting as its parent (the
    delta-dictionary matters here too: a removal may reference a term
    the receiver has never decoded, e.g. when removals are broadcast to
    nodes that never held the row).  Removals are a *data* payload, not
    a control message, so this type is deliberately absent from the
    ``CONTROL_MESSAGES`` registries.  Receivers must dispatch on it
    *before* :class:`EncodedBatch` — ``isinstance`` matches the parent
    too.

    ``retract_base`` distinguishes a user retraction (the initial
    master broadcast: receivers also drop matching rows from their
    asserted base) from a propagated overdeletion cascade (receivers
    treat the rows as derived-only; the asserted base is untouched).
    """

    __slots__ = ("retract_base",)

    def __init__(
        self,
        sender: int,
        dest: int,
        round_no: int,
        s_ids: np.ndarray,
        p_ids: np.ndarray,
        o_ids: np.ndarray,
        delta: tuple[tuple[int, Term], ...] = (),
        retract_base: bool = False,
    ) -> None:
        super().__init__(sender, dest, round_no, s_ids, p_ids, o_ids, delta)
        self.retract_base = retract_base

    @classmethod
    def from_columns(
        cls,
        sender: int,
        dest: int,
        round_no: int,
        columns: tuple[np.ndarray, np.ndarray, np.ndarray],
        delta: Sequence[tuple[int, Term]] = (),
        retract_base: bool = False,
    ) -> "RemovalBatch":
        return cls(sender, dest, round_no, columns[0], columns[1],
                   columns[2], tuple(delta), retract_base)

    def __repr__(self) -> str:
        return (
            f"<RemovalBatch {self.sender}->{self.dest} "
            f"round={self.round_no} rows={len(self)} "
            f"retract_base={self.retract_base}>"
        )


# -- control messages (supervised multiprocess protocol) ----------------------


@dataclass(frozen=True)
class Heartbeat:
    """Worker -> master liveness ping, sent whenever an idle inbox poll
    times out.  Carries the cumulative consumed count so a heartbeat also
    refreshes the supervisor's view of the node's progress."""

    node_id: int
    epoch: int
    consumed: int


@dataclass(frozen=True)
class Produced:
    """Worker -> master: one processed inbox message's productions plus
    the acknowledgement (cumulative consumed count) the counting
    termination relies on.  Ack and productions travel together — the
    master can never observe the ack without the productions in hand."""

    node_id: int
    epoch: int
    batches: tuple
    consumed: int


@dataclass(frozen=True)
class OutputMsg:
    """Worker -> master: one logical node's final KB."""

    node_id: int
    epoch: int
    triples: tuple


@dataclass(frozen=True)
class Deliver:
    """Master -> worker: one relayed batch (dispatched inside the process
    by ``batch.dest``, since a process may host adopted nodes)."""

    batch: object


@dataclass(frozen=True)
class Adopt:
    """Master -> worker: host a lost node.  ``config`` is the dead node's
    (picklable) spawn configuration; the master follows with the node's
    full relay log as ordinary :class:`Deliver` messages."""

    node_id: int
    epoch: int
    config: object


@dataclass(frozen=True)
class Finish:
    """Master -> worker: report every hosted node's output (the worker
    keeps running — recovery may still need it)."""


@dataclass(frozen=True)
class Stop:
    """Master -> worker: outputs are safely gathered; exit now."""


#: The control-protocol registries, by direction.  These are the single
#: source of truth the protocol verifier (:mod:`repro.analysis.protocol`)
#: checks the declarative state-machine spec against: adding a message
#: type here without teaching the spec — or the handlers — about it is a
#: *spec drift* finding, not a silent gap discovered as a hang.
MASTER_TO_WORKER: tuple[type, ...] = (Deliver, Adopt, Finish, Stop)
WORKER_TO_MASTER: tuple[type, ...] = (Produced, OutputMsg, Heartbeat)
CONTROL_MESSAGES: tuple[type, ...] = MASTER_TO_WORKER + WORKER_TO_MASTER
