"""Inter-partition message types.

One message kind suffices for Algorithm 3: a batch of fresh tuples from one
node to another, tagged with the sender's round.  Size accounting uses the
N-Triples serialization length — the actual on-the-wire format of the file
backend, and a fair proxy for any text-based IPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.rdf.ntriples import triple_to_ntriples
from repro.rdf.triple import Triple


@dataclass(frozen=True)
class TupleBatch:
    """A batch of tuples in flight from ``sender`` to ``dest``."""

    sender: int
    dest: int
    round_no: int
    triples: tuple[Triple, ...]

    @classmethod
    def make(
        cls, sender: int, dest: int, round_no: int, triples: Sequence[Triple]
    ) -> "TupleBatch":
        return cls(sender=sender, dest=dest, round_no=round_no, triples=tuple(triples))

    def __len__(self) -> int:
        return len(self.triples)

    def payload_bytes(self) -> int:
        """Serialized size (N-Triples, one line per tuple, newline
        included) — the unit every cost model consumes."""
        return sum(len(triple_to_ntriples(t)) + 1 for t in self.triples)

    def serialize(self) -> str:
        return "".join(triple_to_ntriples(t) + "\n" for t in self.triples)
