"""Worker supervision: liveness, hang detection, recovery policy, teardown.

The async runtime's counting termination (:mod:`repro.parallel.termination`)
is exact *if every worker lives forever*: a crashed or wedged worker leaves
``forwarded[i] > consumed[i]`` permanently, and the master blocks on its
outbox with no diagnosis of which node failed or why.  This module turns
those silent stalls into typed :class:`WorkerFailure` events and gives the
backends one shared vocabulary for reacting to them:

* :class:`SupervisionPolicy` — the knobs: ``degrade`` ("abort" raises the
  typed failure, "recover" re-runs the lost partition on a survivor),
  ``max_retries``/``retry_backoff``, heartbeat cadence, hang/idle
  deadlines, and teardown grace periods.
* :class:`ProcessSupervisor` — folds process ``is_alive``/``exitcode``
  polling into every blocking outbox wait (:meth:`ProcessSupervisor.get`),
  absorbs :class:`~repro.parallel.messages.Heartbeat` messages into
  per-node last-seen timestamps, and escalates teardown
  (:meth:`ProcessSupervisor.shutdown`: bounded join → ``terminate`` →
  ``kill``) so no code path can wedge on a zombie child.
* :class:`WorkerFailure` — the typed error: failed node ids, reason
  (``"exit" | "hang" | "idle" | "killed" | "frozen"``), process exit
  status, and the termination ledger's last sent/acknowledged counts for
  the failed nodes.
* :class:`FailureRecord` — the serializable form of one failure, stored in
  :class:`~repro.parallel.stats.AsyncRunStats` and exported by
  :mod:`repro.parallel.trace`.

Why single-node recovery is *sound* here: under data partitioning every
tuple is replicated to the owner of its subject and of its object, and the
master's counting ledger records, in order, every batch it ever relayed to
each node.  A lost node is therefore reconstructible from (a) its input
partition, which the master still holds, and (b) the replay of its relay
log — the node loop is deterministic given that sequence, and receivers
de-duplicate, so re-derived tuples are harmless.  See DESIGN.md §8.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.parallel.messages import Heartbeat

#: Exit code used by the deterministic fault-injection point
#: (:func:`repro.parallel.faults.maybe_crash`) so tests can tell an
#: injected crash from an organic one.
INJECTED_EXIT_CODE = 86


class WorkerFailure(RuntimeError):
    """A worker process died, wedged, or went silent mid-run.

    Raised by :meth:`ProcessSupervisor.get` (and re-raised by the backends
    when ``degrade="abort"`` or retries are exhausted).  Carries everything
    needed to diagnose — or recover — the failure.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        reason: str,
        *,
        process_index: int | None = None,
        exitcode: int | None = None,
        forwarded: Sequence[int] = (),
        consumed: Sequence[int] = (),
        epoch: int = 0,
    ) -> None:
        self.node_ids = tuple(node_ids)
        self.reason = reason
        self.process_index = process_index
        self.exitcode = exitcode
        #: Ledger snapshot for the failed nodes, aligned with node_ids.
        self.forwarded = tuple(forwarded)
        self.consumed = tuple(consumed)
        self.epoch = epoch
        nodes = ", ".join(str(n) for n in self.node_ids)
        ledger = "; ".join(
            f"node {n}: forwarded={f} acked={c}"
            for n, f, c in zip(self.node_ids, self.forwarded, self.consumed)
        )
        detail = f" (exitcode={exitcode})" if exitcode is not None else ""
        super().__init__(
            f"worker failure [{reason}] on node(s) {nodes}{detail}"
            + (f" — ledger: {ledger}" if ledger else "")
        )

    def record(self) -> "FailureRecord":
        return FailureRecord(
            node_ids=self.node_ids,
            reason=self.reason,
            exitcode=self.exitcode,
            epoch=self.epoch,
            forwarded=self.forwarded,
            consumed=self.consumed,
        )


@dataclass(frozen=True)
class FailureRecord:
    """One failure event, in the shape stats/trace export.

    >>> r = FailureRecord((1,), "exit", 86, 0, (3,), (1,))
    >>> FailureRecord.from_dict(r.to_dict()) == r
    True
    """

    node_ids: tuple[int, ...]
    reason: str
    exitcode: int | None
    epoch: int
    forwarded: tuple[int, ...]
    consumed: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "node_ids": list(self.node_ids),
            "reason": self.reason,
            "exitcode": self.exitcode,
            "epoch": self.epoch,
            "forwarded": list(self.forwarded),
            "consumed": list(self.consumed),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FailureRecord":
        return cls(
            node_ids=tuple(payload["node_ids"]),
            reason=str(payload["reason"]),
            exitcode=payload.get("exitcode"),
            epoch=int(payload.get("epoch", 0)),
            forwarded=tuple(payload.get("forwarded", ())),
            consumed=tuple(payload.get("consumed", ())),
        )


@dataclass
class SupervisionPolicy:
    """Failure-handling configuration shared by both process backends.

    ``degrade`` picks the reaction to a :class:`WorkerFailure`:
    ``"abort"`` raises it; ``"recover"`` re-runs the lost node's partition
    on a surviving worker (up to ``max_retries`` recoveries per run,
    sleeping ``retry_backoff * attempt`` seconds before each).

    ``hang_timeout=None`` (default) disables freeze detection — a live
    process that is merely slow is indistinguishable from a wedged one,
    so only opt in where heartbeat silence is meaningful.  Process *death*
    is always detected, within ``poll_interval`` of any blocking wait.
    """

    degrade: str = "abort"
    max_retries: int = 2
    retry_backoff: float = 0.0
    heartbeat_interval: float = 0.5
    hang_timeout: float | None = None
    idle_timeout: float = 120.0
    poll_interval: float = 0.05
    #: Bounded post-run join; survivors are terminated, then killed.
    shutdown_grace: float = 5.0

    def __post_init__(self) -> None:
        if self.degrade not in ("abort", "recover"):
            raise ValueError(
                f'degrade must be "abort" or "recover", got {self.degrade!r}'
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


def parent_alive(expected_ppid: int) -> bool:
    """Worker-side liveness probe: has our parent (the master) died?

    When the parent exits, the child is re-parented (to init or a
    subreaper), so a changed ppid means the master is gone and the worker
    should exit instead of blocking on its inbox forever.
    """
    return os.getppid() == expected_ppid


def shutdown_processes(
    processes: Sequence, grace: float = 5.0
) -> None:
    """Teardown that can never wedge: bounded join, then ``terminate``,
    then ``kill``, each escalation sharing one ``grace`` deadline."""
    deadline = time.monotonic() + grace
    for proc in processes:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    stubborn = [p for p in processes if p.is_alive()]
    if not stubborn:
        return
    for proc in stubborn:
        proc.terminate()
    deadline = time.monotonic() + grace
    for proc in stubborn:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in stubborn:
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=grace)


class ProcessSupervisor:
    """Master-side watchdog over the worker processes.

    Wraps every blocking outbox wait: :meth:`get` polls the queue with a
    short timeout and, on each empty poll, checks process liveness, node
    heartbeat staleness, and the overall idle deadline — converting each
    stall into a :class:`WorkerFailure` naming the node(s) instead of
    blocking forever.  Heartbeat messages are absorbed here (they refresh
    per-node last-seen times and are never returned to the caller).

    ``hosted[p]`` is the set of logical node ids currently running inside
    process ``p`` — initially ``{p}``, updated via :meth:`reassign` when a
    recovery adopts a lost node onto a survivor.  ``outstanding(node)``
    reports the termination ledger's unacknowledged count for a node, so
    death of a fully-drained worker after quiescence is not misreported.
    """

    def __init__(
        self,
        processes: Sequence,
        policy: SupervisionPolicy,
        outstanding: Callable[[int], int] | None = None,
        ledger: Callable[[int], tuple[int, int]] | None = None,
    ) -> None:
        self.processes = list(processes)
        self.policy = policy
        self.hosted: list[set[int]] = [{i} for i in range(len(self.processes))]
        self.outstanding = outstanding or (lambda node: 0)
        self.ledger = ledger or (lambda node: (0, 0))
        self._failed: set[int] = set()
        now = time.monotonic()
        self._last_seen: dict[int, float] = {
            i: now for i in range(len(self.processes))
        }

    # -- bookkeeping ---------------------------------------------------------

    def note(self, node_id: int) -> None:
        """A message (ack, production, heartbeat) arrived from ``node_id``."""
        self._last_seen[node_id] = time.monotonic()

    def reassign(self, node_id: int, process_index: int) -> None:
        """Logical node moved (recovery adoption): update the host map."""
        for nodes in self.hosted:
            nodes.discard(node_id)
        self.hosted[process_index].add(node_id)
        self.note(node_id)

    def mark_failed(self, process_index: int) -> None:
        """Stop supervising a process we have already recovered from.
        A still-running (wedged) process is terminated on the spot."""
        self._failed.add(process_index)
        proc = self.processes[process_index]
        if proc.is_alive():
            proc.terminate()
        self.hosted[process_index] = set()

    def live_process_indexes(self) -> list[int]:
        return [
            i
            for i, p in enumerate(self.processes)
            if i not in self._failed and p.is_alive()
        ]

    def _failure(self, process_index: int, reason: str,
                 exitcode: int | None) -> WorkerFailure:
        nodes = sorted(self.hosted[process_index]) or [process_index]
        counts = [self.ledger(n) for n in nodes]
        return WorkerFailure(
            nodes,
            reason,
            process_index=process_index,
            exitcode=exitcode,
            forwarded=[f for f, _ in counts],
            consumed=[c for _, c in counts],
        )

    # -- the supervised wait -------------------------------------------------

    def check(self) -> None:
        """Raise :class:`WorkerFailure` if any supervised process died or
        (with ``hang_timeout`` set) any hosted node with unacknowledged
        messages has gone silent past the deadline."""
        for i, proc in enumerate(self.processes):
            if i in self._failed:
                continue
            if not proc.is_alive():
                if proc.exitcode == 0 and all(
                    self.outstanding(n) == 0 for n in self.hosted[i]
                ):
                    # Clean exit with a drained ledger (e.g. a lock-step
                    # worker done with its "finish" reply, racing the
                    # master's gather of the others): stop supervising.
                    self._failed.add(i)
                    continue
                raise self._failure(i, "exit", proc.exitcode)
        hang = self.policy.hang_timeout
        if hang is None:
            return
        now = time.monotonic()
        for i in range(len(self.processes)):
            if i in self._failed:
                continue
            for node in sorted(self.hosted[i]):
                if (
                    self.outstanding(node) > 0
                    and now - self._last_seen.get(node, now) > hang
                ):
                    raise self._failure(i, "hang", None)

    def get(self, outbox):
        """Blocking ``outbox.get`` with liveness folded in.

        Returns the next non-heartbeat message; raises
        :class:`WorkerFailure` on process death, heartbeat-silence beyond
        ``hang_timeout``, or ``idle_timeout`` without any message."""
        deadline = time.monotonic() + self.policy.idle_timeout
        while True:
            self.check()
            try:
                msg = outbox.get(timeout=self.policy.poll_interval)
            except queue_mod.Empty:
                if time.monotonic() > deadline:
                    silent = [
                        n
                        for i in range(len(self.processes))
                        if i not in self._failed
                        for n in sorted(self.hosted[i])
                        if self.outstanding(n) > 0
                    ]
                    counts = [self.ledger(n) for n in silent]
                    raise WorkerFailure(
                        silent or sorted(
                            n for h in self.hosted for n in h
                        ),
                        "idle",
                        forwarded=[f for f, _ in counts],
                        consumed=[c for _, c in counts],
                    ) from None
                continue
            if isinstance(msg, Heartbeat):
                self.note(msg.node_id)
                continue
            node_id = getattr(msg, "node_id", None)
            if node_id is None and isinstance(msg, tuple) and len(msg) > 1:
                # Legacy lock-step tuples: ("produced"|"output", node_id, ...)
                node_id = msg[1] if isinstance(msg[1], int) else None
            if node_id is not None:
                self.note(node_id)
            return msg

    def shutdown(self) -> None:
        """Escalating teardown of every supervised process."""
        shutdown_processes(self.processes, grace=self.policy.shutdown_grace)
