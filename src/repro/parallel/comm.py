"""Communication backends.

Both backends implement the same minimal point-to-point interface —
``send`` a :class:`TupleBatch`, ``recv_all`` pending batches for a node —
the shape of the mpi4py ``send``/``recv`` object API, so a real MPI backend
would drop in without touching the driver.

* :class:`InMemoryComm` — per-node mailboxes (deques).  Used by the
  in-process driver and the simulated cluster; accounts *would-be* payload
  bytes per (sender, dest) pair for the cost models.
* :class:`FileComm` — the paper's actual mechanism ("the inter-partition
  communication is through the use of a shared file system"): each batch is
  one N-Triples file in a spool directory, named so receivers can discover
  their pending messages; files are deleted on receipt.  Accounts real
  bytes written/read.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol

from repro.parallel.messages import Message, TupleBatch
from repro.rdf.ntriples import parse_ntriples


@dataclass
class CommStats:
    """Traffic accounting, aggregated per node pair and per node.

    Works for any :class:`~repro.parallel.messages.Message` — term-level
    :class:`TupleBatch` and id-encoded
    :class:`~repro.parallel.messages.EncodedBatch` alike; ``payload_bytes``
    reflects whichever wire format actually traveled.
    """

    messages: int = 0
    tuples: int = 0
    payload_bytes: int = 0
    #: bytes sent, per sender node id
    sent_bytes: dict[int, int] = field(default_factory=dict)
    #: bytes received, per destination node id
    received_bytes: dict[int, int] = field(default_factory=dict)

    def record(self, batch: Message) -> None:
        size = batch.payload_bytes()
        self.messages += 1
        self.tuples += len(batch)
        self.payload_bytes += size
        self.sent_bytes[batch.sender] = self.sent_bytes.get(batch.sender, 0) + size
        self.received_bytes[batch.dest] = self.received_bytes.get(batch.dest, 0) + size


class CommBackend(Protocol):
    """Point-to-point tuple-batch transport."""

    stats: CommStats

    def send(self, batch: Message) -> None: ...

    def recv_all(self, node_id: int) -> list[Message]: ...

    def pending(self) -> int:
        """Number of batches in transit (for termination detection)."""
        ...


class InMemoryComm:
    """Mailbox transport for in-process runs.

    >>> comm = InMemoryComm(k=2)
    >>> comm.send(TupleBatch.make(0, 1, 0, []))
    >>> len(comm.recv_all(1))
    1
    >>> comm.pending()
    0
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._mailboxes: list[deque[Message]] = [deque() for _ in range(k)]
        self.stats = CommStats()

    def send(self, batch: Message) -> None:
        if not 0 <= batch.dest < self.k:
            raise ValueError(f"destination {batch.dest} outside [0, {self.k})")
        self.stats.record(batch)
        self._mailboxes[batch.dest].append(batch)

    def recv_all(self, node_id: int) -> list[Message]:
        box = self._mailboxes[node_id]
        out = list(box)
        box.clear()
        return out

    def pending(self) -> int:
        return sum(len(box) for box in self._mailboxes)


class FileComm:
    """Shared-filesystem transport (the paper's mechanism).

    Spool layout: ``<root>/r<round>_s<sender>_d<dest>_<seq>.nt``.  A batch
    is visible once fully written (written to a ``.tmp`` name and renamed,
    the usual atomic-publish idiom).  ``recv_all`` claims and deletes a
    node's files in name order, so repeated delivery is impossible even
    with concurrent receivers on a POSIX filesystem.
    """

    def __init__(self, k: int, root: str | os.PathLike) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CommStats()
        self._seq = 0

    def send(self, batch: TupleBatch) -> None:
        if not isinstance(batch, TupleBatch):
            raise TypeError(
                "FileComm speaks the N-Triples spool format; id-encoded "
                "batches belong to the async backend's queues"
            )
        if not 0 <= batch.dest < self.k:
            raise ValueError(f"destination {batch.dest} outside [0, {self.k})")
        self.stats.record(batch)
        self._seq += 1
        name = f"r{batch.round_no:06d}_s{batch.sender:04d}_d{batch.dest:04d}_{self._seq:08d}.nt"
        tmp = self.root / (name + ".tmp")
        tmp.write_text(batch.serialize(), encoding="utf-8")
        tmp.rename(self.root / name)

    def recv_all(self, node_id: int) -> list[TupleBatch]:
        marker = f"_d{node_id:04d}_"
        batches: list[TupleBatch] = []
        for path in sorted(self.root.glob("*.nt")):
            if marker not in path.name:
                continue
            text = path.read_text(encoding="utf-8")
            parts = path.stem.split("_")
            round_no = int(parts[0][1:])
            sender = int(parts[1][1:])
            triples = tuple(parse_ntriples(text))
            batches.append(
                TupleBatch(sender=sender, dest=node_id, round_no=round_no, triples=triples)
            )
            path.unlink()
        return batches

    def pending(self) -> int:
        return sum(1 for _ in self.root.glob("*.nt"))
