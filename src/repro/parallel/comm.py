"""Communication backends.

Both backends implement the same minimal point-to-point interface —
``send`` a :class:`TupleBatch`, ``recv_all`` pending batches for a node —
the shape of the mpi4py ``send``/``recv`` object API, so a real MPI backend
would drop in without touching the driver.

* :class:`InMemoryComm` — per-node mailboxes (deques).  Used by the
  in-process driver and the simulated cluster; accounts *would-be* payload
  bytes per (sender, dest) pair for the cost models.
* :class:`FileComm` — the paper's actual mechanism ("the inter-partition
  communication is through the use of a shared file system"): each batch is
  one N-Triples file in a spool directory, named so receivers can discover
  their pending messages; files are deleted on receipt.  Accounts real
  bytes written/read.

:class:`ChannelPool` is the in-process async executor's transport: one
FIFO deque per (sender, dest) channel with a pluggable cross-channel
delivery order (fifo / lifo / seeded shuffle) and per-destination
eligibility filtering — the hook the fault-injection harness uses to
model dead, frozen, and delayed receivers without breaking the
FIFO-per-channel invariant the delta-dictionary protocol requires.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

from repro.parallel.messages import Message, TupleBatch
from repro.rdf.ntriples import parse_ntriples


@dataclass
class CommStats:
    """Traffic accounting, aggregated per node pair and per node.

    Works for any :class:`~repro.parallel.messages.Message` — term-level
    :class:`TupleBatch` and id-encoded
    :class:`~repro.parallel.messages.EncodedBatch` alike; ``payload_bytes``
    reflects whichever wire format actually traveled.
    """

    messages: int = 0
    tuples: int = 0
    payload_bytes: int = 0
    #: bytes sent, per sender node id
    sent_bytes: dict[int, int] = field(default_factory=dict)
    #: bytes received, per destination node id
    received_bytes: dict[int, int] = field(default_factory=dict)

    def record(self, batch: Message) -> None:
        size = batch.payload_bytes()
        self.messages += 1
        self.tuples += len(batch)
        self.payload_bytes += size
        self.sent_bytes[batch.sender] = self.sent_bytes.get(batch.sender, 0) + size
        self.received_bytes[batch.dest] = self.received_bytes.get(batch.dest, 0) + size


class CommBackend(Protocol):
    """Point-to-point tuple-batch transport."""

    stats: CommStats

    def send(self, batch: Message) -> None: ...

    def recv_all(self, node_id: int) -> list[Message]: ...

    def pending(self) -> int:
        """Number of batches in transit (for termination detection)."""
        ...


class InMemoryComm:
    """Mailbox transport for in-process runs.

    >>> comm = InMemoryComm(k=2)
    >>> comm.send(TupleBatch.make(0, 1, 0, []))
    >>> len(comm.recv_all(1))
    1
    >>> comm.pending()
    0
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._mailboxes: list[deque[Message]] = [deque() for _ in range(k)]
        self.stats = CommStats()

    def send(self, batch: Message) -> None:
        if not 0 <= batch.dest < self.k:
            raise ValueError(f"destination {batch.dest} outside [0, {self.k})")
        self.stats.record(batch)
        self._mailboxes[batch.dest].append(batch)

    def recv_all(self, node_id: int) -> list[Message]:
        box = self._mailboxes[node_id]
        out = list(box)
        box.clear()
        return out

    def pending(self) -> int:
        return sum(len(box) for box in self._mailboxes)


class ChannelPool:
    """Per-channel FIFO queues with a controllable cross-channel order.

    ``order`` lists one entry (the channel key) per pending message, in
    emit order; delivery picks an entry by policy — ``"fifo"`` the
    globally oldest, ``"lifo"`` the newest, ``"shuffle"`` seeded-random —
    then pops that channel's *oldest* message, so order within a channel
    is always preserved (the wire protocol's FIFO-channel assumption).

    ``pop_next(eligible)`` skips channels whose key fails the predicate:
    the supervisor marks destinations dead/frozen/held, and those
    channels simply stop delivering while remaining pending.

    >>> pool = ChannelPool("fifo")
    >>> pool.emit(TupleBatch.make(0, 1, 0, []))
    >>> pool.in_transit
    1
    >>> pool.pop_next() is not None
    True
    """

    def __init__(self, delivery: str = "fifo", rng=None) -> None:
        if delivery not in ("fifo", "lifo", "shuffle"):
            raise ValueError(f"unknown delivery order {delivery!r}")
        if delivery == "shuffle" and rng is None:
            raise ValueError("shuffle delivery requires an rng")
        self.delivery = delivery
        self._rng = rng
        self._channels: dict[tuple[int, int], deque[Message]] = {}
        self._order: list[tuple[int, int]] = []

    @property
    def in_transit(self) -> int:
        return len(self._order)

    def emit(self, batch: Message) -> None:
        key = (batch.sender, batch.dest)
        box = self._channels.get(key)
        if box is None:
            box = self._channels[key] = deque()
        box.append(batch)
        self._order.append(key)

    def push_front(self, batch: Message) -> None:
        """Return an un-consumed message to the head of its channel (a
        frozen receiver popped it but never processed it)."""
        key = (batch.sender, batch.dest)
        self._channels.setdefault(key, deque()).appendleft(batch)
        self._order.insert(0, key)

    def pop_next(self, eligible=None) -> Message | None:
        """Deliver the next message whose channel passes ``eligible``
        (default: all), honoring the cross-channel policy.  ``None`` when
        nothing is deliverable (pending messages may remain)."""
        order = self._order
        if not order:
            return None
        if eligible is None:
            candidates = range(len(order))
        else:
            candidates = [i for i, key in enumerate(order) if eligible(key)]
            if not candidates:
                return None
        if self.delivery == "shuffle":
            idx = candidates[self._rng.randrange(len(candidates))] \
                if eligible is not None else self._rng.randrange(len(order))
        elif self.delivery == "lifo":
            idx = candidates[-1] if eligible is not None else len(order) - 1
        else:
            idx = candidates[0] if eligible is not None else 0
        key = order.pop(idx)
        return self._channels[key].popleft()

    def discard_dest(self, dest: int) -> int:
        """Drop every pending message addressed to ``dest`` (recovery:
        the relay ledger replays them into the replacement).  Returns the
        number discarded."""
        keep: list[tuple[int, int]] = []
        dropped = 0
        for key in self._order:
            if key[1] == dest:
                self._channels[key].popleft()
                dropped += 1
            else:
                keep.append(key)
        # Rebuild: per-channel deques already consumed in order-list order
        # for the dropped dest, so surviving deques are untouched.
        self._order = keep
        return dropped


class FileComm:
    """Shared-filesystem transport (the paper's mechanism).

    Spool layout: ``<root>/r<round>_s<sender>_d<dest>_<seq>.nt``.  A batch
    is visible once fully written (written to a ``.tmp`` name and renamed,
    the usual atomic-publish idiom).  ``recv_all`` claims and deletes a
    node's files in name order, so repeated delivery is impossible even
    with concurrent receivers on a POSIX filesystem.
    """

    def __init__(self, k: int, root: str | os.PathLike) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CommStats()
        self._seq = 0

    def send(self, batch: TupleBatch) -> None:
        if not isinstance(batch, TupleBatch):
            raise TypeError(
                "FileComm speaks the N-Triples spool format; id-encoded "
                "batches belong to the async backend's queues"
            )
        if not 0 <= batch.dest < self.k:
            raise ValueError(f"destination {batch.dest} outside [0, {self.k})")
        self.stats.record(batch)
        self._seq += 1
        name = f"r{batch.round_no:06d}_s{batch.sender:04d}_d{batch.dest:04d}_{self._seq:08d}.nt"
        tmp = self.root / (name + ".tmp")
        tmp.write_text(batch.serialize(), encoding="utf-8")
        tmp.rename(self.root / name)

    def recv_all(self, node_id: int) -> list[TupleBatch]:
        marker = f"_d{node_id:04d}_"
        batches: list[TupleBatch] = []
        for path in sorted(self.root.glob("*.nt")):
            if marker not in path.name:
                continue
            text = path.read_text(encoding="utf-8")
            parts = path.stem.split("_")
            round_no = int(parts[0][1:])
            sender = int(parts[1][1:])
            triples = tuple(parse_ntriples(text))
            batches.append(
                TupleBatch(sender=sender, dest=node_id, round_no=round_no, triples=triples)
            )
            path.unlink()
        return batches

    def pending(self) -> int:
        return sum(1 for _ in self.root.glob("*.nt"))
