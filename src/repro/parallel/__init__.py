"""The parallel reasoning runtime — Algorithm 3 and its measurement rig.

Layers, bottom up:

* :mod:`repro.parallel.messages` — the tuple batches nodes exchange.
* :mod:`repro.parallel.comm` — communication backends behind one MPI-ish
  interface: in-memory mailboxes and the paper's shared-file scheme; both
  account bytes and message counts for the cost models.
* :mod:`repro.parallel.routing` — "send any newly generated tuples to
  other processors as necessary": owner-table routing (data partitioning),
  body-atom-match routing (rule partitioning), broadcast (ablation).
* :mod:`repro.parallel.worker` — one partition's loop: local fixpoint,
  route fresh tuples, ingest incoming tuples.
* :mod:`repro.parallel.driver` — the synchronous-rounds master
  (:class:`ParallelReasoner`): partition, scatter, iterate rounds to global
  termination, aggregate.  Runs workers in-process.
* :mod:`repro.parallel.costmodel` / :mod:`repro.parallel.simulated` — the
  cluster *simulation*: per-partition reasoning is measured for real (wall
  time + deterministic work units); IO/sync/aggregation are computed from
  the measured message volumes through an explicit, configurable
  :class:`CostModel` (file-IPC, MPI, shared-memory presets).  This is the
  documented substitute for the paper's 16-node cluster (DESIGN.md §2).
* :mod:`repro.parallel.mp_backend` — a real ``multiprocessing`` executor
  for end-to-end correctness runs (lock-step rounds; the differential
  oracle for the async backend).
* :mod:`repro.parallel.termination` — Safra-style sent/received counting
  for barrier-free global-quiescence detection.
* :mod:`repro.parallel.async_backend` — the round-free executor over the
  id-encoded wire protocol (:class:`EncodedBatch`): workers reason over
  batches as they arrive, in-process (with controllable delivery order)
  or across real processes.
* :mod:`repro.parallel.supervisor` — worker liveness, typed
  :class:`WorkerFailure` diagnosis of crashes/hangs, and the
  ledger-replay recovery policy (:class:`SupervisionPolicy`).
* :mod:`repro.parallel.faults` — deterministic fault injection: per-node
  kill/freeze and per-channel drop/duplicate/delay plans for the
  in-process executor, and an env-triggered hard-exit for the
  multiprocess one.
"""

from repro.parallel.messages import EncodedBatch, TupleBatch
from repro.parallel.comm import ChannelPool, CommBackend, FileComm, InMemoryComm
from repro.parallel.routing import (
    BroadcastRouter,
    DataPartitionRouter,
    Router,
    RulePartitionRouter,
)
from repro.parallel.worker import PartitionWorker, RoundResult
from repro.parallel.driver import ParallelReasoner, ParallelRunResult
from repro.parallel.costmodel import CostModel
from repro.parallel.simulated import SimulatedCluster, SimulatedRun
from repro.parallel.stats import NodeRoundStats, RunStats
from repro.parallel.hybrid import HybridParallelReasoner
from repro.parallel.rebalance import RebalancingParallelReasoner
from repro.parallel.query import DistributedQueryEngine, DistributedQueryStats
from repro.parallel.stats import AsyncRunStats
from repro.parallel.termination import CountingTermination
from repro.parallel.async_backend import (
    AsyncRunResult,
    build_base_dictionary,
    run_async_inprocess,
    run_multiprocess_async,
)
from repro.parallel.supervisor import (
    INJECTED_EXIT_CODE,
    FailureRecord,
    ProcessSupervisor,
    SupervisionPolicy,
    WorkerFailure,
    shutdown_processes,
)
from repro.parallel.faults import ChannelFault, FaultPlan

__all__ = [
    "TupleBatch",
    "EncodedBatch",
    "AsyncRunStats",
    "AsyncRunResult",
    "CountingTermination",
    "build_base_dictionary",
    "run_async_inprocess",
    "run_multiprocess_async",
    "WorkerFailure",
    "FailureRecord",
    "SupervisionPolicy",
    "ProcessSupervisor",
    "shutdown_processes",
    "INJECTED_EXIT_CODE",
    "FaultPlan",
    "ChannelFault",
    "ChannelPool",
    "CommBackend",
    "InMemoryComm",
    "FileComm",
    "Router",
    "DataPartitionRouter",
    "RulePartitionRouter",
    "BroadcastRouter",
    "PartitionWorker",
    "RoundResult",
    "ParallelReasoner",
    "ParallelRunResult",
    "CostModel",
    "SimulatedCluster",
    "SimulatedRun",
    "NodeRoundStats",
    "RunStats",
    "HybridParallelReasoner",
    "RebalancingParallelReasoner",
    "DistributedQueryEngine",
    "DistributedQueryStats",
]
