"""Real multi-process execution of Algorithm 3.

The simulated cluster is the measurement vehicle; this backend is the
proof that the same worker/router/termination logic runs correctly with
*actual* process isolation and message passing.  One OS process per
partition, connected by ``multiprocessing`` queues; the parent acts as the
paper's master: it scatters partitions, relays batches (a stand-in for the
shared filesystem), detects global termination, and gathers outputs.

The communication pattern mirrors mpi4py's object API (``send``/``recv`` of
picklable payloads); terms re-intern on unpickling via their ``__reduce__``
hooks, so graphs survive the process boundary intact.

This is a correctness backend, not a performance one: on the CI container
there is a single core, and pickling graphs costs more than reasoning over
them at test sizes.  Keep inputs small.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
from dataclasses import dataclass
from typing import Sequence

from repro.datalog.ast import Rule
from repro.parallel.messages import Heartbeat, TupleBatch
from repro.parallel.routing import DataPartitionRouter, Router, RulePartitionRouter
from repro.parallel.supervisor import (
    ProcessSupervisor,
    SupervisionPolicy,
    parent_alive,
)
from repro.parallel.worker import PartitionWorker
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple


@dataclass
class _NodeConfig:
    """Everything one worker process needs (picklable)."""

    node_id: int
    base_triples: list[Triple]
    rules: list[Rule]
    router_kind: str  # "data" | "rule"
    owner_table: dict | None
    owner_k: int
    rule_sets: list[list[Rule]] | None


def _make_router(cfg: _NodeConfig) -> Router:
    if cfg.router_kind == "data":
        from repro.partitioning.base import TableOwner

        return DataPartitionRouter(TableOwner(cfg.owner_k, cfg.owner_table or {}))
    return RulePartitionRouter(cfg.rule_sets or [])


def _worker_main(
    cfg: _NodeConfig,
    inbox: mp.Queue,
    outbox: mp.Queue,
    heartbeat_interval: float = 0.5,
) -> None:
    """Worker process loop.

    Protocol (all via queues, driven by the parent):
      parent -> worker: ("round", [TupleBatch...]) | ("finish",)
      worker -> parent: ("produced", node_id, [TupleBatch...])
                        | ("output", node_id, [Triple...])
    The first round is triggered by an empty batch list.

    The inbox wait is bounded: every idle ``heartbeat_interval`` the
    worker checks that the master still exists — if the master crashed
    between rounds the worker exits instead of blocking on ``inbox.get()``
    as an orphan forever — and pings the master's supervisor.
    """
    parent = os.getppid()
    base = Graph(cfg.base_triples)
    worker = PartitionWorker(
        node_id=cfg.node_id,
        base=base,
        rules=cfg.rules,
        router=_make_router(cfg),
    )
    first = True
    rounds = 0
    while True:
        try:
            msg = inbox.get(timeout=heartbeat_interval)
        except queue_mod.Empty:
            if not parent_alive(parent):
                return  # master died: exit instead of leaking an orphan
            outbox.put(Heartbeat(cfg.node_id, 0, rounds))
            continue
        kind = msg[0]
        if kind == "finish":
            outbox.put(("output", cfg.node_id, list(worker.output_graph())))
            return
        assert kind == "round"
        batches: list[TupleBatch] = msg[1]
        result = worker.bootstrap() if first else worker.step(batches)
        first = False
        rounds += 1
        outbox.put(("produced", cfg.node_id, result.outgoing))


def run_multiprocess(
    partitions: Sequence[Graph],
    rules_per_node: Sequence[Sequence[Rule]],
    router_kind: str,
    owner_table: dict | None = None,
    rule_sets: Sequence[Sequence[Rule]] | None = None,
    max_rounds: int = 1000,
    start_method: str | None = None,
    idle_timeout: float = 120.0,
    supervision: SupervisionPolicy | None = None,
) -> Graph:
    """Execute Algorithm 3 across real processes; returns the unioned KB.

    ``partitions[i]`` and ``rules_per_node[i]`` configure node i.  For
    ``router_kind="data"`` pass the ``owner_table`` (term -> partition);
    for ``"rule"`` pass the ``rule_sets`` used for body-atom routing.

    ``start_method=None`` uses the platform default (``fork`` on Linux,
    ``spawn`` on macOS/Windows).  Both are supported: the worker entry
    point and every config field are picklable, and terms re-intern on
    unpickling, so nothing depends on inherited process state.

    Every blocking wait is supervised
    (:class:`~repro.parallel.supervisor.ProcessSupervisor`): a worker
    that dies mid-round raises a typed
    :class:`~repro.parallel.supervisor.WorkerFailure` naming the dead
    node instead of blocking the master on ``outbox.get()`` forever.  The
    lock-step backend is the differential *oracle*, so it only diagnoses
    failures; recovery lives in the asynchronous backend
    (:func:`repro.parallel.async_backend.run_multiprocess_async`).
    """
    k = len(partitions)
    if len(rules_per_node) != k:
        raise ValueError("rules_per_node must match partitions")
    policy = supervision or SupervisionPolicy(idle_timeout=idle_timeout)
    ctx = mp.get_context(start_method)
    inboxes = [ctx.Queue() for _ in range(k)]
    outbox = ctx.Queue()

    processes = []
    for i in range(k):
        cfg = _NodeConfig(
            node_id=i,
            base_triples=list(partitions[i]),
            rules=list(rules_per_node[i]),
            router_kind=router_kind,
            owner_table=dict(owner_table) if owner_table else None,
            owner_k=k,
            rule_sets=[list(rs) for rs in rule_sets] if rule_sets else None,
        )
        proc = ctx.Process(
            target=_worker_main,
            args=(cfg, inboxes[i], outbox, policy.heartbeat_interval),
        )
        proc.start()
        processes.append(proc)

    sup = ProcessSupervisor(processes, policy)
    try:
        for i in range(k):
            inboxes[i].put(("round", []))
        for round_no in range(max_rounds):
            produced: list[TupleBatch] = []
            for _ in range(k):
                kind, node_id, batches = sup.get(outbox)
                assert kind == "produced"
                produced.extend(batches)
            if not produced:
                break
            # Relay: group batches by destination, start the next round.
            by_dest: dict[int, list[TupleBatch]] = {i: [] for i in range(k)}
            for batch in produced:
                by_dest[batch.dest].append(batch)
            for i in range(k):
                inboxes[i].put(("round", by_dest[i]))
        else:
            raise RuntimeError(f"no termination after {max_rounds} rounds")

        union = Graph()
        for i in range(k):
            inboxes[i].put(("finish",))
        for _ in range(k):
            kind, node_id, triples = sup.get(outbox)
            assert kind == "output"
            union.update(triples)
        return union
    finally:
        sup.shutdown()
