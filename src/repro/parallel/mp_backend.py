"""Real multi-process execution of Algorithm 3.

The simulated cluster is the measurement vehicle; this backend is the
proof that the same worker/router/termination logic runs correctly with
*actual* process isolation and message passing.  One OS process per
partition, connected by ``multiprocessing`` queues; the parent acts as the
paper's master: it scatters partitions, relays batches (a stand-in for the
shared filesystem), detects global termination, and gathers outputs.

The communication pattern mirrors mpi4py's object API (``send``/``recv`` of
picklable payloads); terms re-intern on unpickling via their ``__reduce__``
hooks, so graphs survive the process boundary intact.

This is a correctness backend, not a performance one: on the CI container
there is a single core, and pickling graphs costs more than reasoning over
them at test sizes.  Keep inputs small.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from typing import Sequence

from repro.datalog.ast import Rule
from repro.parallel.messages import TupleBatch
from repro.parallel.routing import DataPartitionRouter, Router, RulePartitionRouter
from repro.parallel.worker import PartitionWorker
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple


@dataclass
class _NodeConfig:
    """Everything one worker process needs (picklable)."""

    node_id: int
    base_triples: list[Triple]
    rules: list[Rule]
    router_kind: str  # "data" | "rule"
    owner_table: dict | None
    owner_k: int
    rule_sets: list[list[Rule]] | None


def _make_router(cfg: _NodeConfig) -> Router:
    if cfg.router_kind == "data":
        from repro.partitioning.base import TableOwner

        return DataPartitionRouter(TableOwner(cfg.owner_k, cfg.owner_table or {}))
    return RulePartitionRouter(cfg.rule_sets or [])


def _worker_main(cfg: _NodeConfig, inbox: mp.Queue, outbox: mp.Queue) -> None:
    """Worker process loop.

    Protocol (all via queues, driven by the parent):
      parent -> worker: ("round", [TupleBatch...]) | ("finish",)
      worker -> parent: ("produced", node_id, [TupleBatch...])
                        | ("output", node_id, [Triple...])
    The first round is triggered by an empty batch list.
    """
    base = Graph(cfg.base_triples)
    worker = PartitionWorker(
        node_id=cfg.node_id,
        base=base,
        rules=cfg.rules,
        router=_make_router(cfg),
    )
    first = True
    while True:
        msg = inbox.get()
        kind = msg[0]
        if kind == "finish":
            outbox.put(("output", cfg.node_id, list(worker.output_graph())))
            return
        assert kind == "round"
        batches: list[TupleBatch] = msg[1]
        result = worker.bootstrap() if first else worker.step(batches)
        first = False
        outbox.put(("produced", cfg.node_id, result.outgoing))


def run_multiprocess(
    partitions: Sequence[Graph],
    rules_per_node: Sequence[Sequence[Rule]],
    router_kind: str,
    owner_table: dict | None = None,
    rule_sets: Sequence[Sequence[Rule]] | None = None,
    max_rounds: int = 1000,
    start_method: str | None = None,
) -> Graph:
    """Execute Algorithm 3 across real processes; returns the unioned KB.

    ``partitions[i]`` and ``rules_per_node[i]`` configure node i.  For
    ``router_kind="data"`` pass the ``owner_table`` (term -> partition);
    for ``"rule"`` pass the ``rule_sets`` used for body-atom routing.

    ``start_method=None`` uses the platform default (``fork`` on Linux,
    ``spawn`` on macOS/Windows).  Both are supported: the worker entry
    point and every config field are picklable, and terms re-intern on
    unpickling, so nothing depends on inherited process state.
    """
    k = len(partitions)
    if len(rules_per_node) != k:
        raise ValueError("rules_per_node must match partitions")
    ctx = mp.get_context(start_method)
    inboxes = [ctx.Queue() for _ in range(k)]
    outbox = ctx.Queue()

    processes = []
    for i in range(k):
        cfg = _NodeConfig(
            node_id=i,
            base_triples=list(partitions[i]),
            rules=list(rules_per_node[i]),
            router_kind=router_kind,
            owner_table=dict(owner_table) if owner_table else None,
            owner_k=k,
            rule_sets=[list(rs) for rs in rule_sets] if rule_sets else None,
        )
        proc = ctx.Process(target=_worker_main, args=(cfg, inboxes[i], outbox))
        proc.start()
        processes.append(proc)

    try:
        pending: list[TupleBatch] = []
        for i in range(k):
            inboxes[i].put(("round", []))
        for round_no in range(max_rounds):
            produced: list[TupleBatch] = []
            for _ in range(k):
                kind, node_id, batches = outbox.get()
                assert kind == "produced"
                produced.extend(batches)
            if not produced:
                break
            # Relay: group batches by destination, start the next round.
            by_dest: dict[int, list[TupleBatch]] = {i: [] for i in range(k)}
            for batch in produced:
                by_dest[batch.dest].append(batch)
            for i in range(k):
                inboxes[i].put(("round", by_dest[i]))
        else:
            raise RuntimeError(f"no termination after {max_rounds} rounds")

        union = Graph()
        for i in range(k):
            inboxes[i].put(("finish",))
        for _ in range(k):
            kind, node_id, triples = outbox.get()
            assert kind == "output"
            union.update(triples)
        return union
    finally:
        for proc in processes:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join()
