"""The synchronous-rounds master — Algorithm 3.

:class:`ParallelReasoner` is the public entry point of the whole library:
give it an ontology, pick a partitioning approach and policy, and call
``materialize``.  It

1. compiles the ontology into instance rules,
2. partitions the data (Algorithm 1) or the rule base (Algorithm 2),
3. builds one :class:`PartitionWorker` per node with the matching router,
4. iterates synchronous rounds until no node produced cross-partition
   tuples and nothing is in transit (the paper's termination condition),
5. aggregates the union of the nodes' outputs.

Workers execute *in-process* (sequentially).  That is deliberate: it makes
every per-node measurement exact and deterministic, and the simulated
cluster (:mod:`repro.parallel.simulated`) reconstructs the parallel
timeline from those measurements.  For a real-multiple-process run, see
:mod:`repro.parallel.mp_backend`.

"Note that the master node itself has no role to play once the initial
partition is done" (Section IV) — accordingly, everything after
partitioning is per-node work plus the final aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

from repro.datalog.analysis import check_data_partitionable, predicate_counts
from repro.datalog.engine import EngineStats
from repro.owl.compiler import CompiledRuleSet, compile_ontology
from repro.owl.reasoner import split_schema
from repro.parallel.comm import CommBackend, InMemoryComm
from repro.parallel.routing import DataPartitionRouter, Router, RulePartitionRouter
from repro.parallel.stats import NodeRoundStats, RunStats
from repro.parallel.supervisor import SupervisionPolicy
from repro.parallel.worker import PartitionWorker, RoundResult, Strategy
from repro.partitioning.base import DataPartitioningResult, RulePartitioningResult
from repro.partitioning.data_generic import partition_data
from repro.partitioning.policies import GraphPartitioningPolicy, PartitioningPolicy
from repro.partitioning.rulepart import partition_rules
from repro.rdf.graph import Graph
from repro.util.timing import Stopwatch

Approach = Literal["data", "rule"]


@dataclass
class ParallelRunResult:
    """Everything a run produces: the materialized KB, the paper's metrics
    inputs, and the raw per-round measurements."""

    graph: Graph
    stats: RunStats
    approach: Approach
    #: Per-node final output graphs (for the OR metric).
    node_outputs: list[Graph] = field(default_factory=list)
    data_partitioning: DataPartitioningResult | None = None
    rule_partitioning: RulePartitioningResult | None = None
    #: Cluster-wide engine counters: the sum of every worker's per-round
    #: fixpoint stats, so a parallel load reports the same six-field
    #: accounting a serial :class:`~repro.datalog.engine.SemiNaiveEngine`
    #: run would (the backward bootstrap contributes only to the
    #: per-round ``work`` scalar in :attr:`stats`, not here).
    engine_stats: EngineStats = field(default_factory=EngineStats)
    #: The partition workers, still resident after the run.  The id-native
    #: distributed query engine
    #: (:meth:`~repro.parallel.query.DistributedQueryEngine.from_workers`)
    #: and the serving tier (:mod:`repro.serving`) answer straight from
    #: their columnar stores instead of the aggregated union.
    workers: list[PartitionWorker] = field(default_factory=list)

    @property
    def k(self) -> int:
        return self.stats.k


class ParallelReasoner:
    """Parallel OWL-Horst materializer (the paper's full system).

    >>> from repro.rdf import Graph, URI, Triple
    >>> from repro.owl.vocabulary import RDF, RDFS
    >>> tbox = Graph([Triple(URI("ex:Student"), RDFS.subClassOf, URI("ex:Person"))])
    >>> data = Graph([Triple(URI("ex:alice"), RDF.type, URI("ex:Student"))])
    >>> pr = ParallelReasoner(tbox, k=2)
    >>> result = pr.materialize(data)
    >>> Triple(URI("ex:alice"), RDF.type, URI("ex:Person")) in result.graph
    True
    """

    def __init__(
        self,
        ontology: Graph,
        k: int,
        approach: Approach = "data",
        policy: PartitioningPolicy | None = None,
        strategy: Strategy = "forward",
        comm: CommBackend | None = None,
        weight_rule_edges: bool = True,
        max_rounds: int = 10_000,
        seed: int = 0,
        compile_rules: bool = True,
        engine: str | None = None,
        store: str | None = None,
        memory_budget_bytes: int | None = None,
        encode_wire: bool = False,
        degrade: str = "abort",
        max_retries: int = 2,
        supervision: "SupervisionPolicy | None" = None,
        sanitize: bool | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if approach not in ("data", "rule"):
            raise ValueError(f"unknown approach {approach!r}")
        self.k = k
        self.approach: Approach = approach
        # Data partitioning demands single-join rules; the compiler's sameAs
        # split provides them.  Rule partitioning has no such constraint, so
        # it runs the faithful rdfp11.
        self.compiled: CompiledRuleSet = compile_ontology(
            ontology, split_sameas=(approach == "data")
        )
        if approach == "data":
            check_data_partitionable(self.compiled.rules)
        self.policy = policy or GraphPartitioningPolicy(seed=seed)
        self.strategy: Strategy = strategy
        self.comm: CommBackend = comm if comm is not None else InMemoryComm(k)
        self.weight_rule_edges = weight_rule_edges
        self.max_rounds = max_rounds
        self.seed = seed
        #: Kernel selection for every partition's engine (see
        #: :class:`~repro.datalog.engine.SemiNaiveEngine`).
        self.compile_rules = compile_rules
        #: Execution layer for every partition: "generic" / "compiled" /
        #: "columnar" (``None`` derives from ``compile_rules``).  With
        #: ``encode_wire=True``, ``"columnar"`` switches the workers to the
        #: fully id-native path — received rows enter the columnar store
        #: and are reasoned over and routed without materializing terms.
        self.engine = engine
        #: Columnar store per worker: "dense" (IdGraph) or "run" (the
        #: memory-budgeted compressed RunStore); ``memory_budget_bytes``
        #: is the *per-worker* resident cap the run store honors.
        self.store = store
        self.memory_budget_bytes = memory_budget_bytes
        #: Opt every worker's store into the runtime invariant sanitizer
        #: (:mod:`repro.analysis.sanitize`); ``None`` defers to the
        #: ``REPRO_SANITIZE`` environment variable.
        self.sanitize = sanitize
        #: Speak the id-encoded wire protocol: workers exchange
        #: :class:`~repro.parallel.messages.EncodedBatch` (int64 rows +
        #: delta dictionaries) instead of term-level batches, with
        #: id-keyed dedup and routing.  Same fixpoint, ~an order of
        #: magnitude fewer bytes on the wire (see benchmarks).
        self.encode_wire = encode_wire
        if degrade not in ("abort", "recover"):
            raise ValueError(f'degrade must be "abort" or "recover", got {degrade!r}')
        #: Failure handling for :meth:`materialize_async` (see
        #: :mod:`repro.parallel.supervisor`): ``"abort"`` raises the typed
        #: :class:`~repro.parallel.supervisor.WorkerFailure`; ``"recover"``
        #: re-runs a lost node's partition on a survivor.
        self.degrade = degrade
        self.max_retries = max_retries
        #: Full :class:`~repro.parallel.supervisor.SupervisionPolicy`
        #: override; when set, ``degrade``/``max_retries`` are ignored.
        self.supervision = supervision

    # -- the run ---------------------------------------------------------------

    def materialize(
        self, graph: Graph, preflight: str | None = None
    ) -> ParallelRunResult:
        """Materialize a KB (mixed schema+instance or instance-only).
        The input graph is not mutated.

        ``preflight="strict"`` runs the static-analysis gate
        (:func:`repro.analysis.run_preflight`) before touching the data:
        rule partitionability (re-checked against the *current* rule set,
        not the one the constructor saw), protocol conformance of the
        installed backend, and the concurrency lint — raising a typed
        :class:`~repro.analysis.PreflightError` on any violation.
        ``"warn"`` reports the same findings as a warning; the default
        ``None`` (or ``"off"``) skips the gate.
        """
        self._preflight(preflight)
        schema, instance = split_schema(graph)

        stats = RunStats(k=self.k)
        data_result: DataPartitioningResult | None = None
        rule_result: RulePartitioningResult | None = None

        dictionaries: list = [None] * self.k
        if self.encode_wire:
            from repro.parallel.async_backend import build_base_dictionary
            from repro.rdf.dictionary import PartitionDictionary

            # Seed with the compiled rules too: their ground terms (head
            # constants, schema classes) are the bulk of what workers would
            # otherwise mint and ship as delta entries.
            base = build_base_dictionary([instance], rules=self.compiled.rules)
            dictionaries = [
                PartitionDictionary(base, i, self.k) for i in range(self.k)
            ]

        watch = Stopwatch()
        if self.approach == "data":
            # Vocabulary = class URIs in the data plus every TBox resource:
            # inference can type instances with classes (e.g. restriction
            # classes) that never appear in the base data, and those must
            # not become routing targets either.
            from repro.partitioning.data_generic import default_vocabulary

            vocabulary = default_vocabulary(instance)
            vocabulary |= self.compiled.schema.resources()
            data_result = partition_data(instance, self.policy, self.k,
                                         strip_schema=False,
                                         vocabulary=vocabulary)
            router: Router = DataPartitionRouter(
                data_result.owner, vocabulary=frozenset(vocabulary)
            )
            workers = [
                PartitionWorker(
                    node_id=i,
                    base=data_result.partitions[i],
                    rules=self.compiled.rules,
                    router=router,
                    strategy=self.strategy,
                    compile_rules=self.compile_rules,
                    dictionary=dictionaries[i],
                    engine=self.engine,
                    store=self.store,
                    memory_budget_bytes=self.memory_budget_bytes,
                    sanitize=self.sanitize,
                )
                for i in range(self.k)
            ]
        else:
            from repro.partitioning.rulepart import graph_workload_estimator

            pred_stats = predicate_counts(instance) if self.weight_rule_edges else None
            rule_result = partition_rules(
                self.compiled.rules, self.k,
                predicate_stats=pred_stats,
                workload_estimator=(
                    graph_workload_estimator(instance)
                    if self.weight_rule_edges
                    else None
                ),
                seed=self.seed,
            )
            router = RulePartitionRouter(rule_result.rule_sets)
            workers = [
                PartitionWorker(
                    node_id=i,
                    base=instance,  # every node gets the full data set
                    rules=rule_result.rule_sets[i],
                    router=router,
                    strategy=self.strategy,
                    compile_rules=self.compile_rules,
                    dictionary=dictionaries[i],
                    engine=self.engine,
                    store=self.store,
                    memory_budget_bytes=self.memory_budget_bytes,
                    sanitize=self.sanitize,
                )
                for i in range(self.k)
            ]
        stats.partition_time = watch.elapsed()

        # --- rounds (BSP) ---
        round_results = [w.bootstrap() for w in workers]
        self._record_round(stats, round_results)
        self._dispatch(round_results)

        for _ in range(self.max_rounds):
            if self.comm.pending() == 0:
                break
            round_results = [w.step(self.comm.recv_all(w.node_id)) for w in workers]
            self._record_round(stats, round_results)
            self._dispatch(round_results)
        else:
            raise RuntimeError(
                f"no termination after {self.max_rounds} rounds — "
                "routing is likely re-sending tuples in a cycle"
            )

        # --- aggregation ---
        agg_watch = Stopwatch()
        union = Graph()
        node_outputs = []
        engine_stats = EngineStats()
        for w in workers:
            out = w.output_graph()
            node_outputs.append(out)
            union.update(iter(out))
            engine_stats.merge(w.engine_stats)
        union.update(iter(schema))
        union.update(iter(self.compiled.schema))
        stats.aggregation_time = agg_watch.elapsed()

        return ParallelRunResult(
            graph=union,
            stats=stats,
            approach=self.approach,
            node_outputs=node_outputs,
            data_partitioning=data_result,
            rule_partitioning=rule_result,
            engine_stats=engine_stats,
            workers=workers,
        )

    # -- the asynchronous run --------------------------------------------------

    def _partition_async(self, instance: Graph):
        """Partition for the round-free backends, which rebuild routers on
        the far side of a process boundary from plain picklable inputs:
        ``(partitions, rules_per_node, router_kind, owner_table, rule_sets)``.
        """
        if self.approach == "data":
            from repro.partitioning.data_generic import default_vocabulary

            vocabulary = default_vocabulary(instance)
            vocabulary |= self.compiled.schema.resources()
            data_result = partition_data(
                instance, self.policy, self.k,
                strip_schema=False, vocabulary=vocabulary,
            )
            return (
                data_result.partitions,
                [list(self.compiled.rules) for _ in range(self.k)],
                "data",
                dict(data_result.owner.table),
                None,
            )
        from repro.partitioning.rulepart import graph_workload_estimator

        pred_stats = predicate_counts(instance) if self.weight_rule_edges else None
        rule_result = partition_rules(
            self.compiled.rules, self.k,
            predicate_stats=pred_stats,
            workload_estimator=(
                graph_workload_estimator(instance)
                if self.weight_rule_edges
                else None
            ),
            seed=self.seed,
        )
        return (
            [instance] * self.k,  # every node sees the full data set
            [list(rs) for rs in rule_result.rule_sets],
            "rule",
            None,
            [list(rs) for rs in rule_result.rule_sets],
        )

    def materialize_async(
        self,
        graph: Graph,
        multiprocess: bool = False,
        start_method: str | None = None,
        delivery: str = "fifo",
        faults=None,
        idle_timeout: float = 120.0,
        preflight: str | None = None,
    ):
        """Materialize via the supervised round-free runtime instead of
        BSP rounds; returns an
        :class:`~repro.parallel.async_backend.AsyncRunResult` whose graph
        includes the schema closure (same KB as :meth:`materialize`).

        ``multiprocess=True`` runs one OS process per partition
        (:func:`~repro.parallel.async_backend.run_multiprocess_async`);
        the default runs in-process with controllable ``delivery`` order
        and optional deterministic ``faults``
        (:class:`~repro.parallel.faults.FaultPlan`).  Either way, the
        reasoner's ``degrade``/``max_retries``/``supervision`` knobs
        decide whether a worker failure aborts the run (typed
        :class:`~repro.parallel.supervisor.WorkerFailure`) or triggers
        ledger-replay recovery on a survivor.
        """
        from repro.parallel.async_backend import (
            run_async_inprocess,
            run_multiprocess_async,
        )

        self._preflight(preflight)
        schema, instance = split_schema(graph)
        partitions, rules_per_node, router_kind, owner_table, rule_sets = (
            self._partition_async(instance)
        )
        if multiprocess:
            if faults is not None:
                raise ValueError(
                    "FaultPlan drives the in-process executor only; inject "
                    "multiprocess crashes via the REPRO_FAULT_KILL env var"
                )
            result = run_multiprocess_async(
                partitions, rules_per_node, router_kind,
                owner_table=owner_table, rule_sets=rule_sets,
                start_method=start_method, idle_timeout=idle_timeout,
                degrade=self.degrade, max_retries=self.max_retries,
                supervision=self.supervision, with_stats=True,
                engine=self.engine, store=self.store,
                memory_budget_bytes=self.memory_budget_bytes,
                sanitize=self.sanitize,
            )
        else:
            policy = self.supervision
            result = run_async_inprocess(
                partitions, rules_per_node, router_kind,
                owner_table=owner_table, rule_sets=rule_sets,
                delivery=delivery, seed=self.seed, faults=faults,
                degrade=policy.degrade if policy else self.degrade,
                max_retries=policy.max_retries if policy else self.max_retries,
                engine=self.engine, store=self.store,
                memory_budget_bytes=self.memory_budget_bytes,
                sanitize=self.sanitize,
            )
        result.graph.update(iter(schema))
        result.graph.update(iter(self.compiled.schema))
        return result

    def apply_async(
        self,
        graph: Graph,
        adds=(),
        removes=(),
        delivery: str = "fifo",
    ):
        """Materialize ``graph``, then maintain the closure under
        ``(adds, removes)`` with cluster-wide delete-and-rederive
        (:func:`~repro.parallel.async_backend.run_apply_inprocess`):
        the master broadcasts the retractions as id-encoded
        :class:`~repro.parallel.messages.RemovalBatch` rows, nodes
        overdelete and rebroadcast cascades to quiescence, then delete,
        rederive and re-close.  Workers run id-native regardless of this
        reasoner's ``engine`` setting (distributed DRed is an id-space
        protocol).  Retraction targets *instance* data — schema triples
        are compiled into the rules and replicated, not maintained.

        Returns an :class:`~repro.parallel.async_backend.AsyncRunResult`
        whose graph equals re-closing ``(base ∖ removes) ∪ adds``.
        """
        from repro.parallel.async_backend import run_apply_inprocess

        schema, instance = split_schema(graph)
        partitions, rules_per_node, router_kind, owner_table, rule_sets = (
            self._partition_async(instance)
        )
        result = run_apply_inprocess(
            partitions, rules_per_node, router_kind,
            adds=list(adds), removes=list(removes),
            owner_table=owner_table, rule_sets=rule_sets,
            delivery=delivery, seed=self.seed,
            store=self.store,
            memory_budget_bytes=self.memory_budget_bytes,
            sanitize=self.sanitize,
        )
        result.graph.update(iter(schema))
        result.graph.update(iter(self.compiled.schema))
        return result

    # -- helpers -----------------------------------------------------------------

    def _preflight(self, mode: str | None) -> None:
        """Run the static-analysis gate when requested (see
        :meth:`materialize`).  Checks the *current* ``self.compiled.rules``
        — a rule set swapped after construction is exactly the drift the
        run-time gate exists to catch."""
        if mode is None or mode == "off":
            return
        from repro.analysis import run_preflight

        run_preflight(
            rules=self.compiled.rules, mode=mode, approach=self.approach
        )

    def _dispatch(self, round_results: Sequence[RoundResult]) -> None:
        for result in round_results:
            for batch in result.outgoing:
                self.comm.send(batch)

    def _record_round(self, stats: RunStats, round_results: Sequence[RoundResult]) -> None:
        entries = []
        for r in round_results:
            sent_bytes = sum(b.payload_bytes() for b in r.outgoing)
            entries.append(
                NodeRoundStats(
                    node_id=r.node_id,
                    round_no=r.round_no,
                    reasoning_time=r.reasoning_time,
                    work=r.work,
                    derived=r.derived,
                    received_tuples=r.received,
                    sent_tuples=r.sent_tuples,
                    sent_bytes=sent_bytes,
                    received_bytes=0,  # filled below
                    sent_messages=len(r.outgoing),
                )
            )
        # Received bytes for round n are the bytes of batches consumed at
        # the start of round n — i.e. the previous round's outgoing traffic,
        # reconstructed from the sender side (exact: same process).
        previous: list[RoundResult] = getattr(self, "_last_outgoing", [])
        by_dest: dict[int, int] = {}
        for r in previous:
            for batch in r.outgoing:
                by_dest[batch.dest] = by_dest.get(batch.dest, 0) + batch.payload_bytes()
        for entry in entries:
            entry.received_bytes = by_dest.get(entry.node_id, 0)
        stats.rounds.append(entries)
        self._last_outgoing = list(round_results)
