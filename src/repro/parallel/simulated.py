"""The simulated cluster — measurement-driven reconstruction of the
paper's parallel timelines on a single core.

What is measured vs modeled (the substitution documented in DESIGN.md §2):

===============================  ==========================================
quantity                         source
===============================  ==========================================
per-node per-round reasoning     **measured** (wall time of the actual
                                 reasoner on the actual partition) and
                                 deterministic work units alongside
bytes / messages per node pair   **measured** (N-Triples payload sizes)
IO seconds                       modeled: :class:`CostModel` over measured
                                 traffic
sync seconds                     computed: BSP barrier — a node waits for
                                 the slowest node+IO of the round
aggregation seconds              measured union time + modeled read of the
                                 outputs
===============================  ==========================================

Timeline reconstruction (synchronous mode, the paper's implementation)::

    round_time(r)  = max_i [ reason(r, i) + io(r, i) ]
    makespan       = Σ_r round_time(r) + aggregation
    sync(i)        = Σ_r [ round_time(r) − reason(r, i) − io(r, i) ]

Asynchronous mode models Section VI-B's proposed improvement ("start
immediately using all the currently received tuples"): no barrier, each
node's finish time is its own busy time, makespan is the slowest node.
This is optimistic (it assumes tuples would have arrived in the same
rounds), which is exactly the bound the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.parallel.costmodel import CostModel
from repro.parallel.driver import ParallelReasoner, ParallelRunResult
from repro.parallel.stats import RunStats
from repro.rdf.graph import Graph
from repro.rdf.ntriples import triple_to_ntriples


@dataclass
class OverheadBreakdown:
    """Fig 2's four series — maxima over partitions, as the paper plots."""

    reasoning: float
    io: float
    sync: float
    aggregation: float

    @property
    def total(self) -> float:
        return self.reasoning + self.io + self.sync + self.aggregation


@dataclass
class SimulatedRun:
    """A parallel run plus its reconstructed cluster timeline."""

    result: ParallelRunResult
    cost_model: CostModel
    makespan: float
    per_node_reasoning: list[float]
    per_node_io: list[float]
    per_node_sync: list[float]
    aggregation_time: float
    #: Deterministic analogue of the makespan: max over nodes of total work
    #: units (communication excluded) — used for machine-independent
    #: speedup checks in tests.
    work_makespan: int = 0

    @property
    def k(self) -> int:
        return self.result.k

    def breakdown(self) -> OverheadBreakdown:
        return OverheadBreakdown(
            reasoning=max(self.per_node_reasoning, default=0.0),
            io=max(self.per_node_io, default=0.0),
            sync=max(self.per_node_sync, default=0.0),
            aggregation=self.aggregation_time,
        )

    def speedup(self, serial_time: float) -> float:
        return serial_time / self.makespan if self.makespan > 0 else float("inf")

    def work_speedup(self, serial_work: int) -> float:
        return serial_work / self.work_makespan if self.work_makespan else float("inf")


class SimulatedCluster:
    """Run a :class:`ParallelReasoner` and reconstruct its cluster timeline.

    ``mode="sync"`` is the paper's implementation (BSP rounds);
    ``mode="async"`` is Section VI-B's proposed improvement.
    """

    def __init__(
        self,
        reasoner: ParallelReasoner,
        cost_model: CostModel | None = None,
        mode: Literal["sync", "async"] = "sync",
    ) -> None:
        self.reasoner = reasoner
        self.cost_model = cost_model if cost_model is not None else CostModel.file_ipc()
        if mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode

    def run(self, graph: Graph) -> SimulatedRun:
        result = self.reasoner.materialize(graph)
        return self.reconstruct(result)

    def reconstruct(self, result: ParallelRunResult) -> SimulatedRun:
        """Build the timeline from a completed run's stats (reusable for
        replaying one run under several cost models)."""
        stats: RunStats = result.stats
        k = stats.k
        cm = self.cost_model

        per_node_reasoning = [0.0] * k
        per_node_io = [0.0] * k
        per_node_sync = [0.0] * k
        makespan = 0.0

        for round_stats in stats.rounds:
            busy = [0.0] * k
            for s in round_stats:
                io = cm.transfer_time(s.sent_bytes, s.sent_messages)
                # Receiving costs too: same model, message count approximated
                # by tuples arriving in at-most-one batch per sender.
                io += cm.transfer_time(
                    s.received_bytes, 1 if s.received_bytes else 0
                )
                per_node_reasoning[s.node_id] += s.reasoning_time
                per_node_io[s.node_id] += io
                busy[s.node_id] = s.reasoning_time + io
            round_time = max(busy, default=0.0)
            if self.mode == "sync":
                makespan += round_time
                for i in range(k):
                    per_node_sync[i] += round_time - busy[i]
            else:
                # async: no barrier; accumulate per-node busy time and take
                # the max at the end.
                pass

        if self.mode == "async":
            finish = [
                per_node_reasoning[i] + per_node_io[i] for i in range(k)
            ]
            makespan = max(finish, default=0.0)

        output_bytes = sum(
            len(triple_to_ntriples(t)) + 1
            for g in result.node_outputs
            for t in g
        )
        aggregation = stats.aggregation_time + cm.aggregation_time(output_bytes)
        makespan += aggregation

        work_per_node = stats.work_per_node()
        return SimulatedRun(
            result=result,
            cost_model=cm,
            makespan=makespan,
            per_node_reasoning=per_node_reasoning,
            per_node_io=per_node_io,
            per_node_sync=per_node_sync,
            aggregation_time=aggregation,
            work_makespan=max(work_per_node, default=0),
        )
