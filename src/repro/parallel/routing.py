"""Tuple routing — "send any of the newly generated tuples to other
processors as necessary" (Algorithm 3, line 4).

The routing rule depends on the partitioning family (Section IV):

* **Data partitioning** — consult the owner table: a fresh tuple goes to
  the owner of its subject and the owner of its object (they are where any
  future join partner lives).
* **Rule partitioning** — match the fresh tuple against the body sub-goals
  of every *other* partition's rules; send wherever it could fire
  something.
* **Broadcast** — send everything everywhere; the ablation baseline that
  shows why routing matters.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.datalog.ast import Atom, Rule
from repro.partitioning.base import OwnerFunction
from repro.rdf.terms import is_resource
from repro.rdf.triple import Triple


class Router(Protocol):
    """Destination selector for freshly derived tuples."""

    k: int

    def destinations(self, node_id: int, triple: Triple) -> list[int]:
        """Partition ids (excluding ``node_id``) that must receive
        ``triple``."""
        ...


class DataPartitionRouter:
    """Owner-table routing for the data-partitioning approach.

    A derived tuple is needed wherever tuples sharing its subject or object
    resource are collected — exactly the owner partitions of those two
    resources (Algorithm 1's placement invariant, maintained dynamically).
    ``vocabulary`` terms (class URIs) are never owned, mirroring the
    placement rule of :func:`repro.partitioning.data_generic.partition_data`.
    """

    def __init__(self, owner: OwnerFunction, vocabulary: frozenset = frozenset()) -> None:
        self.owner = owner
        self.k = owner.k
        self.vocabulary = vocabulary
        #: Id-keyed routing caches, populated by :meth:`bind_dictionary`.
        #: ``_subject_owner[s_id]`` is the owner pid; ``_object_route[o_id]``
        #: is the owner pid or -1 for non-routable objects (literals and
        #: vocabulary terms).
        self._subject_owner: dict[int, int] | None = None
        self._object_route: dict[int, int] | None = None

    def destinations(self, node_id: int, triple: Triple) -> list[int]:
        dests = {self.owner(triple.s)}
        if is_resource(triple.o) and triple.o not in self.vocabulary:
            dests.add(self.owner(triple.o))
        dests.discard(node_id)
        return sorted(dests)

    # -- id-keyed path ------------------------------------------------------

    def bind_dictionary(self, dictionary) -> None:
        """Switch the hot path to int-keyed lookups.

        Pre-warms the per-id caches from the owner's id-keyed table
        (``TableOwner.id_table``) where available; ids minted after
        partitioning fall back to the term-level owner exactly once, then
        hit the cache.  After binding, :meth:`destinations_by_id` never
        hashes a term for an id it has seen before.
        """
        table: dict[int, int] = {}
        id_table = getattr(self.owner, "id_table", None)
        if id_table is not None:
            table = id_table(dictionary)
        self._subject_owner = dict(table)
        # Owned resources route identically in object position; vocabulary
        # and literals are never in the owner table, so this pre-warm is
        # exact for every id it covers.
        self._object_route = dict(table)

    def destinations_by_id(
        self, node_id: int, s_id: int, o_id: int, triple: Triple
    ) -> list[int]:
        """Id-keyed :meth:`destinations`: two int dict probes per tuple in
        the warm case.  ``triple`` is consulted only on a cache miss (a
        term first seen at runtime)."""
        subject_owner = self._subject_owner
        object_route = self._object_route
        if subject_owner is None or object_route is None:
            raise RuntimeError("bind_dictionary must be called before id routing")
        s_pid = subject_owner.get(s_id)
        if s_pid is None:
            s_pid = subject_owner[s_id] = self.owner(triple.s)
        o_pid = object_route.get(o_id)
        if o_pid is None:
            if is_resource(triple.o) and triple.o not in self.vocabulary:
                o_pid = self.owner(triple.o)
            else:
                o_pid = -1
            object_route[o_id] = o_pid
        return self._merge(node_id, s_pid, o_pid)

    def destinations_by_id_cached(
        self, node_id: int, s_id: int, o_id: int
    ) -> list[int] | None:
        """Warm-cache-only :meth:`destinations_by_id`: no term objects at
        all.  Returns ``None`` on any cache miss — the caller decodes the
        ids and takes the term-level path, which populates the cache for
        next time.  The id-native worker's hot loop lives here."""
        subject_owner = self._subject_owner
        object_route = self._object_route
        if subject_owner is None or object_route is None:
            raise RuntimeError("bind_dictionary must be called before id routing")
        s_pid = subject_owner.get(s_id)
        if s_pid is None:
            return None
        o_pid = object_route.get(o_id)
        if o_pid is None:
            return None
        return self._merge(node_id, s_pid, o_pid)

    @staticmethod
    def _merge(node_id: int, s_pid: int, o_pid: int) -> list[int]:
        if s_pid == node_id:
            return [o_pid] if o_pid not in (-1, node_id) else []
        if o_pid in (-1, node_id, s_pid):
            return [s_pid]
        return [s_pid, o_pid] if s_pid < o_pid else [o_pid, s_pid]


class RulePartitionRouter:
    """Body-atom-match routing for the rule-partitioning approach.

    "We match the newly generated [tuple] with all the rules of other
    partitions to determine if it can trigger any of them.  The tuple is
    sent to all [partitions] in which it can be used." (Section IV.)

    Matching is pattern unification against each partition's body atoms,
    pre-bucketed by ground predicate so the common case is two dict probes
    per partition rather than a scan of every rule.
    """

    def __init__(self, rule_sets: Sequence[Sequence[Rule]]) -> None:
        self.k = len(rule_sets)
        # Per partition: body atoms bucketed by ground predicate, plus the
        # atoms whose predicate position is a variable (match anything).
        self._by_predicate: list[dict[object, list[Atom]]] = []
        self._wildcard: list[list[Atom]] = []
        for rules in rule_sets:
            buckets: dict[object, list[Atom]] = {}
            wild: list[Atom] = []
            for rule in rules:
                for atom in rule.body:
                    if atom.p.is_variable:
                        wild.append(atom)
                    else:
                        buckets.setdefault(atom.p, []).append(atom)
            self._by_predicate.append(buckets)
            self._wildcard.append(wild)

    def destinations(self, node_id: int, triple: Triple) -> list[int]:
        dests: list[int] = []
        for pid in range(self.k):
            if pid == node_id:
                continue
            if self._matches_partition(pid, triple):
                dests.append(pid)
        return dests

    def _matches_partition(self, pid: int, triple: Triple) -> bool:
        for atom in self._by_predicate[pid].get(triple.p, ()):
            if atom.match_triple(triple) is not None:
                return True
        for atom in self._wildcard[pid]:
            if atom.match_triple(triple) is not None:
                return True
        return False


class BroadcastRouter:
    """Send every fresh tuple to every other partition (ablation baseline:
    always correct, maximally wasteful)."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def destinations(self, node_id: int, triple: Triple) -> list[int]:
        return [pid for pid in range(self.k) if pid != node_id]
