"""Hybrid partitioning — the paper's stated future work (Section VII).

"In hybrid partitioning both the rule-set as well as data-set are
partitioned to obtain better results" (citing Shao, Bell & Hull, PDIS
1991).  The classic construction is a processor grid:

* data is split into ``k_data`` partitions (Algorithm 1, any policy);
* the rule base is split into ``k_rules`` subsets (Algorithm 2);
* node ``(i, j)`` holds data partition *i* and rule subset *j* — so the
  system has ``k_data x k_rules`` nodes, each holding a fraction of the
  data **and** a fraction of the rules.

Placement: each base tuple goes to its owner rows (subject and object
owners), replicated across that row's columns (every rule subset needs the
row's data).  Routing a fresh tuple composes the two single-approach
routers: destination rows come from the owner table, destination columns
from body-atom matching — so a tuple reaches exactly the nodes where it
can both meet its join partners and trigger a rule.

Compared to pure data partitioning this multiplies node count by
``k_rules`` without re-partitioning the data; compared to pure rule
partitioning it removes the every-node-holds-everything memory cost.  The
price is the row-wide replication of base tuples.

:class:`HybridParallelReasoner` mirrors :class:`ParallelReasoner`'s API and
reuses its worker/termination machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.analysis import check_data_partitionable
from repro.owl.compiler import CompiledRuleSet, compile_ontology
from repro.owl.reasoner import split_schema
from repro.parallel.comm import CommBackend, InMemoryComm
from repro.parallel.driver import ParallelRunResult
from repro.parallel.routing import DataPartitionRouter, RulePartitionRouter
from repro.parallel.stats import NodeRoundStats, RunStats
from repro.parallel.worker import PartitionWorker
from repro.partitioning.data_generic import default_vocabulary, partition_data
from repro.partitioning.policies import GraphPartitioningPolicy, PartitioningPolicy
from repro.partitioning.rulepart import graph_workload_estimator, partition_rules
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple
from repro.util.timing import Stopwatch


class HybridRouter:
    """Grid routing: rows by owner table, columns by body-atom matching.

    Node ids are ``row * k_rules + col``.
    """

    def __init__(
        self,
        data_router: DataPartitionRouter,
        rule_router: RulePartitionRouter,
        k_data: int,
        k_rules: int,
    ) -> None:
        self.data_router = data_router
        self.rule_router = rule_router
        self.k_data = k_data
        self.k_rules = k_rules
        self.k = k_data * k_rules

    def node_id(self, row: int, col: int) -> int:
        return row * self.k_rules + col

    def destinations(self, node_id: int, triple: Triple) -> list[int]:
        my_row, my_col = divmod(node_id, self.k_rules)
        # Rows where the tuple's join partners live (owner semantics;
        # data_router excludes nothing by node, so query from a neutral id).
        rows = set(self.data_router.destinations(-1, triple))
        rows.add(self.data_router.owner(triple.s))
        # Columns whose rule subsets can consume the tuple.  The rule
        # router's node exclusion is column-based; query with -1 and filter
        # ourselves.
        cols = [
            col
            for col in range(self.k_rules)
            if self.rule_router._matches_partition(col, triple)
        ]
        dests = [
            self.node_id(row, col)
            for row in rows
            for col in cols
            if not (row == my_row and col == my_col)
        ]
        return sorted(dests)


@dataclass
class HybridConfig:
    k_data: int
    k_rules: int

    @property
    def k(self) -> int:
        return self.k_data * self.k_rules


class HybridParallelReasoner:
    """OWL-Horst materializer over a k_data x k_rules processor grid.

    >>> from repro.rdf import Graph, URI
    >>> from repro.owl.vocabulary import OWL, RDF
    >>> tbox = Graph()
    >>> _ = tbox.add_spo(URI("ex:p"), RDF.type, OWL.TransitiveProperty)
    >>> _ = tbox.add_spo(URI("ex:p"), OWL.inverseOf, URI("ex:q"))
    >>> data = Graph()
    >>> for i in range(4):
    ...     _ = data.add_spo(URI(f"ex:n{i}"), URI("ex:p"), URI(f"ex:n{i+1}"))
    >>> hybrid = HybridParallelReasoner(tbox, k_data=2, k_rules=2)
    >>> result = hybrid.materialize(data)
    >>> len(result.graph) >= 4 + 6  # base + transitive closure
    True
    """

    def __init__(
        self,
        ontology: Graph,
        k_data: int,
        k_rules: int,
        policy: PartitioningPolicy | None = None,
        comm: CommBackend | None = None,
        max_rounds: int = 10_000,
        seed: int = 0,
        compile_rules: bool = True,
    ) -> None:
        if k_data <= 0 or k_rules <= 0:
            raise ValueError("k_data and k_rules must be positive")
        self.config = HybridConfig(k_data=k_data, k_rules=k_rules)
        self.compiled: CompiledRuleSet = compile_ontology(ontology, split_sameas=True)
        check_data_partitionable(self.compiled.rules)
        if k_rules > max(1, len(self.compiled.rules)):
            raise ValueError(
                f"cannot split {len(self.compiled.rules)} rules into "
                f"{k_rules} non-empty subsets"
            )
        self.policy = policy or GraphPartitioningPolicy(seed=seed)
        self.comm: CommBackend = comm if comm is not None else InMemoryComm(
            self.config.k
        )
        self.max_rounds = max_rounds
        self.seed = seed
        self.compile_rules = compile_rules

    def materialize(self, graph: Graph) -> ParallelRunResult:
        schema, instance = split_schema(graph)
        cfg = self.config
        stats = RunStats(k=cfg.k)

        watch = Stopwatch()
        vocabulary = default_vocabulary(instance)
        vocabulary |= self.compiled.schema.resources()
        data_result = partition_data(
            instance, self.policy, cfg.k_data,
            strip_schema=False, vocabulary=vocabulary,
        )
        rule_result = partition_rules(
            self.compiled.rules,
            cfg.k_rules,
            workload_estimator=graph_workload_estimator(instance),
            seed=self.seed,
        )
        data_router = DataPartitionRouter(
            data_result.owner, vocabulary=frozenset(vocabulary)
        )
        rule_router = RulePartitionRouter(rule_result.rule_sets)
        router = HybridRouter(data_router, rule_router, cfg.k_data, cfg.k_rules)

        workers = []
        for row in range(cfg.k_data):
            for col in range(cfg.k_rules):
                workers.append(
                    PartitionWorker(
                        node_id=router.node_id(row, col),
                        base=data_result.partitions[row],
                        rules=rule_result.rule_sets[col],
                        router=router,
                        compile_rules=self.compile_rules,
                    )
                )
        stats.partition_time = watch.elapsed()

        round_results = [w.bootstrap() for w in workers]
        self._record(stats, round_results)
        for r in round_results:
            for batch in r.outgoing:
                self.comm.send(batch)
        for _ in range(self.max_rounds):
            if self.comm.pending() == 0:
                break
            round_results = [w.step(self.comm.recv_all(w.node_id)) for w in workers]
            self._record(stats, round_results)
            for r in round_results:
                for batch in r.outgoing:
                    self.comm.send(batch)
        else:
            raise RuntimeError(f"no termination after {self.max_rounds} rounds")

        agg = Stopwatch()
        union = Graph()
        node_outputs = []
        for w in workers:
            out = w.output_graph()
            node_outputs.append(out)
            union.update(iter(out))
        union.update(iter(schema))
        union.update(iter(self.compiled.schema))
        stats.aggregation_time = agg.elapsed()

        return ParallelRunResult(
            graph=union,
            stats=stats,
            approach="data",  # closest ancestor for downstream consumers
            node_outputs=node_outputs,
            data_partitioning=data_result,
            rule_partitioning=rule_result,
        )

    def _record(self, stats: RunStats, round_results) -> None:
        previous = getattr(self, "_last_outgoing", [])
        by_dest: dict[int, int] = {}
        for r in previous:
            for batch in r.outgoing:
                by_dest[batch.dest] = by_dest.get(batch.dest, 0) + batch.payload_bytes()
        entries = []
        for r in round_results:
            entries.append(
                NodeRoundStats(
                    node_id=r.node_id,
                    round_no=r.round_no,
                    reasoning_time=r.reasoning_time,
                    work=r.work,
                    derived=r.derived,
                    received_tuples=r.received,
                    sent_tuples=r.sent_tuples,
                    sent_bytes=sum(b.payload_bytes() for b in r.outgoing),
                    received_bytes=by_dest.get(r.node_id, 0),
                    sent_messages=len(r.outgoing),
                )
            )
        stats.rounds.append(entries)
        self._last_outgoing = list(round_results)
