"""Distributed BGP query answering over a partitioned, materialized KB.

The paper stops at materialization; a deployed system must also *answer
queries* against the partition layout it just built, without first paying
the aggregation step (shipping every partition's output to one node).
This module adds that read path:

* **scatter** — each triple pattern of the query is matched at every
  partition locally (an index lookup against the partition's closed
  graph);
* **gather** — the per-pattern solution sets are unioned at the
  coordinator and joined there.

Correctness: after Algorithm 3 terminates, every closure triple exists on
at least one partition (its deriving node keeps it), so the union of local
matches for a pattern equals the centralized match set, and the
coordinator-side join over complete pattern relations is exact.  No
cross-partition join shipping is needed — the price is that the
coordinator joins (small) pattern relations rather than pushing joins
down, the standard federated-BGP baseline.

Two scatter implementations share that shape:

* **term-level** (``DistributedQueryEngine(partitions)``) — partitions are
  plain :class:`Graph` objects; local matching is the per-triple index
  walk and results travel as term triples;
* **id-native fast path** (``DistributedQueryEngine.from_workers``) —
  partitions are resident id-native :class:`PartitionWorker` stores.
  Patterns run in join order with *semi-join pruning*: the coordinator
  ships the ids already bound by earlier patterns, so a partition only
  returns rows that can still join.  Results come back as
  :class:`~repro.parallel.messages.EncodedBatch` int64 payloads (24 B per
  row plus ship-once delta-dictionary entries), reconciled into one
  coordinator id space by :class:`GatherDictionary` and joined with the
  vectorized :func:`~repro.rdf.idquery.join_pattern` kernel.

Accounting mirrors the reasoning runtime: per-partition probe counts and
shipped-solution counts feed the same :class:`CostModel` machinery; on
the id wire path the *measured* encoded payload bytes replace the
80-bytes-per-N-Triples-line estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.datalog.ast import Atom, Bindings
from repro.parallel.costmodel import CostModel
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.idquery import join_pattern
from repro.rdf.idstore import IdGraph
from repro.rdf.query import BGPQuery
from repro.rdf.terms import Term, Variable

if TYPE_CHECKING:
    from repro.parallel.worker import PartitionWorker


@dataclass
class DistributedQueryStats:
    """Work/traffic accounting for one distributed query."""

    patterns: int = 0
    #: per-partition index probes during the scatter phase
    probes_per_partition: list[int] = field(default_factory=list)
    #: triples shipped to the coordinator, per pattern
    shipped_per_pattern: list[int] = field(default_factory=list)
    #: measured id-wire payload per pattern (``EncodedBatch`` bytes summed
    #: over partitions); empty on the term-level scatter path, which never
    #: serializes
    payload_bytes_per_pattern: list[int] = field(default_factory=list)
    solutions: int = 0

    @property
    def total_shipped(self) -> int:
        return sum(self.shipped_per_pattern)

    @property
    def total_payload_bytes(self) -> int:
        """Measured gather traffic (0 when nothing was wire-encoded)."""
        return sum(self.payload_bytes_per_pattern)

    def modeled_gather_time(self, cost_model: CostModel,
                            bytes_per_solution: int | None = None) -> float:
        """Seconds to ship the scatter results under a cost model (one
        message per partition per pattern).

        The id wire path records real encoded payload sizes and those are
        used directly.  The term-level path never serializes, so its
        traffic is estimated at ``bytes_per_solution`` per shipped triple
        (default ~80 B, a typical N-Triples line); passing an explicit
        ``bytes_per_solution`` forces the estimate on either path.
        """
        messages = len(self.probes_per_partition) * self.patterns
        if bytes_per_solution is None and self.payload_bytes_per_pattern:
            return cost_model.transfer_time(self.total_payload_bytes,
                                            messages)
        per = 80 if bytes_per_solution is None else bytes_per_solution
        return cost_model.transfer_time(self.total_shipped * per, messages)


class GatherDictionary:
    """The coordinator's id space for gathered worker answers.

    Base-stripe ids (``< base_size``) are shared cluster-wide and map to
    themselves.  Above the base, each worker minted its own private
    stripe, and two workers can hold *different* ids for the same runtime
    term — joining gathered columns raw would miss term-equal rows.  This
    dictionary reconciles them: the first id seen for a term becomes its
    canonical coordinator id, and :meth:`canonical_ids` rewrites every
    gathered column into that space before it touches the join.

    Satisfies :class:`~repro.rdf.idquery.SupportsQueryDictionary`, so the
    coordinator join runs the same vectorized kernel as a local query.
    """

    def __init__(self, base: TermDictionary) -> None:
        self.base = base
        self._base_size = len(base)
        #: term -> canonical id for non-base terms.
        self._term_to_id: dict[Term, int] = {}
        #: canonical id -> term for non-base ids.
        self._term_by_id: dict[int, Term] = {}
        #: any seen worker id -> canonical id.
        self._canon: dict[int, int] = {}

    @property
    def base_size(self) -> int:
        return self._base_size

    def apply_delta(self, entries: Sequence[tuple[int, Term]]) -> None:
        """Register worker-shipped ``(id, term)`` pairs.  First id seen
        for a term wins; later ids for the same term become aliases."""
        for tid, term in entries:
            if tid in self._canon:
                continue
            canonical = self._term_to_id.setdefault(term, tid)
            self._canon[tid] = canonical
            if canonical == tid:
                self._term_by_id[tid] = term

    def canonical_ids(self, ids: np.ndarray) -> np.ndarray:
        """Rewrite a gathered id column into canonical coordinator ids
        (base ids pass through)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0 or int(ids.max(initial=0)) < self._base_size:
            return ids
        canon = self._canon
        base_size = self._base_size
        return np.asarray(
            [i if i < base_size else canon[i] for i in ids.tolist()],
            dtype=np.int64,
        )

    def get(self, term: Term) -> int | None:
        tid = self.base.get(term)
        if tid is None:
            tid = self._term_to_id.get(term)
        return tid

    def decode(self, tid: int) -> Term:
        if tid < self._base_size:
            return self.base.decode(tid)
        return self._term_by_id[tid]

    def decode_many(self, ids: np.ndarray) -> list[Term]:
        decode = self.base.decode
        by_id = self._term_by_id
        base_size = self._base_size
        return [
            decode(i) if i < base_size else by_id[i]
            for i in np.asarray(ids, dtype=np.int64).tolist()
        ]

    def __len__(self) -> int:
        return self._base_size + len(self._term_by_id)


class DistributedQueryEngine:
    """Answer BGP queries over a list of partition graphs.

    >>> from repro.rdf import Graph, URI
    >>> from repro.rdf.terms import Variable
    >>> from repro.datalog.ast import Atom
    >>> parts = [Graph(), Graph()]
    >>> _ = parts[0].add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
    >>> _ = parts[1].add_spo(URI("ex:b"), URI("ex:p"), URI("ex:c"))
    >>> engine = DistributedQueryEngine(parts)
    >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
    >>> rows, stats = engine.execute(
    ...     BGPQuery([Atom(x, URI("ex:p"), y), Atom(y, URI("ex:p"), z)]))
    >>> len(rows)  # the join spans the two partitions
    1
    """

    def __init__(
        self,
        partitions: Sequence[Graph] = (),
        *,
        workers: "Sequence[PartitionWorker] | None" = None,
    ) -> None:
        if workers is not None:
            if partitions:
                raise ValueError("pass partitions or workers, not both")
            worker_list = list(workers)
            if not worker_list:
                raise ValueError("need at least one worker")
            for w in worker_list:
                if not w.id_native or w.dictionary is None:
                    raise ValueError(
                        "the worker fast path needs id-native workers "
                        "(engine='columnar' with the id wire protocol); "
                        "pass term partition graphs instead")
            self.workers: list[PartitionWorker] | None = worker_list
            self.partitions: list[Graph] = []
            return
        if not partitions:
            raise ValueError("need at least one partition")
        self.workers = None
        self.partitions = list(partitions)

    @classmethod
    def from_workers(
        cls, workers: "Sequence[PartitionWorker]"
    ) -> "DistributedQueryEngine":
        """An engine on the id-native fast path: resident
        :class:`~repro.parallel.worker.PartitionWorker` stores answer
        patterns directly (semi-join pruned, id-encoded wire)."""
        return cls(workers=workers)

    # -- scatter ---------------------------------------------------------------

    def _scatter(self, pattern: Atom, stats: DistributedQueryStats) -> Graph:
        """Union of local matches for one pattern (deduplicated — a triple
        replicated on two partitions must count once)."""
        union = Graph()
        shipped = 0
        for i, partition in enumerate(self.partitions):
            s = None if isinstance(pattern.s, Variable) else pattern.s
            p = None if isinstance(pattern.p, Variable) else pattern.p
            o = None if isinstance(pattern.o, Variable) else pattern.o
            local = 0
            for triple in partition.match(s, p, o):
                local += 1
                if pattern.match_triple(triple) is not None:
                    union.add(triple)
            stats.probes_per_partition[i] += local
            shipped += local
        stats.shipped_per_pattern.append(shipped)
        return union

    # -- public API ---------------------------------------------------------------

    def _execute_ids(
        self, query: BGPQuery, bindings: Bindings | None
    ) -> tuple[list[Bindings], DistributedQueryStats]:
        """The id-native scatter/gather: patterns run in join order so
        each scatter ships the semi-join sets bound by the previous ones,
        and partitions return only rows that can still join."""
        workers = self.workers
        assert workers is not None
        stats = DistributedQueryStats(
            patterns=len(query.patterns),
            probes_per_partition=[0] * len(workers),
        )
        first = workers[0].dictionary
        assert first is not None
        gather = GatherDictionary(first.base)
        for w in workers:
            w.begin_query_session()
        #: Per worker: non-base ids whose (id, term) entry already shipped
        #: with a semi-join set this query (the coordinator-to-worker
        #: mirror of the workers' ship-once delta bookkeeping).
        shipped_terms: list[set[int]] = [set() for _ in workers]

        env: dict[Variable, np.ndarray] = {}
        n_env = 1
        if bindings:
            for var, term in bindings.items():
                tid = gather.get(term)
                if tid is None:
                    # Not in the cluster's base dictionary: no partition
                    # input mentions the term, and the coordinator has no
                    # id to ship for it.  (Closure-minted terms become
                    # addressable only after a pattern gathers them.)
                    raise ValueError(
                        f"seed binding {term!r} is outside the cluster's "
                        "base dictionary; the id-native path cannot ship "
                        "it — bind via a query pattern instead")
                env[var] = np.asarray([tid], dtype=np.int64)

        base_size = gather.base_size
        for pattern in query._order(set(bindings) if bindings else set()):
            if n_env == 0:
                # Semi-join pruning at its strongest: an earlier pattern
                # emptied the solution table, so nothing is scattered.
                stats.shipped_per_pattern.append(0)
                stats.payload_bytes_per_pattern.append(0)
                continue
            bound_sets: dict[int, np.ndarray] = {}
            for pos, term in enumerate(pattern):
                if isinstance(term, Variable) and term in env:
                    bound_sets[pos] = np.unique(env[term])
            needed = [ids[ids >= base_size] for ids in bound_sets.values()]
            nonbase = (np.unique(np.concatenate(needed)) if needed
                       else np.empty(0, dtype=np.int64))
            union = IdGraph()
            shipped = 0
            payload = 0
            for i, w in enumerate(workers):
                entries = [
                    (tid, gather.decode(tid))
                    for tid in nonbase.tolist()
                    if tid not in shipped_terms[i]
                ]
                shipped_terms[i].update(tid for tid, _term in entries)
                batch, probes = w.answer_pattern(
                    pattern, bound_ids=bound_sets or None, delta=entries)
                stats.probes_per_partition[i] += probes
                shipped += len(batch)
                payload += batch.payload_bytes()
                gather.apply_delta(batch.delta)
                union.add_rows(
                    gather.canonical_ids(batch.s_ids),
                    gather.canonical_ids(batch.p_ids),
                    gather.canonical_ids(batch.o_ids),
                )
            stats.shipped_per_pattern.append(shipped)
            stats.payload_bytes_per_pattern.append(payload)
            env, n_env, _probes = join_pattern(
                union, pattern, env, n_env, gather.get)
        stats.solutions = n_env
        decoded = {var: gather.decode_many(col) for var, col in env.items()}
        solutions: list[Bindings] = [
            {var: terms[i] for var, terms in decoded.items()}
            for i in range(n_env)
        ]
        return solutions, stats

    def execute(
        self, query: BGPQuery, bindings: Bindings | None = None
    ) -> tuple[list[Bindings], DistributedQueryStats]:
        """All solution mappings plus the scatter/gather accounting."""
        if self.workers is not None:
            return self._execute_ids(query, bindings)
        stats = DistributedQueryStats(
            patterns=len(query.patterns),
            probes_per_partition=[0] * len(self.partitions),
        )
        # Scatter every pattern, then join the complete relations at the
        # coordinator using the same bound-first BGP machinery — each
        # pattern now against its own gathered graph.
        gathered = {
            pattern: self._scatter(pattern, stats)
            for pattern in query.patterns
        }

        order = query._order(set(bindings.keys()) if bindings else set())
        solutions: list[Bindings] = []

        def solve(index: int, current: Bindings) -> None:
            if index == len(order):
                solutions.append(current)
                return
            pattern = order[index]
            from repro.datalog.engine import match_atom

            for extended in match_atom(gathered[pattern], pattern, current):
                solve(index + 1, extended)

        solve(0, dict(bindings) if bindings else {})
        stats.solutions = len(solutions)
        return solutions, stats

    def select(
        self, query: BGPQuery, *variables: Variable
    ) -> list[tuple[Term, ...]]:
        rows, _ = self.execute(query)
        if not variables:
            variables = tuple(sorted(query.variables(), key=lambda v: v.name))
        return sorted({tuple(b[v] for v in variables) for b in rows})

    def ask(self, query: BGPQuery) -> bool:
        rows, _ = self.execute(query)
        return bool(rows)
