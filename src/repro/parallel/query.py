"""Distributed BGP query answering over a partitioned, materialized KB.

The paper stops at materialization; a deployed system must also *answer
queries* against the partition layout it just built, without first paying
the aggregation step (shipping every partition's output to one node).
This module adds that read path:

* **scatter** — each triple pattern of the query is matched at every
  partition locally (an index lookup against the partition's closed
  graph);
* **gather** — the per-pattern solution sets are unioned at the
  coordinator and joined there.

Correctness: after Algorithm 3 terminates, every closure triple exists on
at least one partition (its deriving node keeps it), so the union of local
matches for a pattern equals the centralized match set, and the
coordinator-side join over complete pattern relations is exact.  No
cross-partition join shipping is needed — the price is that the
coordinator joins (small) pattern relations rather than pushing joins
down, the standard federated-BGP baseline.

Accounting mirrors the reasoning runtime: per-partition probe counts and
shipped-solution counts feed the same :class:`CostModel` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.datalog.ast import Atom, Bindings
from repro.parallel.costmodel import CostModel
from repro.rdf.graph import Graph
from repro.rdf.query import BGPQuery
from repro.rdf.terms import Term, Variable


@dataclass
class DistributedQueryStats:
    """Work/traffic accounting for one distributed query."""

    patterns: int = 0
    #: per-partition index probes during the scatter phase
    probes_per_partition: list[int] = field(default_factory=list)
    #: triples shipped to the coordinator, per pattern
    shipped_per_pattern: list[int] = field(default_factory=list)
    solutions: int = 0

    @property
    def total_shipped(self) -> int:
        return sum(self.shipped_per_pattern)

    def modeled_gather_time(self, cost_model: CostModel,
                            bytes_per_solution: int = 80) -> float:
        """Seconds to ship the scatter results under a cost model (one
        message per partition per pattern; ~80 B per N-Triples line)."""
        messages = len(self.probes_per_partition) * self.patterns
        return cost_model.transfer_time(
            self.total_shipped * bytes_per_solution, messages
        )


class DistributedQueryEngine:
    """Answer BGP queries over a list of partition graphs.

    >>> from repro.rdf import Graph, URI
    >>> from repro.rdf.terms import Variable
    >>> from repro.datalog.ast import Atom
    >>> parts = [Graph(), Graph()]
    >>> _ = parts[0].add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
    >>> _ = parts[1].add_spo(URI("ex:b"), URI("ex:p"), URI("ex:c"))
    >>> engine = DistributedQueryEngine(parts)
    >>> x, y, z = Variable("x"), Variable("y"), Variable("z")
    >>> rows, stats = engine.execute(
    ...     BGPQuery([Atom(x, URI("ex:p"), y), Atom(y, URI("ex:p"), z)]))
    >>> len(rows)  # the join spans the two partitions
    1
    """

    def __init__(self, partitions: Sequence[Graph]) -> None:
        if not partitions:
            raise ValueError("need at least one partition")
        self.partitions = list(partitions)

    # -- scatter ---------------------------------------------------------------

    def _scatter(self, pattern: Atom, stats: DistributedQueryStats) -> Graph:
        """Union of local matches for one pattern (deduplicated — a triple
        replicated on two partitions must count once)."""
        union = Graph()
        shipped = 0
        for i, partition in enumerate(self.partitions):
            s = None if isinstance(pattern.s, Variable) else pattern.s
            p = None if isinstance(pattern.p, Variable) else pattern.p
            o = None if isinstance(pattern.o, Variable) else pattern.o
            local = 0
            for triple in partition.match(s, p, o):
                local += 1
                if pattern.match_triple(triple) is not None:
                    union.add(triple)
            stats.probes_per_partition[i] += local
            shipped += local
        stats.shipped_per_pattern.append(shipped)
        return union

    # -- public API ---------------------------------------------------------------

    def execute(
        self, query: BGPQuery, bindings: Bindings | None = None
    ) -> tuple[list[Bindings], DistributedQueryStats]:
        """All solution mappings plus the scatter/gather accounting."""
        stats = DistributedQueryStats(
            patterns=len(query.patterns),
            probes_per_partition=[0] * len(self.partitions),
        )
        # Scatter every pattern, then join the complete relations at the
        # coordinator using the same bound-first BGP machinery — each
        # pattern now against its own gathered graph.
        gathered = {
            pattern: self._scatter(pattern, stats)
            for pattern in query.patterns
        }

        order = query._order(set(bindings.keys()) if bindings else set())
        solutions: list[Bindings] = []

        def solve(index: int, current: Bindings) -> None:
            if index == len(order):
                solutions.append(current)
                return
            pattern = order[index]
            from repro.datalog.engine import match_atom

            for extended in match_atom(gathered[pattern], pattern, current):
                solve(index + 1, extended)

        solve(0, dict(bindings) if bindings else {})
        stats.solutions = len(solutions)
        return solutions, stats

    def select(
        self, query: BGPQuery, *variables: Variable
    ) -> list[tuple[Term, ...]]:
        rows, _ = self.execute(query)
        if not variables:
            variables = tuple(sorted(query.variables(), key=lambda v: v.name))
        return sorted({tuple(b[v] for v in variables) for b in rows})

    def ask(self, query: BGPQuery) -> bool:
        rows, _ = self.execute(query)
        return bool(rows)
