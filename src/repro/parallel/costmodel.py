"""Communication cost models for the simulated cluster.

The paper's quantities we cannot measure on a single-core container are the
*seconds* spent moving bytes between nodes.  Everything upstream of that —
which tuples cross partitions, how many bytes they serialize to, how many
batch files each round writes — is measured exactly; a :class:`CostModel`
maps those measurements to time with two parameters per channel:

    transfer_time = messages * per_message_overhead + bytes / bandwidth

Presets (order-of-magnitude figures for the paper's 2008-era cluster):

* ``file_ipc``  — the paper's shared-filesystem scheme: each batch is a
  file create + NFS round trip (~10 ms) at ~50 MB/s effective.
* ``mpi``       — the improvement Section VI-B proposes: ~50 µs message
  overhead at gigabit-ish ~100 MB/s.
* ``shared_memory`` — the rule-partitioning configuration ("we had to
  modify the implementation ... to use shared memory"): ~1 µs, ~2 GB/s.

The absolute values shift the overhead magnitudes (Fig 2's y-axis), not
who wins; the experiments only rely on the *relative* statement the paper
makes — file IPC ≫ MPI ≫ shared memory — and on overheads growing with k.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Maps measured message counts/bytes to modeled seconds."""

    name: str
    per_message_overhead: float
    bandwidth: float  # bytes/second
    #: Master-side aggregation throughput: reading every partition's output
    #: and unioning it (bytes/second).
    aggregation_bandwidth: float

    def transfer_time(self, nbytes: int, nmessages: int) -> float:
        """Seconds to move ``nbytes`` across ``nmessages`` batches."""
        if nbytes < 0 or nmessages < 0:
            raise ValueError("negative traffic")
        return nmessages * self.per_message_overhead + nbytes / self.bandwidth

    def aggregation_time(self, nbytes: int) -> float:
        return nbytes / self.aggregation_bandwidth

    # -- presets ---------------------------------------------------------------

    @classmethod
    def file_ipc(cls) -> "CostModel":
        return cls(
            name="file-ipc",
            per_message_overhead=10e-3,
            bandwidth=50e6,
            aggregation_bandwidth=50e6,
        )

    @classmethod
    def mpi(cls) -> "CostModel":
        return cls(
            name="mpi",
            per_message_overhead=50e-6,
            bandwidth=100e6,
            aggregation_bandwidth=100e6,
        )

    @classmethod
    def shared_memory(cls) -> "CostModel":
        return cls(
            name="shared-memory",
            per_message_overhead=1e-6,
            bandwidth=2e9,
            aggregation_bandwidth=2e9,
        )

    @classmethod
    def zero(cls) -> "CostModel":
        """Free communication — isolates pure reasoning speedup."""
        return cls(
            name="zero",
            per_message_overhead=0.0,
            bandwidth=float("inf"),
            aggregation_bandwidth=float("inf"),
        )
