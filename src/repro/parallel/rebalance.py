"""Dynamic load balancing — the paper's closing suggestion.

The paper uses static balancing and notes the alternative: "in dynamic
load-balancing system[s] like [Wolfson & Ozeri; Dewan et al.] the system
reallocates workloads, if the initial partitioning scheme did not provide
a balanced partition" (Section VII), and the conclusions sketch hybrid
dynamics ("the data-set is initially partitioned and during later rounds
rule-sets are partitioned for load balancing").

:class:`RebalancingParallelReasoner` implements the data-reduction flavour
of dynamic rebalancing on top of the Algorithm 3 runtime:

1. run a round; measure each node's reasoning work (the same counters the
   simulated cluster uses);
2. if ``max_work / mean_work`` exceeds ``imbalance_threshold``, *migrate
   ownership*: a slice of the heaviest node's resources is reassigned to
   the lightest node in the shared owner table, and the donor ships every
   tuple involving those resources to the receiver;
3. subsequent routing consults the updated table, so the placement
   invariant (every tuple reaches its endpoints' owners) is maintained and
   the closure stays exact.

Migration copies rather than moves (the donor keeps its tuples): stale
copies can only duplicate derivations, which aggregation de-duplicates;
deleting would risk dropping tuples the donor still owns through the other
endpoint.  The cost is memory — the usual dynamic-balancing trade.

Rebalancing only pays off for workloads whose later rounds carry real work
(long cross-partition derivation chains); for one-shot fixpoints the
bootstrap dominates and no reallocation can help, which is exactly why the
paper's static scheme "works quite well" for its benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.owl.compiler import CompiledRuleSet, compile_ontology
from repro.owl.reasoner import split_schema
from repro.parallel.comm import CommBackend, InMemoryComm
from repro.parallel.messages import TupleBatch
from repro.parallel.routing import DataPartitionRouter
from repro.parallel.stats import NodeRoundStats, RunStats
from repro.parallel.worker import PartitionWorker, RoundResult
from repro.partitioning.base import TableOwner
from repro.partitioning.data_generic import default_vocabulary, partition_data
from repro.partitioning.policies import (
    GraphPartitioningPolicy,
    PartitioningPolicy,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.util.timing import Stopwatch


@dataclass
class Migration:
    """One ownership transfer decided by the rebalancer."""

    round_no: int
    donor: int
    receiver: int
    resources: list[Term]
    tuples_shipped: int


@dataclass
class RebalancingRunResult:
    """Run result plus the migration log."""

    graph: Graph
    stats: RunStats
    node_outputs: list[Graph] = field(default_factory=list)
    migrations: list[Migration] = field(default_factory=list)

    @property
    def k(self) -> int:
        return self.stats.k


class RebalancingParallelReasoner:
    """Data-partitioned parallel materializer with ownership migration.

    Parameters mirror :class:`~repro.parallel.driver.ParallelReasoner`,
    plus:

    imbalance_threshold:
        Rebalance when (max node work) / (mean node work) in a round
        exceeds this (default 1.5).
    migration_fraction:
        Fraction of the donor's owned resources to move per migration
        (default 0.25).
    """

    def __init__(
        self,
        ontology: Graph,
        k: int,
        policy: PartitioningPolicy | None = None,
        comm: CommBackend | None = None,
        imbalance_threshold: float = 1.5,
        migration_fraction: float = 0.25,
        max_rounds: int = 10_000,
        seed: int = 0,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if imbalance_threshold < 1.0:
            raise ValueError("imbalance_threshold must be >= 1.0")
        if not 0.0 < migration_fraction <= 1.0:
            raise ValueError("migration_fraction must be in (0, 1]")
        self.k = k
        self.compiled: CompiledRuleSet = compile_ontology(ontology, split_sameas=True)
        self.policy = policy or GraphPartitioningPolicy(seed=seed)
        self.comm: CommBackend = comm if comm is not None else InMemoryComm(k)
        self.imbalance_threshold = imbalance_threshold
        self.migration_fraction = migration_fraction
        self.max_rounds = max_rounds
        self.seed = seed

    # -- run ---------------------------------------------------------------------

    def materialize(self, graph: Graph) -> RebalancingRunResult:
        schema, instance = split_schema(graph)
        stats = RunStats(k=self.k)
        migrations: list[Migration] = []

        watch = Stopwatch()
        vocabulary = default_vocabulary(instance)
        vocabulary |= self.compiled.schema.resources()
        data_result = partition_data(
            instance, self.policy, self.k,
            strip_schema=False, vocabulary=vocabulary,
        )
        owner = data_result.owner
        if not isinstance(owner, TableOwner):
            # Migration rewrites table entries; wrap hash-style owners in
            # an (initially empty) table so reassignments stick.
            owner = TableOwner(self.k, {
                r: data_result.owner(r)
                for p in data_result.partitions
                for r in p.resources()
                if r not in vocabulary
            })
        router = DataPartitionRouter(owner, vocabulary=frozenset(vocabulary))
        workers = [
            PartitionWorker(
                node_id=i,
                base=data_result.partitions[i],
                rules=self.compiled.rules,
                router=router,
                forward_received=True,  # ownership moves; see worker docs
            )
            for i in range(self.k)
        ]
        stats.partition_time = watch.elapsed()

        round_results = [w.bootstrap() for w in workers]
        self._record(stats, round_results)
        self._dispatch(round_results)
        migrations.extend(
            self._maybe_migrate(workers, owner, vocabulary, round_results, 0)
        )

        for round_no in range(1, self.max_rounds + 1):
            if self.comm.pending() == 0:
                break
            round_results = [
                w.step(self.comm.recv_all(w.node_id)) for w in workers
            ]
            self._record(stats, round_results)
            self._dispatch(round_results)
            migrations.extend(
                self._maybe_migrate(
                    workers, owner, vocabulary, round_results, round_no
                )
            )
        else:
            raise RuntimeError(f"no termination after {self.max_rounds} rounds")

        agg = Stopwatch()
        union = Graph()
        node_outputs = []
        for w in workers:
            out = w.output_graph()
            node_outputs.append(out)
            union.update(iter(out))
        union.update(iter(schema))
        union.update(iter(self.compiled.schema))
        stats.aggregation_time = agg.elapsed()

        return RebalancingRunResult(
            graph=union,
            stats=stats,
            node_outputs=node_outputs,
            migrations=migrations,
        )

    # -- internals -----------------------------------------------------------------

    def _dispatch(self, round_results: Sequence[RoundResult]) -> None:
        for result in round_results:
            for batch in result.outgoing:
                self.comm.send(batch)

    def _record(self, stats: RunStats, round_results: Sequence[RoundResult]) -> None:
        previous = getattr(self, "_last_outgoing", [])
        by_dest: dict[int, int] = {}
        for r in previous:
            for batch in r.outgoing:
                by_dest[batch.dest] = by_dest.get(batch.dest, 0) + batch.payload_bytes()
        entries = []
        for r in round_results:
            entries.append(
                NodeRoundStats(
                    node_id=r.node_id,
                    round_no=r.round_no,
                    reasoning_time=r.reasoning_time,
                    work=r.work,
                    derived=r.derived,
                    received_tuples=r.received,
                    sent_tuples=r.sent_tuples,
                    sent_bytes=sum(b.payload_bytes() for b in r.outgoing),
                    received_bytes=by_dest.get(r.node_id, 0),
                    sent_messages=len(r.outgoing),
                )
            )
        stats.rounds.append(entries)
        self._last_outgoing = list(round_results)

    def _maybe_migrate(
        self,
        workers: list[PartitionWorker],
        owner: TableOwner,
        vocabulary: set[Term],
        round_results: Sequence[RoundResult],
        round_no: int,
    ) -> list[Migration]:
        # There is nothing left to balance once the system is quiescing.
        if self.comm.pending() == 0:
            return []
        works = [r.work for r in round_results]
        total = sum(works)
        if total == 0:
            return []
        mean = total / self.k
        heaviest = max(range(self.k), key=works.__getitem__)
        lightest = min(range(self.k), key=works.__getitem__)
        if works[heaviest] <= self.imbalance_threshold * max(mean, 1):
            return []
        if heaviest == lightest:
            return []

        donor = workers[heaviest]
        donor_resources = sorted(
            r
            for r in donor.graph.resources()
            if r not in vocabulary and owner(r) == heaviest
        )
        if not donor_resources:
            return []
        count = max(1, int(len(donor_resources) * self.migration_fraction))
        moving = donor_resources[:count]

        # Reassign ownership, then ship every tuple touching the moved
        # resources so the receiver satisfies the placement invariant.
        shipped: list = []
        seen: set = set()
        for resource in moving:
            owner.table[resource] = lightest
            for t in donor.graph.match(s=resource):
                if t not in seen:
                    seen.add(t)
                    shipped.append(t)
            for t in donor.graph.match(o=resource):
                if t not in seen:
                    seen.add(t)
                    shipped.append(t)
        if shipped:
            self.comm.send(
                TupleBatch.make(heaviest, lightest, round_no, shipped)
            )
        return [
            Migration(
                round_no=round_no,
                donor=heaviest,
                receiver=lightest,
                resources=list(moving),
                tuples_shipped=len(shipped),
            )
        ]
