"""Termination detection for the asynchronous (round-free) runtime.

The lock-step driver detects termination trivially: a barrier ends every
round, so "no batches produced anywhere" is directly observable.  Remove
the barrier and the question becomes the classic distributed-termination
problem: a worker that looks idle may be about to receive a tuple that
wakes it up.

:class:`CountingTermination` is Safra-style message counting collapsed
onto this runtime's star topology, where the master is the only channel
(it relays every batch, as the paper's shared filesystem did).  Invariants
that make the counting sound:

* The master increments ``forwarded[i]`` *before* enqueueing a batch to
  worker i, and is single-threaded: counts never lag the channel.
* A worker processes one inbox message at a time and, after finishing it,
  sends exactly one acknowledgement carrying its cumulative consumed count
  *and* whatever batches that processing produced — the ack and the
  production travel together, so the master can never observe the ack
  without having the production in hand.

Under those invariants, once every worker has bootstrapped and
``consumed[i] == forwarded[i]`` holds for all i at the master, every
message ever sent has been fully processed, every production it triggered
has reached the master and been relayed (bumping ``forwarded`` again if it
was non-empty), and every worker is blocked on an empty inbox — the global
fixpoint.  No white/black token round trip is needed because the star
center sees every edge.
"""

from __future__ import annotations


class CountingTermination:
    """Master-side sent/received counters with an exact quiescence test.

    >>> det = CountingTermination(2)
    >>> det.mark_bootstrapped(0); det.mark_bootstrapped(1)
    >>> det.quiescent()
    True
    >>> det.record_forward(1)
    >>> det.quiescent()
    False
    >>> det.record_ack(1, consumed=1)
    >>> det.quiescent()
    True
    """

    __slots__ = ("k", "forwarded", "consumed", "_bootstrapped")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        #: Messages the master has relayed to each worker.
        self.forwarded = [0] * k
        #: Each worker's last-reported cumulative processed count.
        self.consumed = [0] * k
        self._bootstrapped = [False] * k

    def mark_bootstrapped(self, node_id: int) -> None:
        """Worker ``node_id``'s bootstrap production has been received.
        Until every worker has reported in, quiescence is undecidable (an
        unbooted worker may still produce)."""
        self._bootstrapped[node_id] = True

    def record_forward(self, dest: int) -> None:
        self.forwarded[dest] += 1

    def record_ack(self, node_id: int, consumed: int) -> None:
        """Absolute cumulative count from a worker's acknowledgement."""
        if consumed < self.consumed[node_id]:
            raise ValueError(
                f"node {node_id} ack went backwards: "
                f"{consumed} < {self.consumed[node_id]}"
            )
        self.consumed[node_id] = consumed

    def record_delivery(self, node_id: int) -> None:
        """In-process variant: one message was just consumed by
        ``node_id`` (increments rather than reports)."""
        self.consumed[node_id] += 1

    def in_flight(self) -> int:
        """Messages forwarded but not yet acknowledged as consumed."""
        return sum(f - c for f, c in zip(self.forwarded, self.consumed))

    def outstanding(self, node_id: int) -> int:
        """Messages forwarded to ``node_id`` but not yet acknowledged —
        the supervisor's per-node stall test."""
        return self.forwarded[node_id] - self.consumed[node_id]

    def counts(self, node_id: int) -> tuple[int, int]:
        """``(forwarded, consumed)`` for diagnostics (WorkerFailure)."""
        return self.forwarded[node_id], self.consumed[node_id]

    def reset_node(self, node_id: int) -> None:
        """Forget a failed worker's ledger entry before recovery re-seeds
        it: the replacement incarnation bootstraps from zero and the
        master re-counts every replayed batch, so the exact-quiescence
        invariant holds for the new incarnation as for the old."""
        self.forwarded[node_id] = 0
        self.consumed[node_id] = 0
        self._bootstrapped[node_id] = False

    def quiescent(self) -> bool:
        """True iff every worker bootstrapped and every forwarded message
        is acknowledged — the exact global-termination condition."""
        return all(self._bootstrapped) and self.forwarded == self.consumed
