"""Asynchronous, round-free execution of Algorithm 3 over the id-encoded
wire protocol.

The lock-step backends (:mod:`repro.parallel.driver`,
:mod:`repro.parallel.mp_backend`) advance all workers through global
rounds: nobody starts round n+1 until everyone finished round n, and the
barrier itself is the termination test.  Following the dynamic-data-
exchange design (Ajileye et al.), this module removes the barrier: a
worker reasons over each batch *as it arrives*, interleaving freely with
its peers, and the master detects global quiescence with Safra-style
sent/received counting (:class:`repro.parallel.termination.CountingTermination`)
instead of a barrier.

Everything on the wire is id-encoded: the master builds one base
:class:`~repro.rdf.dictionary.TermDictionary` over the input KB, each
worker extends it through a private :class:`~repro.rdf.dictionary.PartitionDictionary`
stripe, and batches travel as flat int64 ``(s, p, o)`` rows plus a
once-per-peer delta-dictionary for newly minted terms
(:class:`~repro.parallel.messages.EncodedBatch`).

Two executors share the protocol:

* :func:`run_async_inprocess` — workers as in-process objects, deliveries
  drained from one pending pool.  ``delivery="shuffle"`` pops that pool in
  seeded-random order, deliberately reordering message arrival — the
  deterministic vehicle for proving termination is delivery-order
  independent.
* :func:`run_multiprocess_async` — one OS process per partition.  The
  master relays each produced batch the moment it arrives; workers block
  on their inbox, not on a round barrier.

Both are differentially tested against the serial fixpoint and the
lock-step oracle.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from dataclasses import dataclass
from typing import Sequence

from repro.datalog.ast import Rule
from repro.parallel.messages import EncodedBatch
from repro.parallel.routing import DataPartitionRouter, Router, RulePartitionRouter
from repro.parallel.stats import AsyncRunStats
from repro.parallel.termination import CountingTermination
from repro.parallel.worker import PartitionWorker
from repro.rdf.dictionary import PartitionDictionary, TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.rdf.triple import Triple


def build_base_dictionary(
    partitions: Sequence[Graph],
    extra: Sequence[Graph] = (),
    rules: Sequence[Rule] = (),
) -> TermDictionary:
    """The shared base stripe: every term the master can see at setup,
    encoded once.  Pass the rule base too — rule atoms are the only other
    source of ground terms (head constants like class URIs), and seeding
    them means delta-dictionary traffic only carries terms that genuinely
    first exist at runtime."""
    d = TermDictionary()
    enc = d.encode
    for g in list(partitions) + list(extra):
        for t in g:
            enc(t.s)
            enc(t.p)
            enc(t.o)
    from repro.rdf.terms import Variable

    for r in rules:
        for atom in (*r.body, r.head):
            for term in atom:
                if not isinstance(term, Variable):
                    enc(term)
    return d


def _all_rules(
    rules_per_node: Sequence[Sequence[Rule]],
    rule_sets: Sequence[Sequence[Rule]] | None,
) -> list[Rule]:
    out: list[Rule] = []
    for rs in list(rules_per_node) + list(rule_sets or []):
        out.extend(rs)
    return out


def _make_router(
    router_kind: str,
    owner_table: dict | None,
    k: int,
    rule_sets: Sequence[Sequence[Rule]] | None,
) -> Router:
    if router_kind == "data":
        from repro.partitioning.base import TableOwner

        return DataPartitionRouter(TableOwner(k, owner_table or {}))
    return RulePartitionRouter(rule_sets or [])


@dataclass
class AsyncRunResult:
    """Output of an asynchronous run: the unioned KB plus wire accounting."""

    graph: Graph
    stats: AsyncRunStats
    #: Final sent/consumed counters (exposed for the termination tests).
    forwarded: list[int]
    consumed: list[int]


# -- in-process executor ------------------------------------------------------


def run_async_inprocess(
    partitions: Sequence[Graph],
    rules_per_node: Sequence[Sequence[Rule]],
    router_kind: str,
    owner_table: dict | None = None,
    rule_sets: Sequence[Sequence[Rule]] | None = None,
    delivery: str = "fifo",
    seed: int = 0,
    max_messages: int = 1_000_000,
    seed_rule_terms: bool = True,
) -> AsyncRunResult:
    """Round-free run with in-process workers and controllable delivery.

    ``seed_rule_terms=True`` (default) puts the rule base's ground terms
    into the base dictionary, so delta messages carry only runtime-fresh
    terms; the delta round-trip tests pass ``False`` to force every rule
    constant through the delta path.

    ``delivery`` picks which *channel* — a (sender, dest) pair — delivers
    its oldest pending message next: ``"fifo"`` always the globally oldest
    send, ``"lifo"`` the newest channel activity first, ``"shuffle"`` a
    seeded-random channel each step.  Within a channel, order is always
    preserved: the wire protocol (like the ``multiprocessing`` queues and
    any MPI transport it stands in for) assumes FIFO channels — a delta-
    dictionary entry must not arrive after a row that needs it — while
    arrival order *across* channels is adversarial.  All delivery orders
    must (and do) reach the same fixpoint; the shuffle mode is the
    out-of-order test harness.
    """
    if delivery not in ("fifo", "lifo", "shuffle"):
        raise ValueError(f"unknown delivery order {delivery!r}")
    k = len(partitions)
    if len(rules_per_node) != k:
        raise ValueError("rules_per_node must match partitions")
    base = build_base_dictionary(
        partitions,
        rules=_all_rules(rules_per_node, rule_sets) if seed_rule_terms else (),
    )
    router = _make_router(router_kind, owner_table, k, rule_sets)
    workers = [
        PartitionWorker(
            node_id=i,
            base=partitions[i],
            rules=rules_per_node[i],
            router=router,
            dictionary=PartitionDictionary(base, i, k),
        )
        for i in range(k)
    ]

    stats = AsyncRunStats(k=k)
    det = CountingTermination(k)
    # Per-channel FIFO queues; `order` lists channels by last activity so
    # fifo/lifo/shuffle can pick the next delivering channel.
    from collections import deque

    channels: dict[tuple[int, int], deque[EncodedBatch]] = {}
    order: list[tuple[int, int]] = []
    in_transit = 0

    def _emit(batches: Sequence[EncodedBatch]) -> None:
        nonlocal in_transit
        for b in batches:
            det.record_forward(b.dest)
            stats.record_batch(b)
            key = (b.sender, b.dest)
            box = channels.get(key)
            if box is None:
                box = channels[key] = deque()
            box.append(b)
            order.append(key)
            in_transit += 1

    if delivery == "shuffle":
        import random

        rng = random.Random(seed)

    for w in workers:
        _emit(w.bootstrap().outgoing)
        det.mark_bootstrapped(w.node_id)

    delivered = 0
    while in_transit:
        if delivered >= max_messages:
            raise RuntimeError(f"no termination after {max_messages} messages")
        if delivery == "shuffle":
            idx = rng.randrange(len(order))
        elif delivery == "lifo":
            idx = len(order) - 1
        else:
            idx = 0
        key = order.pop(idx)
        batch = channels[key].popleft()
        in_transit -= 1
        delivered += 1
        result = workers[batch.dest].step([batch])
        det.record_delivery(batch.dest)
        _emit(result.outgoing)

    if not det.quiescent():  # pragma: no cover - invariant check
        raise RuntimeError("pending pool drained but counters disagree")

    union = Graph()
    for w in workers:
        union.update(iter(w.output_graph()))
    return AsyncRunResult(
        graph=union,
        stats=stats,
        forwarded=list(det.forwarded),
        consumed=list(det.consumed),
    )


# -- multiprocess executor ----------------------------------------------------


@dataclass
class _AsyncNodeConfig:
    """Everything one async worker process needs (picklable, spawn-safe)."""

    node_id: int
    k: int
    base_triples: list[Triple]
    rules: list[Rule]
    router_kind: str
    owner_table: dict | None
    rule_sets: list[list[Rule]] | None
    base_terms: list[Term]


def _async_worker_main(cfg: _AsyncNodeConfig, inbox: mp.Queue, outbox: mp.Queue) -> None:
    """Worker process loop — no rounds.

    Protocol:
      master -> worker: ("tuples", EncodedBatch) | ("finish",)
      worker -> master: ("produced", node_id, [EncodedBatch...], consumed)
                        | ("output", node_id, [Triple...])
    Every processed inbox message yields exactly one "produced" message
    (possibly with zero batches) whose cumulative ``consumed`` count is the
    acknowledgement the master's termination counting relies on.
    """
    base = TermDictionary.from_terms(cfg.base_terms)
    worker = PartitionWorker(
        node_id=cfg.node_id,
        base=Graph(cfg.base_triples),
        rules=cfg.rules,
        router=_make_router(cfg.router_kind, cfg.owner_table, cfg.k, cfg.rule_sets),
        dictionary=PartitionDictionary(base, cfg.node_id, cfg.k),
    )
    result = worker.bootstrap()
    consumed = 0
    outbox.put(("produced", cfg.node_id, result.outgoing, consumed))
    while True:
        msg = inbox.get()
        if msg[0] == "finish":
            outbox.put(("output", cfg.node_id, list(worker.output_graph())))
            return
        assert msg[0] == "tuples"
        consumed += 1
        result = worker.step([msg[1]])
        outbox.put(("produced", cfg.node_id, result.outgoing, consumed))


def run_multiprocess_async(
    partitions: Sequence[Graph],
    rules_per_node: Sequence[Sequence[Rule]],
    router_kind: str,
    owner_table: dict | None = None,
    rule_sets: Sequence[Sequence[Rule]] | None = None,
    max_messages: int = 1_000_000,
    start_method: str | None = None,
    idle_timeout: float = 120.0,
    seed_rule_terms: bool = True,
) -> Graph:
    """Round-free execution across real processes; returns the unioned KB.

    Same configuration surface as
    :func:`repro.parallel.mp_backend.run_multiprocess` (the lock-step
    differential oracle).  ``start_method=None`` uses the platform default
    (fork on Linux, spawn on macOS/Windows); both work — every shipped
    object is picklable and terms re-intern on arrival.
    """
    k = len(partitions)
    if len(rules_per_node) != k:
        raise ValueError("rules_per_node must match partitions")
    base = build_base_dictionary(
        partitions,
        rules=_all_rules(rules_per_node, rule_sets) if seed_rule_terms else (),
    )
    base_terms = base.terms()
    ctx = mp.get_context(start_method)
    inboxes = [ctx.Queue() for _ in range(k)]
    outbox = ctx.Queue()

    processes = []
    for i in range(k):
        cfg = _AsyncNodeConfig(
            node_id=i,
            k=k,
            base_triples=list(partitions[i]),
            rules=list(rules_per_node[i]),
            router_kind=router_kind,
            owner_table=dict(owner_table) if owner_table else None,
            rule_sets=[list(rs) for rs in rule_sets] if rule_sets else None,
            base_terms=base_terms,
        )
        proc = ctx.Process(target=_async_worker_main, args=(cfg, inboxes[i], outbox))
        proc.start()
        processes.append(proc)

    try:
        det = CountingTermination(k)
        relayed = 0
        while not det.quiescent():
            try:
                msg = outbox.get(timeout=idle_timeout)
            except queue_mod.Empty:
                raise RuntimeError(
                    f"async master idle for {idle_timeout}s without "
                    "reaching quiescence — a worker likely died"
                ) from None
            kind, node_id, batches, consumed = msg
            assert kind == "produced"
            # Relay first, then account the ack: quiescence is only
            # checked once this message's productions are in the counters.
            for batch in batches:
                if relayed >= max_messages:
                    raise RuntimeError(
                        f"no termination after {max_messages} messages"
                    )
                relayed += 1
                det.record_forward(batch.dest)
                inboxes[batch.dest].put(("tuples", batch))
            det.record_ack(node_id, consumed)
            det.mark_bootstrapped(node_id)

        union = Graph()
        for i in range(k):
            inboxes[i].put(("finish",))
        for _ in range(k):
            kind, node_id, triples = outbox.get(timeout=idle_timeout)
            assert kind == "output"
            union.update(triples)
        return union
    finally:
        for proc in processes:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join()
