"""Asynchronous, round-free execution of Algorithm 3 over the id-encoded
wire protocol.

The lock-step backends (:mod:`repro.parallel.driver`,
:mod:`repro.parallel.mp_backend`) advance all workers through global
rounds: nobody starts round n+1 until everyone finished round n, and the
barrier itself is the termination test.  Following the dynamic-data-
exchange design (Ajileye et al.), this module removes the barrier: a
worker reasons over each batch *as it arrives*, interleaving freely with
its peers, and the master detects global quiescence with Safra-style
sent/received counting (:class:`repro.parallel.termination.CountingTermination`)
instead of a barrier.

Everything on the wire is id-encoded: the master builds one base
:class:`~repro.rdf.dictionary.TermDictionary` over the input KB, each
worker extends it through a private :class:`~repro.rdf.dictionary.PartitionDictionary`
stripe, and batches travel as flat int64 ``(s, p, o)`` rows plus a
once-per-peer delta-dictionary for newly minted terms
(:class:`~repro.parallel.messages.EncodedBatch`).

Two executors share the protocol:

* :func:`run_async_inprocess` — workers as in-process objects, deliveries
  drained from one pending pool.  ``delivery="shuffle"`` pops that pool in
  seeded-random order, deliberately reordering message arrival — the
  deterministic vehicle for proving termination is delivery-order
  independent.  A :class:`~repro.parallel.faults.FaultPlan` can kill or
  freeze workers and drop/duplicate/delay batches deterministically.
* :func:`run_multiprocess_async` — one OS process per partition.  The
  master relays each produced batch the moment it arrives; workers block
  on their inbox, not on a round barrier.

Both executors are *supervised* (:mod:`repro.parallel.supervisor`): a
crashed, killed, or frozen worker surfaces as a typed
:class:`~repro.parallel.supervisor.WorkerFailure` instead of a silent
hang, and under ``degrade="recover"`` the master re-runs the lost node's
partition — from its input triples plus the replay of every batch the
master ever relayed to it (the counting-termination ledger records
exactly that) — on a fresh worker incarnation with a bumped *epoch*.
Epochs stamp every worker-originated message so stale messages from a
dead incarnation can never corrupt the ledger, and each incarnation mints
dictionary ids in its own stripe so a replacement can never re-issue an
id the dead worker already shipped for a different term.

Both executors are differentially tested against the serial fixpoint and
the lock-step oracle, with and without injected faults.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.datalog.ast import Rule
from repro.parallel.comm import ChannelPool
from repro.parallel.faults import FaultPlan
from repro.parallel.messages import (
    Adopt,
    Deliver,
    EncodedBatch,
    Finish,
    Heartbeat,
    OutputMsg,
    Produced,
    RemovalBatch,
    Stop,
)
from repro.parallel.routing import DataPartitionRouter, Router, RulePartitionRouter
from repro.parallel.stats import AsyncRunStats
from repro.parallel.supervisor import (
    ProcessSupervisor,
    SupervisionPolicy,
    WorkerFailure,
    parent_alive,
)
from repro.parallel.termination import CountingTermination
from repro.parallel.worker import PartitionWorker
from repro.rdf.dictionary import PartitionDictionary, TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.rdf.triple import Triple


def build_base_dictionary(
    partitions: Sequence[Graph],
    extra: Sequence[Graph] = (),
    rules: Sequence[Rule] = (),
) -> TermDictionary:
    """The shared base stripe: every term the master can see at setup,
    encoded once.  Pass the rule base too — rule atoms are the only other
    source of ground terms (head constants like class URIs), and seeding
    them means delta-dictionary traffic only carries terms that genuinely
    first exist at runtime."""
    d = TermDictionary()
    enc = d.encode
    for g in list(partitions) + list(extra):
        for t in g:
            enc(t.s)
            enc(t.p)
            enc(t.o)
    from repro.rdf.terms import Variable

    for r in rules:
        for atom in (*r.body, r.head):
            for term in atom:
                if not isinstance(term, Variable):
                    enc(term)
    return d


def _all_rules(
    rules_per_node: Sequence[Sequence[Rule]],
    rule_sets: Sequence[Sequence[Rule]] | None,
) -> list[Rule]:
    out: list[Rule] = []
    for rs in list(rules_per_node) + list(rule_sets or []):
        out.extend(rs)
    return out


def _make_router(
    router_kind: str,
    owner_table: dict | None,
    k: int,
    rule_sets: Sequence[Sequence[Rule]] | None,
) -> Router:
    if router_kind == "data":
        from repro.partitioning.base import TableOwner

        return DataPartitionRouter(TableOwner(k, owner_table or {}))
    return RulePartitionRouter(rule_sets or [])


@dataclass
class AsyncRunResult:
    """Output of an asynchronous run: the unioned KB plus wire accounting."""

    graph: Graph
    stats: AsyncRunStats
    #: Final sent/consumed counters (exposed for the termination tests).
    forwarded: list[int]
    consumed: list[int]
    #: The partition workers, still resident after an in-process run (the
    #: serving tier and the id-native distributed query engine answer
    #: straight from their stores).  Empty for multiprocess runs, whose
    #: workers died with their host processes.
    workers: list[PartitionWorker] = field(default_factory=list)


# -- in-process executor ------------------------------------------------------


def run_async_inprocess(
    partitions: Sequence[Graph],
    rules_per_node: Sequence[Sequence[Rule]],
    router_kind: str,
    owner_table: dict | None = None,
    rule_sets: Sequence[Sequence[Rule]] | None = None,
    delivery: str = "fifo",
    seed: int = 0,
    max_messages: int = 1_000_000,
    seed_rule_terms: bool = True,
    faults: FaultPlan | None = None,
    degrade: str = "abort",
    max_retries: int = 2,
    engine: str | None = None,
    store: str | None = None,
    memory_budget_bytes: int | None = None,
    sanitize: bool | None = None,
) -> AsyncRunResult:
    """Round-free run with in-process workers and controllable delivery.

    ``seed_rule_terms=True`` (default) puts the rule base's ground terms
    into the base dictionary, so delta messages carry only runtime-fresh
    terms; the delta round-trip tests pass ``False`` to force every rule
    constant through the delta path.

    ``delivery`` picks which *channel* — a (sender, dest) pair — delivers
    its oldest pending message next: ``"fifo"`` always the globally oldest
    send, ``"lifo"`` the newest channel activity first, ``"shuffle"`` a
    seeded-random channel each step.  Within a channel, order is always
    preserved: the wire protocol (like the ``multiprocessing`` queues and
    any MPI transport it stands in for) assumes FIFO channels — a delta-
    dictionary entry must not arrive after a row that needs it — while
    arrival order *across* channels is adversarial.  All delivery orders
    must (and do) reach the same fixpoint; the shuffle mode is the
    out-of-order test harness.

    ``faults`` schedules deterministic failures
    (:class:`~repro.parallel.faults.FaultPlan`): killed and frozen
    workers stall the counting ledger and surface as
    :class:`~repro.parallel.supervisor.WorkerFailure`; with
    ``degrade="recover"`` the executor re-runs the node from its input
    partition plus the replay of its relay ledger (at most
    ``max_retries`` recovery events per run).  Dropped batches are
    retransmitted from the same ledger; duplicated and delayed batches
    must be absorbed by receiver-side dedup and channel-FIFO alone.
    """
    if delivery not in ("fifo", "lifo", "shuffle"):
        raise ValueError(f"unknown delivery order {delivery!r}")
    if degrade not in ("abort", "recover"):
        raise ValueError(f'degrade must be "abort" or "recover", got {degrade!r}')
    k = len(partitions)
    if len(rules_per_node) != k:
        raise ValueError("rules_per_node must match partitions")
    plan = faults or FaultPlan()
    base = build_base_dictionary(
        partitions,
        rules=_all_rules(rules_per_node, rule_sets) if seed_rule_terms else (),
    )
    router = _make_router(router_kind, owner_table, k, rule_sets)
    # Each incarnation mints ids in its own stripe: worker i at epoch e
    # uses stripe i + e*k of k*(max_retries+1), so a replacement can never
    # re-issue an id its dead predecessor already shipped.
    stripes = k * (max_retries + 1)
    workers = [
        PartitionWorker(
            node_id=i,
            base=partitions[i],
            rules=rules_per_node[i],
            router=router,
            dictionary=PartitionDictionary(base, i, stripes),
            engine=engine,
            store=store,
            memory_budget_bytes=memory_budget_bytes,
            sanitize=sanitize,
        )
        for i in range(k)
    ]

    stats = AsyncRunStats(k=k)
    det = CountingTermination(k)
    rng = None
    if delivery == "shuffle":
        import random

        rng = random.Random(seed)
    pool = ChannelPool(delivery, rng)

    epoch = [0] * k
    alive = [True] * k
    frozen = [False] * k
    node_delivered = [0] * k
    #: Every batch ever forwarded to each node, in relay order — the
    #: ledger recovery replays and drop-retransmission draws from.
    relay_log: list[list] = [[] for _ in range(k)]
    channel_seq: dict[tuple[int, int], int] = {}
    #: Channel -> deliver nothing from it until `delivered` passes this.
    held: dict[tuple[int, int], int] = {}
    #: Dropped-by-fault batches awaiting ledger retransmission.
    lost: list = []
    delivered = 0
    retries_used = 0

    def _emit(batches) -> None:
        for b in batches:
            key = (b.sender, b.dest)
            seq = channel_seq.get(key, 0)
            channel_seq[key] = seq + 1
            det.record_forward(b.dest)
            stats.record_batch(b)
            relay_log[b.dest].append(b)
            fault = plan.channel_fault(key, seq)
            if fault is None:
                pool.emit(b)
            elif fault.action == "drop":
                lost.append(b)
            elif fault.action == "duplicate":
                # Two genuine wire copies: both counted, both consumed.
                pool.emit(b)
                det.record_forward(b.dest)
                stats.record_batch(b)
                relay_log[b.dest].append(b)
                pool.emit(b)
            else:  # delay: hold the whole channel, preserving its FIFO
                held[key] = delivered + max(0, fault.delay)
                pool.emit(b)

    def _eligible(key: tuple[int, int]) -> bool:
        dest = key[1]
        return alive[dest] and not frozen[dest] and held.get(key, 0) <= delivered

    def _revive(node: int) -> None:
        epoch[node] += 1
        alive[node] = True
        frozen[node] = False
        pool.discard_dest(node)
        lost[:] = [b for b in lost if b.dest != node]
        det.reset_node(node)
        replacement = PartitionWorker(
            node_id=node,
            base=partitions[node],
            rules=rules_per_node[node],
            router=router,
            dictionary=PartitionDictionary(
                base, node + epoch[node] * k, stripes
            ),
            epoch=epoch[node],
            engine=engine,
            store=store,
            memory_budget_bytes=memory_budget_bytes,
            sanitize=sanitize,
        )
        workers[node] = replacement
        boot = replacement.bootstrap()
        det.mark_bootstrapped(node)
        _emit(boot.outgoing)
        # Ledger replay: everything the master ever forwarded to this
        # node, in the original per-sender order (FIFO channels hold, so
        # delta-dictionary entries still precede the rows that need them).
        for b in list(relay_log[node]):
            det.record_forward(node)
            stats.retransmitted += 1
            result = replacement.step([b])
            det.record_delivery(node)
            _emit(result.outgoing)

    for w in workers:
        _emit(w.bootstrap().outgoing)
        det.mark_bootstrapped(w.node_id)

    while not det.quiescent():
        if delivered >= max_messages:
            raise RuntimeError(f"no termination after {max_messages} messages")
        batch = pool.pop_next(_eligible)
        if batch is None:
            if held:
                # Only held (delayed) channels remain deliverable: the
                # delay has run its course, release them.
                held.clear()
                continue
            redelivered = False
            for b in list(lost):
                if alive[b.dest] and not frozen[b.dest]:
                    # The ledger noticed forwarded > consumed; retransmit.
                    lost.remove(b)
                    stats.retransmitted += 1
                    pool.emit(b)
                    redelivered = True
            if redelivered:
                continue
            failed = [
                i for i in range(k) if not alive[i] or frozen[i]
            ]
            if not failed:  # pragma: no cover - invariant check
                raise RuntimeError("pool stalled but counters disagree")
            reason = "killed" if any(not alive[i] for i in failed) else "frozen"
            failure = WorkerFailure(
                failed,
                reason,
                forwarded=[det.forwarded[i] for i in failed],
                consumed=[det.consumed[i] for i in failed],
                epoch=max(epoch[i] for i in failed),
            )
            stats.record_failure(failure.record())
            if degrade != "recover" or retries_used >= max_retries:
                raise failure
            retries_used += 1
            stats.retries += 1
            for node in failed:
                _revive(node)
            continue
        dest = batch.dest
        if epoch[dest] == 0 and plan.kill_after.get(dest) == node_delivered[dest]:
            # Crash mid-processing: the message is consumed off the wire
            # but never acknowledged — exactly a worker dying in step().
            alive[dest] = False
            continue
        if epoch[dest] == 0 and plan.freeze_after.get(dest) == node_delivered[dest]:
            # Wedged, not dead: the message stays pending at channel head.
            frozen[dest] = True
            pool.push_front(batch)
            continue
        node_delivered[dest] += 1
        delivered += 1
        result = workers[dest].step([batch])
        det.record_delivery(dest)
        _emit(result.outgoing)

    _post_run_checks(det, workers, sanitize)
    union = Graph()
    for w in workers:
        union.update(iter(w.output_graph()))
    return AsyncRunResult(
        graph=union,
        stats=stats,
        forwarded=list(det.forwarded),
        consumed=list(det.consumed),
        workers=list(workers),
    )


def _post_run_checks(det, workers, sanitize) -> None:
    """With the sanitizer enabled, audit the run's end state: the Safra
    counting ledger must conserve (forwarded == consumed everywhere) and
    the workers' dictionary stripes must be pairwise disjoint — an id
    minted by two incarnations would silently merge unrelated terms."""
    from repro.analysis.sanitize import (
        check_ledger,
        check_stripe_disjointness,
        sanitize_enabled,
    )

    if not sanitize_enabled(sanitize):
        return
    check_ledger(det)
    check_stripe_disjointness(
        [w.dictionary for w in workers if w.dictionary is not None]
    )


# -- incremental (DRed) executor ----------------------------------------------


def run_apply_inprocess(
    partitions: Sequence[Graph],
    rules_per_node: Sequence[Sequence[Rule]],
    router_kind: str,
    adds: Sequence[Triple] = (),
    removes: Sequence[Triple] = (),
    owner_table: dict | None = None,
    rule_sets: Sequence[Sequence[Rule]] | None = None,
    delivery: str = "fifo",
    seed: int = 0,
    max_messages: int = 1_000_000,
    store: str | None = None,
    memory_budget_bytes: int | None = None,
    sanitize: bool | None = None,
) -> AsyncRunResult:
    """Distributed delete-and-rederive over the id wire protocol.

    Materializes the partitions' closure, then maintains it under
    ``(adds, removes)`` with the DRed phases run cluster-wide:

    1. the master broadcasts the user retractions to *every* node as
       :class:`~repro.parallel.messages.RemovalBatch` rows
       (``retract_base=True``) — a row's replicas may live anywhere;
    2. each node runs its local overdeletion against its unmutated
       store and rebroadcasts the discovered cascade; the counting
       ledger detects quiescence exactly as for forward batches;
    3. every node finalizes — physical deletion, sent-dedup eviction,
       local rederivation and re-closure — and the restored rows drain
       through normal forward routing;
    4. the additions are broadcast and drained as an ordinary
       incremental load.

    Workers are id-native (``engine="columnar"``) throughout, reusing
    the per-node dictionary stripes: removal rows and their delta
    dictionaries travel the same wire as derivations.  Additions are
    broadcast rather than owner-routed — with rule partitioning every
    node holds the full data set, and with data partitioning the extra
    replicas only cost memory, never correctness (receiver dedup).

    Returns the final maintained KB (union of node outputs), equal to
    re-closing ``(base ∖ removes) ∪ adds`` from scratch.
    """
    if delivery not in ("fifo", "lifo", "shuffle"):
        raise ValueError(f"unknown delivery order {delivery!r}")
    k = len(partitions)
    if len(rules_per_node) != k:
        raise ValueError("rules_per_node must match partitions")
    adds = list(adds)
    removes = list(removes)
    base = build_base_dictionary(
        partitions,
        extra=[Graph(adds), Graph(removes)],
        rules=_all_rules(rules_per_node, rule_sets),
    )
    router = _make_router(router_kind, owner_table, k, rule_sets)
    workers = [
        PartitionWorker(
            node_id=i,
            base=partitions[i],
            rules=rules_per_node[i],
            router=router,
            dictionary=PartitionDictionary(base, i, k),
            engine="columnar",
            store=store,
            memory_budget_bytes=memory_budget_bytes,
            sanitize=sanitize,
        )
        for i in range(k)
    ]
    stats = AsyncRunStats(k=k)
    det = CountingTermination(k)
    rng = None
    if delivery == "shuffle":
        import random

        rng = random.Random(seed)
    pool = ChannelPool(delivery, rng)
    delivered = 0

    def _emit(batches) -> None:
        for b in batches:
            det.record_forward(b.dest)
            stats.record_batch(b)
            pool.emit(b)

    def _drain() -> None:
        nonlocal delivered
        while not det.quiescent():
            if delivered >= max_messages:
                raise RuntimeError(
                    f"no termination after {max_messages} messages")
            batch = pool.pop_next()
            if batch is None:  # pragma: no cover - invariant check
                raise RuntimeError("pool stalled but counters disagree")
            delivered += 1
            result = workers[batch.dest].step([batch])
            det.record_delivery(batch.dest)
            _emit(result.outgoing)

    def _encode(triples: Sequence[Triple]):
        import numpy as np

        enc = base.encode
        return (
            np.asarray([enc(t.s) for t in triples], dtype=np.int64),
            np.asarray([enc(t.p) for t in triples], dtype=np.int64),
            np.asarray([enc(t.o) for t in triples], dtype=np.int64),
        )

    # Initial closure.
    for w in workers:
        _emit(w.bootstrap().outgoing)
        det.mark_bootstrapped(w.node_id)
    _drain()

    # Overdeletion: broadcast the retractions, drain to quiescence,
    # then finalize every node and drain the restoration traffic.
    if removes:
        cols = _encode(removes)
        _emit([
            RemovalBatch.from_columns(-1, dest, 0, cols, retract_base=True)
            for dest in range(k)
        ])
        _drain()
        for w in workers:
            _emit(w.finalize_removals().outgoing)
        _drain()

    # Additions: an ordinary incremental load.
    if adds:
        cols = _encode(adds)
        _emit([
            EncodedBatch(-1, dest, 0, cols[0], cols[1], cols[2])
            for dest in range(k)
        ])
        _drain()

    _post_run_checks(det, workers, sanitize)
    union = Graph()
    for w in workers:
        union.update(iter(w.output_graph()))
    return AsyncRunResult(
        graph=union,
        stats=stats,
        forwarded=list(det.forwarded),
        consumed=list(det.consumed),
        workers=list(workers),
    )


# -- multiprocess executor ----------------------------------------------------


@dataclass
class _AsyncNodeConfig:
    """Everything one async worker process needs (picklable, spawn-safe)."""

    node_id: int
    k: int
    #: Total dictionary stripe count (k * (max_retries + 1)): worker i at
    #: epoch e mints in stripe i + e*k, so no incarnation ever reuses ids.
    stripes: int
    base_triples: list[Triple]
    rules: list[Rule]
    router_kind: str
    owner_table: dict | None
    rule_sets: list[list[Rule]] | None
    base_terms: list[Term]
    #: Execution-layer choice forwarded to every hosted worker
    #: ("columnar" makes adopted incarnations id-native too).
    engine: str | None = None
    #: Columnar store choice ("dense" / "run") and per-worker resident
    #: cap — adopted incarnations rebuild with the same budget.
    store: str | None = None
    memory_budget_bytes: int | None = None
    #: Runtime invariant checks (:mod:`repro.analysis.sanitize`) for every
    #: hosted worker's store; ``None`` defers to ``REPRO_SANITIZE``.
    sanitize: bool | None = None


def _make_logical_worker(cfg: _AsyncNodeConfig, epoch: int) -> PartitionWorker:
    base = TermDictionary.from_terms(cfg.base_terms)
    return PartitionWorker(
        node_id=cfg.node_id,
        base=Graph(cfg.base_triples),
        rules=cfg.rules,
        router=_make_router(cfg.router_kind, cfg.owner_table, cfg.k, cfg.rule_sets),
        dictionary=PartitionDictionary(
            base, cfg.node_id + epoch * cfg.k, cfg.stripes
        ),
        epoch=epoch,
        engine=cfg.engine,
        store=cfg.store,
        memory_budget_bytes=cfg.memory_budget_bytes,
        sanitize=cfg.sanitize,
    )


def _async_worker_main(
    cfg: _AsyncNodeConfig,
    inbox: mp.Queue,
    outbox: mp.Queue,
    heartbeat_interval: float,
) -> None:
    """Worker process loop — no rounds, hang-proof.

    Protocol (typed control messages, :mod:`repro.parallel.messages`):
      master -> worker: Deliver(batch) | Adopt(node, epoch, cfg)
                        | Finish() | Stop()
      worker -> master: Produced(node, epoch, batches, consumed)
                        | OutputMsg(node, epoch, triples)
                        | Heartbeat(node, epoch, consumed)
    Every Deliver yields exactly one Produced (possibly with zero batches)
    whose cumulative ``consumed`` count is the acknowledgement the
    master's termination counting relies on.  One process may host
    several *logical* workers: recovery adopts a dead peer's node here,
    re-seeded from its config and the master's relay ledger.

    The inbox wait is bounded: on every idle ``heartbeat_interval`` the
    worker checks that the master still exists (exiting instead of
    leaking an orphan if not) and heartbeats each hosted node.
    """
    parent = os.getppid()
    workers: dict[int, PartitionWorker] = {}
    consumed: dict[int, int] = {}
    epochs: dict[int, int] = {}

    def boot(node_cfg: _AsyncNodeConfig, epoch: int) -> None:
        w = _make_logical_worker(node_cfg, epoch)
        workers[node_cfg.node_id] = w
        consumed[node_cfg.node_id] = 0
        epochs[node_cfg.node_id] = epoch
        result = w.bootstrap()
        outbox.put(Produced(node_cfg.node_id, epoch, tuple(result.outgoing), 0))

    boot(cfg, 0)
    while True:
        try:
            msg = inbox.get(timeout=heartbeat_interval)
        except queue_mod.Empty:
            if not parent_alive(parent):
                return  # master died: exit instead of leaking an orphan
            for nid in workers:
                outbox.put(Heartbeat(nid, epochs[nid], consumed[nid]))
            continue
        if isinstance(msg, Stop):
            return
        if isinstance(msg, Finish):
            # Output *request*, not shutdown: recovery may still need us.
            for nid, w in workers.items():
                outbox.put(OutputMsg(nid, epochs[nid], tuple(w.output_graph())))
            continue
        if isinstance(msg, Adopt):
            boot(msg.config, msg.epoch)
            continue
        batch = msg.batch
        nid = batch.dest
        consumed[nid] += 1
        result = workers[nid].step([batch])
        outbox.put(Produced(nid, epochs[nid], tuple(result.outgoing), consumed[nid]))


def run_multiprocess_async(
    partitions: Sequence[Graph],
    rules_per_node: Sequence[Sequence[Rule]],
    router_kind: str,
    owner_table: dict | None = None,
    rule_sets: Sequence[Sequence[Rule]] | None = None,
    max_messages: int = 1_000_000,
    start_method: str | None = None,
    idle_timeout: float = 120.0,
    seed_rule_terms: bool = True,
    degrade: str = "abort",
    max_retries: int = 2,
    supervision: SupervisionPolicy | None = None,
    with_stats: bool = False,
    engine: str | None = None,
    store: str | None = None,
    memory_budget_bytes: int | None = None,
    sanitize: bool | None = None,
):
    """Round-free execution across real processes; returns the unioned KB
    (or the full :class:`AsyncRunResult` with ``with_stats=True``).

    Same configuration surface as
    :func:`repro.parallel.mp_backend.run_multiprocess` (the lock-step
    differential oracle).  ``start_method=None`` uses the platform default
    (fork on Linux, spawn on macOS/Windows); both work — every shipped
    object is picklable and terms re-intern on arrival.

    Supervision (:class:`~repro.parallel.supervisor.SupervisionPolicy`,
    overridable wholesale via ``supervision``): worker liveness is folded
    into every blocking outbox wait, workers heartbeat on idle, and a
    crashed or silent worker raises a typed
    :class:`~repro.parallel.supervisor.WorkerFailure` naming the node.
    With ``degrade="recover"`` the master instead adopts the lost node
    onto a surviving process — round-robin over survivors — re-seeded
    from the node's spawn config plus a replay of every batch the master
    ever relayed to it (the counting ledger records exactly that), up to
    ``max_retries`` recovery events per run.
    """
    k = len(partitions)
    if len(rules_per_node) != k:
        raise ValueError("rules_per_node must match partitions")
    policy = supervision or SupervisionPolicy(
        degrade=degrade, max_retries=max_retries, idle_timeout=idle_timeout
    )
    base = build_base_dictionary(
        partitions,
        rules=_all_rules(rules_per_node, rule_sets) if seed_rule_terms else (),
    )
    base_terms = base.terms()
    stripes = k * (policy.max_retries + 1)
    ctx = mp.get_context(start_method)
    inboxes = [ctx.Queue() for _ in range(k)]
    outbox = ctx.Queue()

    cfgs: list[_AsyncNodeConfig] = []
    processes = []
    for i in range(k):
        cfg = _AsyncNodeConfig(
            node_id=i,
            k=k,
            stripes=stripes,
            base_triples=list(partitions[i]),
            rules=list(rules_per_node[i]),
            router_kind=router_kind,
            owner_table=dict(owner_table) if owner_table else None,
            rule_sets=[list(rs) for rs in rule_sets] if rule_sets else None,
            base_terms=base_terms,
            engine=engine,
            store=store,
            memory_budget_bytes=memory_budget_bytes,
            sanitize=sanitize,
        )
        cfgs.append(cfg)
        proc = ctx.Process(
            target=_async_worker_main,
            args=(cfg, inboxes[i], outbox, policy.heartbeat_interval),
        )
        proc.start()
        processes.append(proc)

    det = CountingTermination(k)
    stats = AsyncRunStats(k=k)
    sup = ProcessSupervisor(
        processes, policy, outstanding=det.outstanding, ledger=det.counts
    )
    epoch = [0] * k
    #: Logical node -> hosting process index (changes on adoption).
    route = list(range(k))
    #: The counting ledger's payload side: every batch relayed to each
    #: node, in relay order — what recovery replays.
    relay_log: list[list] = [[] for _ in range(k)]
    relayed = 0

    def relay(batch) -> None:
        nonlocal relayed
        if relayed >= max_messages:
            raise RuntimeError(f"no termination after {max_messages} messages")
        relayed += 1
        det.record_forward(batch.dest)
        stats.record_batch(batch)
        relay_log[batch.dest].append(batch)
        inboxes[route[batch.dest]].put(Deliver(batch))

    def recover(failure: WorkerFailure) -> None:
        """Adopt every node the failed process hosted onto survivors."""
        stats.retries += 1
        if policy.retry_backoff:
            time.sleep(policy.retry_backoff * stats.retries)
        if failure.process_index is not None:
            sup.mark_failed(failure.process_index)
        survivors = sup.live_process_indexes()
        if not survivors:
            raise WorkerFailure(
                failure.node_ids, "no-survivors", exitcode=failure.exitcode
            )
        for offset, node in enumerate(sorted(failure.node_ids)):
            target = survivors[(node + stats.retries + offset) % len(survivors)]
            epoch[node] += 1
            route[node] = target
            det.reset_node(node)
            sup.reassign(node, target)
            inboxes[target].put(Adopt(node, epoch[node], cfgs[node]))
            for batch in relay_log[node]:
                det.record_forward(node)
                stats.retransmitted += 1
                inboxes[target].put(Deliver(batch))

    try:
        outputs: dict[int, tuple] = {}
        finish_sent = False
        while True:
            if det.quiescent() and not finish_sent:
                for p in sup.live_process_indexes():
                    inboxes[p].put(Finish())
                finish_sent = True
            if finish_sent and len(outputs) == k:
                break
            try:
                msg = sup.get(outbox)
            except WorkerFailure as wf:
                stats.record_failure(wf.record())
                if (
                    policy.degrade != "recover"
                    or wf.reason == "idle"
                    or stats.retries >= policy.max_retries
                ):
                    raise
                recover(wf)
                # Any outputs gathered so far may predate the replayed
                # derivations; re-request everything once re-quiescent.
                outputs.clear()
                finish_sent = False
                continue
            if isinstance(msg, Produced):
                if msg.epoch < epoch[msg.node_id]:
                    continue  # stale incarnation: dead worker's leftovers
                # Relay first, then account the ack: quiescence is only
                # checked once this message's productions are in the
                # counters.
                for batch in msg.batches:
                    relay(batch)
                det.record_ack(msg.node_id, msg.consumed)
                det.mark_bootstrapped(msg.node_id)
            elif isinstance(msg, OutputMsg):
                if msg.epoch < epoch[msg.node_id]:
                    continue
                outputs[msg.node_id] = msg.triples

        for p in sup.live_process_indexes():
            inboxes[p].put(Stop())
        union = Graph()
        for triples in outputs.values():
            union.update(triples)
        if with_stats:
            return AsyncRunResult(
                graph=union,
                stats=stats,
                forwarded=list(det.forwarded),
                consumed=list(det.consumed),
            )
        return union
    finally:
        sup.shutdown()
