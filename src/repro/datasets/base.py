"""Shared dataset machinery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.rdf.graph import Graph
from repro.rdf.terms import Term


@dataclass
class SyntheticDataset:
    """A generated benchmark instance: TBox, ABox, and the domain key
    function its domain-specific partitioning policy uses."""

    name: str
    ontology: Graph
    data: Graph
    domain_grouper: Callable[[Term], str | None]
    seed: int

    def __repr__(self) -> str:
        return (
            f"<SyntheticDataset {self.name}: {len(self.ontology)} schema + "
            f"{len(self.data)} instance triples>"
        )
