"""Dataset generator CLI: ``python -m repro.datasets``.

Writes a benchmark KB as N-Triples — the instance data, the ontology, or
both — so datasets can be inspected, diffed, version-controlled, or fed to
the streaming partitioner without writing Python.

Examples::

    python -m repro.datasets lubm -n 4 -o lubm4.nt
    python -m repro.datasets mdc -n 8 --seed 7 --ontology-only -o mdc.tbox.nt
    python -m repro.datasets uobm -n 2 --stats
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets import LUBM, MDC, UOBM
from repro.rdf import serialize_ntriples

_BUILDERS = {"lubm": LUBM, "uobm": UOBM, "mdc": MDC}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets",
        description="Generate LUBM/UOBM/MDC benchmark KBs as N-Triples.",
    )
    parser.add_argument("dataset", choices=sorted(_BUILDERS))
    parser.add_argument(
        "-n", "--size", type=int, default=2,
        help="universities (lubm/uobm) or fields (mdc); default 2",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "-o", "--output", metavar="PATH",
        help="write N-Triples here (default: stdout)",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--ontology-only", action="store_true",
        help="emit only the TBox",
    )
    group.add_argument(
        "--data-only", action="store_true",
        help="emit only the instance triples (default emits both)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print size/shape statistics to stderr",
    )
    args = parser.parse_args(argv)

    dataset = _BUILDERS[args.dataset](args.size, seed=args.seed)
    if args.ontology_only:
        graph = dataset.ontology
    elif args.data_only:
        graph = dataset.data
    else:
        graph = dataset.ontology.union(dataset.data)

    document = serialize_ntriples(graph, sort=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(document)
    else:
        sys.stdout.write(document)

    if args.stats:
        resources = len(dataset.data.resources())
        predicates = sum(1 for _ in dataset.data.predicates())
        print(
            f"{dataset.name}: {len(dataset.ontology)} schema + "
            f"{len(dataset.data)} instance triples, {resources} resources, "
            f"{predicates} predicates",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
