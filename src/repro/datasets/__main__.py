"""``python -m repro.datasets`` delegates to the generator CLI."""

import sys

from repro.datasets.cli import main

sys.exit(main())
