"""Synthetic benchmark datasets.

Three generators mirror the paper's three evaluation datasets (DESIGN.md §2
documents each substitution):

* :class:`LUBMGenerator` — Lehigh University Benchmark-compatible:
  universities > departments > faculty/students/courses/publications, with
  the univ-bench ontology's OWL-Horst-relevant axioms (class/property
  hierarchies, transitive subOrganizationOf, inverse degreeFrom,
  domain/range, a someValuesFrom restriction).  Entities cluster by
  university; the only cross-university edges are degree-from links —
  exactly the structure the domain-specific partitioner exploits.
* :class:`UOBMGenerator` — University Ontology Benchmark-like: LUBM core
  plus the dense cross-university friendship/acquaintance network UOBM
  adds.  Its graph is far less separable, reproducing the paper's
  sub-linear-speedup case.
* :class:`MDCGenerator` — a synthetic stand-in for the paper's proprietary
  oilfield dataset: deep transitive part-of/connected-to equipment
  hierarchies, strongly clustered per field.

All generators are deterministic under their seed and expose
``ontology()``, ``generate()``, and ``domain_grouper()`` (the key function
the domain-specific partitioning policy needs).
"""

from repro.datasets.base import SyntheticDataset
from repro.datasets.lubm import LUBM, LUBMGenerator
from repro.datasets.uobm import UOBM, UOBMGenerator
from repro.datasets.mdc import MDC, MDCGenerator

__all__ = [
    "SyntheticDataset",
    "LUBM",
    "LUBMGenerator",
    "UOBM",
    "UOBMGenerator",
    "MDC",
    "MDCGenerator",
]
