"""The fourteen LUBM benchmark queries, against this package's generator.

LUBM (Guo, Pan & Heflin 2005) ships fourteen SPARQL queries chosen to
stress different mixes of selectivity and required inference; they are the
standard read workload for materialized OWL stores — including the systems
the paper targets (OWLIM's and Oracle's published evaluations run them).

The queries here keep each original's *shape and inference requirements*
but are adapted to this generator's vocabulary and instance space (our
scaled-down generator has no emailAddress/telephone attributes, and
specific-entity constants are parameterized on university 0, which always
exists).  Queries whose answers need OWL-Horst inference are marked
``requires_inference`` — on a raw (unmaterialized) graph they return
nothing, which is the paper's motivation for materialization in one flag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.graph import Graph
from repro.rdf.sparql import ParsedQuery, parse_sparql

_PREFIX = "PREFIX ub: <http://repro.example.org/univ-bench#>\n"
_U0 = "http://www.University0.edu"
_D0 = f"{_U0}/Department0"


@dataclass(frozen=True)
class LUBMQuery:
    """One benchmark query with its inference requirement."""

    name: str
    sparql: str
    #: Whether a raw (schema-unaware) graph returns zero rows.
    requires_inference: bool
    #: What the original LUBM query stresses.
    description: str

    def parse(self) -> ParsedQuery:
        return parse_sparql(self.sparql)

    def rows(self, graph: Graph):
        return self.parse().select(graph)


LUBM_QUERIES: tuple[LUBMQuery, ...] = (
    LUBMQuery(
        "Q1",
        _PREFIX + f"""SELECT ?x WHERE {{
            ?x a ub:GraduateStudent .
            ?x ub:takesCourse <{_D0}/Course0_0> .
        }}""",
        requires_inference=False,
        description="high selectivity, no inference (explicit class)",
    ),
    LUBMQuery(
        "Q2",
        _PREFIX + """SELECT ?x ?y ?z WHERE {
            ?x a ub:GraduateStudent .
            ?y a ub:University .
            ?z a ub:Department .
            ?x ub:memberOf ?z .
            ?z ub:subOrganizationOf ?y .
            ?x ub:undergraduateDegreeFrom ?y .
        }""",
        requires_inference=False,
        description="triangular join across the whole KB",
    ),
    LUBMQuery(
        "Q3",
        _PREFIX + f"""SELECT ?x WHERE {{
            ?x a ub:Publication .
            ?x ub:publicationAuthor <{_D0}/Faculty0> .
        }}""",
        requires_inference=False,
        description="publications of one author",
    ),
    LUBMQuery(
        "Q4",
        _PREFIX + f"""SELECT ?x WHERE {{
            ?x a ub:Professor .
            ?x ub:worksFor <{_D0}> .
        }}""",
        requires_inference=True,
        description="Professor is a superclass: needs subclass closure",
    ),
    LUBMQuery(
        "Q5",
        _PREFIX + f"""SELECT ?x WHERE {{
            ?x a ub:Person .
            ?x ub:memberOf <{_D0}> .
        }}""",
        requires_inference=True,
        description="Person + memberOf need subclass and subproperty closure",
    ),
    LUBMQuery(
        "Q6",
        _PREFIX + """SELECT ?x WHERE { ?x a ub:Student . }""",
        requires_inference=True,
        description="all students: pure subclass closure, low selectivity",
    ),
    LUBMQuery(
        "Q7",
        _PREFIX + f"""SELECT ?x ?y WHERE {{
            ?x a ub:Student .
            ?y a ub:Course .
            ?x ub:takesCourse ?y .
            <{_D0}/Faculty0> ub:teacherOf ?y .
        }}""",
        requires_inference=True,
        description="students in one professor's courses",
    ),
    LUBMQuery(
        "Q8",
        _PREFIX + f"""SELECT ?x ?y WHERE {{
            ?x a ub:Student .
            ?y a ub:Department .
            ?x ub:memberOf ?y .
            ?y ub:subOrganizationOf <{_U0}> .
        }}""",
        requires_inference=True,
        description="students of one university's departments",
    ),
    LUBMQuery(
        "Q9",
        _PREFIX + """SELECT ?x ?y ?z WHERE {
            ?x a ub:Student .
            ?y a ub:Faculty .
            ?z a ub:Course .
            ?x ub:advisor ?y .
            ?y ub:teacherOf ?z .
            ?x ub:takesCourse ?z .
        }""",
        requires_inference=True,
        description="student/advisor/course triangle with class closure",
    ),
    LUBMQuery(
        "Q10",
        _PREFIX + f"""SELECT ?x WHERE {{
            ?x a ub:Student .
            ?x ub:takesCourse <{_D0}/Course0_0> .
        }}""",
        requires_inference=True,
        description="Student superclass over one course's takers",
    ),
    LUBMQuery(
        "Q11",
        _PREFIX + f"""SELECT ?x WHERE {{
            ?x a ub:ResearchGroup .
            ?x ub:subOrganizationOf <{_U0}> .
        }}""",
        requires_inference=True,
        description="TRANSITIVE subOrganizationOf (group -> dept -> univ)",
    ),
    LUBMQuery(
        "Q12",
        _PREFIX + f"""SELECT ?x ?y WHERE {{
            ?x a ub:Chair .
            ?y a ub:Department .
            ?x ub:worksFor ?y .
            ?y ub:subOrganizationOf <{_U0}> .
        }}""",
        requires_inference=True,
        description="Chair is entirely inferred (someValuesFrom restriction)",
    ),
    LUBMQuery(
        "Q13",
        _PREFIX + f"""SELECT ?x WHERE {{
            <{_U0}> ub:hasAlumnus ?x .
        }}""",
        requires_inference=True,
        description="hasAlumnus exists only via owl:inverseOf degreeFrom",
    ),
    LUBMQuery(
        "Q14",
        _PREFIX + """SELECT ?x WHERE { ?x a ub:UndergraduateStudent . }""",
        requires_inference=False,
        description="trivial scan, the baseline query",
    ),
)


def run_all(graph: Graph) -> dict[str, int]:
    """Row count per query against a (presumably materialized) graph."""
    return {q.name: len(q.rows(graph)) for q in LUBM_QUERIES}
