"""MDC-like synthetic generator.

The paper's third dataset, "MDC", is a proprietary Chevron/CiSoft oilfield
KB and is not available.  Its role in the evaluation is specific, though:
like LUBM it triggers the reasoner's worst-case (polynomial) behaviour and
partitions cleanly, so it is the *second* super-linear-speedup dataset
(Figs 1 and 6 report it alongside LUBM).

This generator synthesizes a KB occupying that design point, modeled on the
published descriptions of CiSoft's smart-oilfield ontologies: oil *fields*
containing wells, each well a deep ``partOf`` hierarchy (well -> wellbore
-> completion -> equipment -> sensors) with **transitive** ``partOf``,
``connectedTo`` pipework (symmetric), measurement streams, and functional
identifiers.  Fields are near-disconnected from each other (a few shared
pipeline interconnects), giving the strongly separable cluster structure;
the deep transitive hierarchies give the heavy inference load.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import SyntheticDataset
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Term, URI
from repro.util.seeding import rng_for

#: The oilfield vocabulary namespace.
MDCNS = Namespace("http://repro.example.org/mdc#")


def mdc_ontology() -> Graph:
    g = Graph()

    def sub_class(child: URI, parent: URI) -> None:
        g.add_spo(child, RDFS.subClassOf, parent)

    sub_class(MDCNS.Well, MDCNS.Asset)
    sub_class(MDCNS.Wellbore, MDCNS.Asset)
    sub_class(MDCNS.Completion, MDCNS.Asset)
    sub_class(MDCNS.Equipment, MDCNS.Asset)
    sub_class(MDCNS.Pump, MDCNS.Equipment)
    sub_class(MDCNS.Valve, MDCNS.Equipment)
    sub_class(MDCNS.Sensor, MDCNS.Equipment)
    sub_class(MDCNS.PressureSensor, MDCNS.Sensor)
    sub_class(MDCNS.TemperatureSensor, MDCNS.Sensor)
    sub_class(MDCNS.Pipeline, MDCNS.Asset)
    sub_class(MDCNS.Field, MDCNS.Asset)

    g.add_spo(MDCNS.partOf, RDF.type, OWL.TransitiveProperty)
    g.add_spo(MDCNS.partOf, RDFS.domain, MDCNS.Asset)
    g.add_spo(MDCNS.partOf, RDFS.range, MDCNS.Asset)
    g.add_spo(MDCNS.connectedTo, RDF.type, OWL.SymmetricProperty)
    g.add_spo(MDCNS.hasPart, OWL.inverseOf, MDCNS.partOf)
    g.add_spo(MDCNS.measures, RDFS.domain, MDCNS.Sensor)
    g.add_spo(MDCNS.locatedIn, RDFS.range, MDCNS.Field)
    g.add_spo(MDCNS.monitors, RDFS.subPropertyOf, MDCNS.measures)
    # Flow topology: pipeline segments feed into each other (transitive),
    # and geological strata stack (transitive) — together with partOf these
    # give the KB several independently heavy recursive rules, the load
    # profile of a real equipment/geology ontology (and what lets rule
    # partitioning spread work across nodes).
    g.add_spo(MDCNS.feedsInto, RDF.type, OWL.TransitiveProperty)
    g.add_spo(MDCNS.feedsInto, RDFS.domain, MDCNS.Pipeline)
    g.add_spo(MDCNS.locatedBelow, RDF.type, OWL.TransitiveProperty)
    g.add_spo(MDCNS.locatedBelow, RDFS.domain, MDCNS.Stratum)
    g.add_spo(MDCNS.Stratum, RDFS.subClassOf, MDCNS.Asset)
    return g


class MDCGenerator:
    """Generate an MDC-like oilfield KB.

    ``fields`` is the cluster count (the analogue of LUBM's universities);
    ``wells_per_field`` and ``hierarchy_depth`` size each cluster and set
    the transitive-closure load — depth d yields O(d^2) inferred ``partOf``
    pairs per chain, the worst-case-triggering structure.
    """

    def __init__(
        self,
        fields: int,
        wells_per_field: int = 6,
        hierarchy_depth: int = 8,
        sensors_per_well: int = 3,
        interconnects: int = 2,
        seed: int = 0,
    ) -> None:
        if fields <= 0:
            raise ValueError("need at least one field")
        self.fields = fields
        self.wells_per_field = wells_per_field
        self.hierarchy_depth = hierarchy_depth
        self.sensors_per_well = sensors_per_well
        self.interconnects = interconnects
        self.seed = seed

    @staticmethod
    def field_uri(f: int) -> URI:
        return URI(f"http://mdc.example.org/Field{f}")

    @staticmethod
    def entity_uri(f: int, local: str) -> URI:
        return URI(f"http://mdc.example.org/Field{f}/{local}")

    def generate(self) -> Graph:
        g = Graph()
        rng = rng_for(self.seed, "mdc", self.fields)
        layer_classes = (
            MDCNS.Wellbore,
            MDCNS.Completion,
            MDCNS.Equipment,
            MDCNS.Pump,
            MDCNS.Valve,
        )

        for f in range(self.fields):
            field = self.field_uri(f)
            g.add_spo(field, RDF.type, MDCNS.Field)
            field_pipeline = self.entity_uri(f, "Pipeline0")
            g.add_spo(field_pipeline, RDF.type, MDCNS.Pipeline)
            g.add_spo(field_pipeline, MDCNS.partOf, field)

            for w in range(self.wells_per_field):
                well = self.entity_uri(f, f"Well{w}")
                g.add_spo(well, RDF.type, MDCNS.Well)
                g.add_spo(well, MDCNS.partOf, field)
                g.add_spo(well, MDCNS.locatedIn, field)
                g.add_spo(well, MDCNS.connectedTo, field_pipeline)

                # The deep partOf chain: well -> wb -> completion -> ... .
                parent = well
                for depth in range(self.hierarchy_depth):
                    node = self.entity_uri(f, f"Well{w}/L{depth}")
                    g.add_spo(node, RDF.type, layer_classes[depth % len(layer_classes)])
                    g.add_spo(node, MDCNS.partOf, parent)
                    parent = node

                for s in range(self.sensors_per_well):
                    sensor = self.entity_uri(f, f"Well{w}/Sensor{s}")
                    g.add_spo(
                        sensor,
                        RDF.type,
                        MDCNS.PressureSensor if s % 2 == 0 else MDCNS.TemperatureSensor,
                    )
                    g.add_spo(sensor, MDCNS.partOf, parent)
                    g.add_spo(
                        sensor,
                        MDCNS.monitors,
                        self.entity_uri(f, f"Well{w}/Stream{s}"),
                    )

        # Per-field flow and stratigraphy chains (both transitive), sized so
        # their closures are comparable to the wells' partOf closure — the
        # several-heavy-rules load profile of a real equipment/geology KB.
        chain_len = self.wells_per_field * 3
        for f in range(self.fields):
            segments = [
                self.entity_uri(f, f"Segment{i}") for i in range(chain_len)
            ]
            for seg in segments:
                g.add_spo(seg, RDF.type, MDCNS.Pipeline)
            for a, b in zip(segments, segments[1:]):
                g.add_spo(a, MDCNS.feedsInto, b)
            strata = [
                self.entity_uri(f, f"Stratum{i}") for i in range(chain_len)
            ]
            for st in strata:
                g.add_spo(st, RDF.type, MDCNS.Stratum)
            for a, b in zip(strata, strata[1:]):
                g.add_spo(a, MDCNS.locatedBelow, b)

        # A few cross-field pipeline interconnects (fields are otherwise
        # disconnected — the cleanly-partitionable property).
        if self.fields > 1:
            for i in range(self.interconnects):
                a, b = rng.sample(range(self.fields), k=2)
                g.add_spo(
                    self.entity_uri(a, "Pipeline0"),
                    MDCNS.connectedTo,
                    self.entity_uri(b, "Pipeline0"),
                )
        return g

    def domain_grouper(self) -> Callable[[Term], str | None]:
        def group_of(term: Term) -> str | None:
            if isinstance(term, URI) and term.value.startswith(
                "http://mdc.example.org/Field"
            ):
                end = term.value.find("/", len("http://mdc.example.org/"))
                if end < 0:
                    return term.value
                return term.value[:end]
            return None

        return group_of

    def dataset(self) -> SyntheticDataset:
        return SyntheticDataset(
            name=f"MDC-{self.fields}",
            ontology=mdc_ontology(),
            data=self.generate(),
            domain_grouper=self.domain_grouper(),
            seed=self.seed,
        )


def MDC(fields: int, seed: int = 0, **kwargs) -> SyntheticDataset:
    """MDC-like dataset constructor.

    >>> ds = MDC(2)
    >>> "MDC" in ds.name
    True
    """
    return MDCGenerator(fields=fields, seed=seed, **kwargs).dataset()
