"""UOBM-like synthetic generator.

The University Ontology Benchmark (Ma et al. 2006) extends LUBM in exactly
the direction that matters for this paper: it adds *inter-university
connections* — a person's friends and acquaintances span universities, so
the instance graph stops being a set of near-disconnected university
clusters.  The paper observes sub-linear speedups on UOBM because no
partitioning can avoid heavy edge cuts on such a graph (Section VI-A).

This generator reuses the LUBM core (same ontology plus social/transfer
properties) and overlays:

* an ``isFriendOf`` network (symmetric) whose endpoints are drawn from
  *any* university, with ``cross_fraction`` of edges crossing clusters;
* ``hasSameHomeTownWith`` acquaintance links, also cross-cluster and
  **transitive** — chains of them force multi-round communication;
* ``transferredFrom`` links from students to other universities.

With the default ``cross_fraction=0.5`` roughly half the social edges are
cut no matter how resources are grouped, reproducing UOBM's
high-replication profile.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import SyntheticDataset
from repro.datasets.lubm import LUBMGenerator, UB, lubm_ontology
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, URI
from repro.util.seeding import rng_for


def uobm_ontology() -> Graph:
    """LUBM's TBox plus UOBM's social properties and a union class
    (real UOBM leans on owl:unionOf; ``Collegian`` covers every student
    kind, exercising the list-class compiler)."""
    from repro.rdf.terms import BNode

    g = lubm_ontology()
    g.add_spo(UB.isFriendOf, RDF.type, OWL.SymmetricProperty)
    g.add_spo(UB.isFriendOf, RDFS.domain, UB.Person)
    g.add_spo(UB.isFriendOf, RDFS.range, UB.Person)
    g.add_spo(UB.hasSameHomeTownWith, RDF.type, OWL.TransitiveProperty)
    g.add_spo(UB.hasSameHomeTownWith, RDF.type, OWL.SymmetricProperty)
    g.add_spo(UB.transferredFrom, RDFS.subPropertyOf, UB.degreeFrom)
    # Collegian = unionOf(UndergraduateStudent, GraduateStudent)
    l1, l2 = BNode("uobmCollegian1"), BNode("uobmCollegian2")
    g.add_spo(UB.Collegian, OWL.unionOf, l1)
    g.add_spo(l1, RDF.first, UB.UndergraduateStudent)
    g.add_spo(l1, RDF.rest, l2)
    g.add_spo(l2, RDF.first, UB.GraduateStudent)
    g.add_spo(l2, RDF.rest, RDF.nil)
    return g


class UOBMGenerator:
    """Generate UOBM-like data: a LUBM core plus a cross-university social
    layer.

    ``social_edges_per_person`` controls density; ``cross_fraction`` is the
    probability a social edge leaves the person's university (the
    separability knob — at 0.0 this degenerates to LUBM-like clustering,
    at 0.5+ the graph has no good cuts).
    """

    def __init__(
        self,
        universities: int,
        social_edges_per_person: int = 2,
        cross_fraction: float = 0.5,
        hometown_chain_length: int = 4,
        seed: int = 0,
        **lubm_kwargs,
    ) -> None:
        self.universities = universities
        self.social_edges_per_person = social_edges_per_person
        self.cross_fraction = cross_fraction
        self.hometown_chain_length = hometown_chain_length
        self.seed = seed
        self.core = LUBMGenerator(universities=universities, seed=seed, **lubm_kwargs)

    def generate(self) -> Graph:
        g = self.core.generate()
        rng = rng_for(self.seed, "uobm", self.universities)

        # Collect the people per university from the generated core.
        people_by_univ: dict[int, list[URI]] = {u: [] for u in range(self.universities)}
        for t in g.match(p=RDF.type):
            if t.o in (
                UB.UndergraduateStudent,
                UB.GraduateStudent,
                UB.FullProfessor,
                UB.AssociateProfessor,
                UB.AssistantProfessor,
            ):
                univ = _university_index(t.s)
                if univ is not None:
                    people_by_univ[univ].append(t.s)  # type: ignore[arg-type]
        all_people = [p for group in people_by_univ.values() for p in group]

        # Friendship edges.
        for person in all_people:
            home = _university_index(person)
            for _ in range(self.social_edges_per_person):
                if (
                    self.universities > 1
                    and rng.random() < self.cross_fraction
                ):
                    other_univ = rng.randrange(self.universities - 1)
                    if home is not None and other_univ >= home:
                        other_univ += 1
                else:
                    other_univ = home if home is not None else 0
                candidates = people_by_univ[other_univ]
                if candidates:
                    g.add_spo(person, UB.isFriendOf, rng.choice(candidates))

        # Transitive hometown chains across universities.  Chains are
        # *disjoint* (people are dealt from one shuffled deck): the
        # symmetric+transitive closure of each chain is quadratic in its
        # length, and overlapping chains would merge into one giant
        # component whose closure dwarfs the rest of the KB.
        deck = list(all_people)
        rng.shuffle(deck)
        num_chains = max(1, len(all_people) // 20)
        for c in range(num_chains):
            chain = deck[
                c * self.hometown_chain_length : (c + 1) * self.hometown_chain_length
            ]
            for a, b in zip(chain, chain[1:]):
                g.add_spo(a, UB.hasSameHomeTownWith, b)

        # Student transfers.
        if self.universities > 1:
            for univ, group in people_by_univ.items():
                for person in group[:: max(1, len(group) // 3)]:
                    other = rng.randrange(self.universities - 1)
                    if other >= univ:
                        other += 1
                    g.add_spo(
                        person,
                        UB.transferredFrom,
                        LUBMGenerator.university_uri(other),
                    )
        return g

    def domain_grouper(self) -> Callable[[Term], str | None]:
        return self.core.domain_grouper()

    def dataset(self) -> SyntheticDataset:
        return SyntheticDataset(
            name=f"UOBM-{self.universities}",
            ontology=uobm_ontology(),
            data=self.generate(),
            domain_grouper=self.domain_grouper(),
            seed=self.seed,
        )


def _university_index(term: Term) -> int | None:
    if not isinstance(term, URI):
        return None
    value = term.value
    prefix = "http://www.University"
    if not value.startswith(prefix):
        return None
    end = value.find(".", len(prefix))
    if end < 0:
        return None
    try:
        return int(value[len(prefix) : end])
    except ValueError:
        return None


def UOBM(n: int, seed: int = 0, **kwargs) -> SyntheticDataset:
    """UOBM(n) convenience constructor.

    >>> ds = UOBM(2)
    >>> "UOBM" in ds.name
    True
    """
    return UOBMGenerator(universities=n, seed=seed, **kwargs).dataset()
