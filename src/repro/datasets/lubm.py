"""LUBM-compatible synthetic generator.

The Lehigh University Benchmark (Guo, Pan & Heflin 2005) models a
university domain: LUBM(N) generates N universities, each with a set of
departments populated by faculty, students, courses, and publications.
This module reimplements the generator's structure and the univ-bench
ontology's OWL-Horst-expressible axioms:

* class hierarchy: Chair/Dean < Professor < Faculty < Employee < Person;
  Full/Associate/AssistantProfessor < Professor; Graduate/Undergraduate
  Student < Student < Person; GraduateCourse < Course; ...
* property hierarchy: headOf < worksFor < memberOf;
  undergraduate/masters/doctoralDegreeFrom < degreeFrom;
* ``subOrganizationOf`` is **transitive** (department -> college ->
  university chains);
* ``degreeFrom`` has inverse ``hasAlumnus``; ``memberOf`` has inverse
  ``member``;
* domain/range axioms on the main properties;
* the Chair someValuesFrom restriction (a person heading a department is a
  Chair) — the classic LUBM inference the plain RDFS subset misses.

Cluster structure (what the partitioning study depends on): all triples of
a university's entities stay inside that university, except
``*DegreeFrom`` links, which point to a random *other* university —
LUBM's only cross-university edges, and the paper's motivation for the
domain-specific policy ("entities that belong to a certain university are
more likely to be related to each other").

Scale: real LUBM-1 is ~100k triples.  Pure-Python reasoning at that size is
out of budget, so the default ``scale`` produces roughly 1.2k triples per
university and experiments quote "LUBM-10 (scaled)"; structure, ratios,
and ontology are unchanged (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import SyntheticDataset
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Term, URI
from repro.util.seeding import rng_for

#: The univ-bench vocabulary namespace (ours; structurally matching
#: http://swat.cse.lehigh.edu/onto/univ-bench.owl).
UB = Namespace("http://repro.example.org/univ-bench#")


def lubm_ontology() -> Graph:
    """The univ-bench TBox (OWL-Horst-expressible fragment)."""
    g = Graph()

    def sub_class(child: URI, parent: URI) -> None:
        g.add_spo(child, RDFS.subClassOf, parent)

    def sub_prop(child: URI, parent: URI) -> None:
        g.add_spo(child, RDFS.subPropertyOf, parent)

    # -- class hierarchy --
    sub_class(UB.Employee, UB.Person)
    sub_class(UB.Faculty, UB.Employee)
    sub_class(UB.Professor, UB.Faculty)
    sub_class(UB.FullProfessor, UB.Professor)
    sub_class(UB.AssociateProfessor, UB.Professor)
    sub_class(UB.AssistantProfessor, UB.Professor)
    sub_class(UB.Lecturer, UB.Faculty)
    sub_class(UB.Student, UB.Person)
    sub_class(UB.UndergraduateStudent, UB.Student)
    sub_class(UB.GraduateStudent, UB.Student)
    sub_class(UB.TeachingAssistant, UB.Person)
    sub_class(UB.ResearchAssistant, UB.Person)
    sub_class(UB.GraduateCourse, UB.Course)
    sub_class(UB.Department, UB.Organization)
    sub_class(UB.University, UB.Organization)
    sub_class(UB.ResearchGroup, UB.Organization)
    sub_class(UB.Article, UB.Publication)
    sub_class(UB.Chair, UB.Professor)

    # -- property hierarchy --
    sub_prop(UB.headOf, UB.worksFor)
    sub_prop(UB.worksFor, UB.memberOf)
    sub_prop(UB.undergraduateDegreeFrom, UB.degreeFrom)
    sub_prop(UB.mastersDegreeFrom, UB.degreeFrom)
    sub_prop(UB.doctoralDegreeFrom, UB.degreeFrom)

    # -- property characteristics --
    g.add_spo(UB.subOrganizationOf, RDF.type, OWL.TransitiveProperty)
    g.add_spo(UB.degreeFrom, OWL.inverseOf, UB.hasAlumnus)
    g.add_spo(UB.memberOf, OWL.inverseOf, UB.member)

    # -- domain / range --
    for prop, domain, range_ in (
        (UB.advisor, UB.Person, UB.Professor),
        (UB.takesCourse, UB.Student, UB.Course),
        (UB.teacherOf, UB.Faculty, UB.Course),
        (UB.publicationAuthor, UB.Publication, UB.Person),
        (UB.memberOf, UB.Person, UB.Organization),
        (UB.subOrganizationOf, UB.Organization, UB.Organization),
        (UB.degreeFrom, UB.Person, UB.University),
        (UB.teachingAssistantOf, UB.TeachingAssistant, UB.Course),
    ):
        g.add_spo(prop, RDFS.domain, domain)
        g.add_spo(prop, RDFS.range, range_)

    # -- the Chair restriction: ∃ headOf.Department ⊑ Chair --
    restriction = UB.HeadOfDepartmentRestriction
    g.add_spo(restriction, RDF.type, OWL.Restriction)
    g.add_spo(restriction, OWL.onProperty, UB.headOf)
    g.add_spo(restriction, OWL.someValuesFrom, UB.Department)
    g.add_spo(restriction, RDFS.subClassOf, UB.Chair)

    return g


class LUBMGenerator:
    """Generate LUBM(N)-shaped instance data.

    Parameters
    ----------
    universities:
        N of LUBM(N).
    departments_per_university, faculty_per_department, ...:
        Size knobs; defaults keep real LUBM's *ratios* (students ~ 10x
        faculty, ~1 course and ~1.5 publications per faculty member) at a
        pure-Python-friendly absolute scale.
    cross_university_fraction:
        Probability that a graduate student's undergraduate degree points
        to a different university (LUBM behaviour: most do).
    """

    def __init__(
        self,
        universities: int,
        departments_per_university: int = 3,
        faculty_per_department: int = 6,
        students_per_faculty: int = 8,
        graduate_fraction: float = 0.25,
        courses_per_faculty: int = 1,
        publications_per_faculty: int = 2,
        cross_university_fraction: float = 0.8,
        seed: int = 0,
    ) -> None:
        if universities <= 0:
            raise ValueError("need at least one university")
        self.universities = universities
        self.departments_per_university = departments_per_university
        self.faculty_per_department = faculty_per_department
        self.students_per_faculty = students_per_faculty
        self.graduate_fraction = graduate_fraction
        self.courses_per_faculty = courses_per_faculty
        self.publications_per_faculty = publications_per_faculty
        self.cross_university_fraction = cross_university_fraction
        self.seed = seed

    # -- naming (the grouper below relies on this layout) ---------------------

    @staticmethod
    def university_uri(u: int) -> URI:
        return URI(f"http://www.University{u}.edu")

    @staticmethod
    def entity_uri(u: int, local: str) -> URI:
        return URI(f"http://www.University{u}.edu/{local}")

    def generate(self) -> Graph:
        g = Graph()
        rng = rng_for(self.seed, "lubm", self.universities)
        faculty_ranks = (UB.FullProfessor, UB.AssociateProfessor, UB.AssistantProfessor)

        for u in range(self.universities):
            univ = self.university_uri(u)
            g.add_spo(univ, RDF.type, UB.University)

            for d in range(self.departments_per_university):
                dept = self.entity_uri(u, f"Department{d}")
                g.add_spo(dept, RDF.type, UB.Department)
                g.add_spo(dept, UB.subOrganizationOf, univ)

                research_group = self.entity_uri(u, f"Department{d}/ResearchGroup0")
                g.add_spo(research_group, RDF.type, UB.ResearchGroup)
                g.add_spo(research_group, UB.subOrganizationOf, dept)

                faculty: list[URI] = []
                courses: list[URI] = []
                for f in range(self.faculty_per_department):
                    prof = self.entity_uri(u, f"Department{d}/Faculty{f}")
                    faculty.append(prof)
                    g.add_spo(prof, RDF.type, faculty_ranks[f % len(faculty_ranks)])
                    g.add_spo(prof, UB.worksFor, dept)
                    if f == 0:
                        # Department head: the Chair restriction's trigger.
                        g.add_spo(prof, UB.headOf, dept)
                    for c in range(self.courses_per_faculty):
                        course = self.entity_uri(
                            u, f"Department{d}/Course{f}_{c}"
                        )
                        courses.append(course)
                        g.add_spo(course, RDF.type, UB.Course)
                        g.add_spo(prof, UB.teacherOf, course)
                    for p in range(self.publications_per_faculty):
                        pub = self.entity_uri(
                            u, f"Department{d}/Publication{f}_{p}"
                        )
                        g.add_spo(pub, RDF.type, UB.Publication)
                        g.add_spo(pub, UB.publicationAuthor, prof)

                num_students = self.students_per_faculty * len(faculty)
                num_grads = int(num_students * self.graduate_fraction)
                for s in range(num_students):
                    is_grad = s < num_grads
                    student = self.entity_uri(u, f"Department{d}/Student{s}")
                    g.add_spo(
                        student,
                        RDF.type,
                        UB.GraduateStudent if is_grad else UB.UndergraduateStudent,
                    )
                    g.add_spo(student, UB.memberOf, dept)
                    for course in rng.sample(courses, k=min(2, len(courses))):
                        g.add_spo(student, UB.takesCourse, course)
                    if is_grad:
                        g.add_spo(student, UB.advisor, rng.choice(faculty))
                        # The cross-university edge class: where the
                        # undergrad degree came from.
                        if (
                            self.universities > 1
                            and rng.random() < self.cross_university_fraction
                        ):
                            other = rng.randrange(self.universities - 1)
                            if other >= u:
                                other += 1
                        else:
                            other = u
                        g.add_spo(
                            student,
                            UB.undergraduateDegreeFrom,
                            self.university_uri(other),
                        )
        return g

    def domain_grouper(self) -> Callable[[Term], str | None]:
        """Resource -> university key, the paper's LUBM-specific policy."""

        def group_of(term: Term) -> str | None:
            if isinstance(term, URI) and term.value.startswith("http://www.University"):
                host_end = term.value.find("/", len("http://") + 1)
                if host_end < 0:
                    return term.value
                return term.value[:host_end]
            return None

        return group_of

    def dataset(self) -> SyntheticDataset:
        return SyntheticDataset(
            name=f"LUBM-{self.universities}",
            ontology=lubm_ontology(),
            data=self.generate(),
            domain_grouper=self.domain_grouper(),
            seed=self.seed,
        )


def LUBM(n: int, seed: int = 0, **kwargs) -> SyntheticDataset:
    """LUBM(n) convenience constructor.

    >>> ds = LUBM(1)
    >>> len(ds.data) > 100
    True
    """
    return LUBMGenerator(universities=n, seed=seed, **kwargs).dataset()
