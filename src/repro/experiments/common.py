"""Shared experiment machinery: scales, dataset construction, the speedup
runner, and the result container."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.datasets import LUBM, MDC, UOBM, SyntheticDataset
from repro.owl.reasoner import HorstReasoner, Strategy
from repro.parallel.costmodel import CostModel
from repro.parallel.driver import ParallelReasoner
from repro.parallel.simulated import SimulatedCluster, SimulatedRun
from repro.partitioning.policies import PartitioningPolicy
from repro.util.tables import ascii_table, to_csv


@dataclass(frozen=True)
class Scale:
    """Workload sizing preset.

    The paper's absolute sizes (LUBM-10 = 1M triples on a 16-node cluster)
    are out of reach for single-core pure Python; each preset keeps the
    benchmark *structure* (cluster counts >= max k, same entity ratios) at
    a feasible triple count.
    """

    name: str
    ks: tuple[int, ...]
    rule_ks: tuple[int, ...]
    lubm_universities: int
    lubm_kwargs: dict
    uobm_universities: int
    uobm_kwargs: dict
    mdc_fields: int
    mdc_kwargs: dict
    #: LUBM university counts for the Fig 4 size sweep.
    fig4_sizes: tuple[int, ...]
    #: Reasoning strategy for the speedup experiments.  ``backward`` is the
    #: paper's Jena-style driver (the super-linear regime); see fig1 notes.
    speedup_strategy: Strategy = "backward"


_TINY_LUBM = dict(departments_per_university=1, faculty_per_department=2,
                  students_per_faculty=3)
_SMALL_LUBM = dict(departments_per_university=1, faculty_per_department=3,
                   students_per_faculty=4)

SCALES: dict[str, Scale] = {
    # For unit tests and pytest-benchmark: seconds, not minutes.
    "tiny": Scale(
        name="tiny",
        ks=(1, 2, 4),
        rule_ks=(2, 3),
        lubm_universities=4,
        lubm_kwargs=_TINY_LUBM,
        uobm_universities=3,
        uobm_kwargs=dict(_TINY_LUBM, social_edges_per_person=2),
        mdc_fields=4,
        mdc_kwargs=dict(wells_per_field=3, hierarchy_depth=5),
        fig4_sizes=(1, 2, 3, 4, 6),
    ),
    # CLI default: a few minutes end to end.
    "small": Scale(
        name="small",
        ks=(1, 2, 4, 8),
        rule_ks=(2, 3, 4),
        lubm_universities=8,
        lubm_kwargs=_SMALL_LUBM,
        uobm_universities=4,
        uobm_kwargs=dict(_SMALL_LUBM, social_edges_per_person=2),
        mdc_fields=8,
        mdc_kwargs=dict(wells_per_field=4, hierarchy_depth=6),
        fig4_sizes=(1, 2, 4, 6, 8),
    ),
    # The paper's processor range (up to 16); tens of minutes.
    "paper": Scale(
        name="paper",
        ks=(1, 2, 4, 8, 16),
        rule_ks=(2, 3, 4),
        lubm_universities=16,
        lubm_kwargs=_SMALL_LUBM,
        uobm_universities=8,
        uobm_kwargs=dict(_SMALL_LUBM, social_edges_per_person=2),
        mdc_fields=16,
        mdc_kwargs=dict(wells_per_field=4, hierarchy_depth=7),
        fig4_sizes=(1, 2, 4, 8, 12, 16),
    ),
}


def build_dataset(name: str, scale: Scale, seed: int = 0) -> SyntheticDataset:
    """Construct one of the paper's three benchmarks at a given scale."""
    if name == "lubm":
        return LUBM(scale.lubm_universities, seed=seed, **scale.lubm_kwargs)
    if name == "uobm":
        return UOBM(scale.uobm_universities, seed=seed, **scale.uobm_kwargs)
    if name == "mdc":
        return MDC(scale.mdc_fields, seed=seed, **scale.mdc_kwargs)
    raise ValueError(f"unknown dataset {name!r} (expected lubm/uobm/mdc)")


@dataclass
class ExperimentResult:
    """Rows + rendering for one experiment."""

    name: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = ascii_table(self.headers, self.rows, title=self.title)
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out

    def to_csv(self) -> str:
        return to_csv(self.headers, self.rows)

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


@dataclass
class SpeedupPoint:
    """One point of a speedup curve."""

    dataset: str
    k: int
    serial_time: float
    makespan: float
    speedup: float
    work_speedup: float
    rounds: int
    run: SimulatedRun | None = None


def measure_serial(
    dataset: SyntheticDataset, strategy: Strategy
) -> tuple[float, int]:
    """Serial materialization (time seconds, work units)."""
    reasoner = HorstReasoner(dataset.ontology)
    t0 = time.perf_counter()
    result = reasoner.materialize(dataset.data, strategy=strategy)
    return time.perf_counter() - t0, result.work


def speedup_series(
    dataset: SyntheticDataset,
    ks: Sequence[int],
    approach: str = "data",
    policy_factory: Callable[[], PartitioningPolicy] | None = None,
    strategy: Strategy = "backward",
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> list[SpeedupPoint]:
    """The workhorse of Figs 1, 3, 5, 6: serial baseline once, then one
    simulated parallel run per k.

    k=1 is reported as the serial run (speedup 1.0) — the paper's curves
    are normalized the same way.
    """
    cost_model = cost_model if cost_model is not None else CostModel.file_ipc()
    serial_time, serial_work = measure_serial(dataset, strategy)
    points: list[SpeedupPoint] = []
    for k in ks:
        if k == 1:
            points.append(
                SpeedupPoint(
                    dataset=dataset.name,
                    k=1,
                    serial_time=serial_time,
                    makespan=serial_time,
                    speedup=1.0,
                    work_speedup=1.0,
                    rounds=1,
                )
            )
            continue
        reasoner = ParallelReasoner(
            dataset.ontology,
            k=k,
            approach=approach,  # type: ignore[arg-type]
            policy=policy_factory() if policy_factory else None,
            strategy=strategy,
            seed=seed,
        )
        sim = SimulatedCluster(reasoner, cost_model)
        run = sim.run(dataset.data)
        points.append(
            SpeedupPoint(
                dataset=dataset.name,
                k=k,
                serial_time=serial_time,
                makespan=run.makespan,
                speedup=run.speedup(serial_time),
                work_speedup=run.work_speedup(serial_work),
                rounds=run.result.stats.num_rounds,
                run=run,
            )
        )
    return points
