"""Fig 4 — regressing a cubic performance model from serial reasoning times.

Paper method: run the serial reasoner on LUBM-1, LUBM-5, LUBM-10, ... and
least-squares-fit a cubic in the node count ("since the worst case of the
reasoning for the rule set is cubic, fitting a cubic model is reasonable").

Shape checks: R² close to 1; the model is super-linear over the measured
range (T(2n) > 2·T(n)), which is what makes Fig 3's theoretical max exceed
k.  We fit both wall-clock seconds and deterministic work units; the work
fit is what tests assert on (machine-independent).
"""

from __future__ import annotations

import time

from repro.datasets import LUBM
from repro.experiments.common import ExperimentResult, SCALES, Scale
from repro.owl.reasoner import HorstReasoner
from repro.perfmodel import PerformancePoint, fit_cubic


def collect_points(
    scale: Scale, seed: int = 0, repeats: int = 2
) -> tuple[list[PerformancePoint], list[PerformancePoint]]:
    """Serial sweep over the Fig 4 sizes.  Returns (seconds points,
    work-unit points), both against the instance-graph node count.

    Wall time takes the min over ``repeats`` runs — the usual scheduling-
    noise reduction; a noisy point can otherwise flip the small cubic
    coefficient's sign and wreck Fig 3's theoretical-max column.  Work
    units are deterministic and measured once.
    """
    time_points: list[PerformancePoint] = []
    work_points: list[PerformancePoint] = []
    for universities in scale.fig4_sizes:
        dataset = LUBM(universities, seed=seed, **scale.lubm_kwargs)
        nodes = len(dataset.data.resources())
        reasoner = HorstReasoner(dataset.ontology)
        best = None
        res = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            res = reasoner.materialize(dataset.data, strategy=scale.speedup_strategy)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        label = f"LUBM-{universities}"
        time_points.append(PerformancePoint(size=nodes, time=best, label=label))
        work_points.append(PerformancePoint(size=nodes, time=res.work, label=label))
    return time_points, work_points


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    time_points, work_points = collect_points(scale, seed=seed)
    time_model = fit_cubic(time_points)
    work_model = fit_cubic(work_points)

    result = ExperimentResult(
        name="fig4",
        title=f"Fig 4: cubic performance model from serial LUBM runs ({scale.name} scale)",
        headers=["dataset", "nodes", "time_s", "model_s", "work", "model_work"],
    )
    for tp, wp in zip(time_points, work_points):
        result.rows.append(
            [
                tp.label,
                int(tp.size),
                round(tp.time, 3),
                round(time_model(tp.size), 3),
                int(wp.time),
                int(work_model(wp.size)),
            ]
        )
    result.notes.append("time model:  " + time_model.describe())
    result.notes.append("work model:  " + work_model.describe())
    growth = work_points[-1].time / max(work_points[0].time, 1) / (
        work_points[-1].size / work_points[0].size
    )
    result.notes.append(
        f"super-linearity factor over the range (work growth / size growth): "
        f"{growth:.2f} (paper regime: > 1)"
    )
    return result
