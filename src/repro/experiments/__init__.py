"""Experiment harness: one module per table/figure of the paper.

Every experiment follows the same contract: ``run(scale) ->
ExperimentResult`` with the rows/series the paper reports, printed as an
ASCII table by the CLI (``python -m repro.experiments <exp> [--scale s]``).

==========  =================================================================
experiment  reproduces
==========  =================================================================
``fig1``    data-partitioning speedups (graph policy) for LUBM/UOBM/MDC
``fig2``    reasoning/IO/sync/aggregation overheads vs k (LUBM, file IPC)
``fig3``    measured vs theoretical-max speedup (LUBM, cubic model)
``fig4``    cubic regression of serial reasoning time vs dataset size
``fig5``    speedups of the three data-partitioning policies (LUBM)
``table1``  partitioning metrics: Bal / OR / IR / partition time
``fig6``    rule-partitioning speedups for LUBM/UOBM/MDC
==========  =================================================================

Scales: sizes are pure-Python-feasible reductions of the paper's workloads
(DESIGN.md §2); the *shape* of each result — who wins, roughly by how much,
where the crossovers are — is the reproduction target, not the absolute
numbers measured on a 2008 Opteron cluster.
"""

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    SCALES,
    build_dataset,
    speedup_series,
)
from repro.experiments import (
    ablations,
    queries,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
)

EXPERIMENTS = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "table1": table1.run,
    "ablations": ablations.run,
    "queries": queries.run,
}

__all__ = [
    "ExperimentResult",
    "Scale",
    "SCALES",
    "build_dataset",
    "speedup_series",
    "EXPERIMENTS",
]
