"""Fig 6 — rule-partitioning speedups for LUBM, UOBM, and MDC.

Paper result: sub-linear but monotonic speedups on a small number of
processors (the rule sets are small, so high k is pointless), with the
implementation switched from files to *shared memory* because rule
partitioning communicates far more tuples than data partitioning.

We mirror both choices: ``scale.rule_ks`` stays small, the cost model is
the shared-memory preset, and edges of the rule-dependency graph are
weighted by predicate counts (the paper's refinement).

Shape checks: monotonic in k, and speedup(k) < k for all k.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import (
    ExperimentResult,
    SCALES,
    Scale,
    build_dataset,
    speedup_series,
)
from repro.parallel.costmodel import CostModel

DATASETS = ("lubm", "uobm", "mdc")

#: Rule partitioning runs the (cheap) forward engine over the full data at
#: every node, so it can afford — and, for overheads to amortize, needs —
#: larger inputs than the backward-driver experiments.
DATA_MULTIPLIER = 3


def _enlarged(scale: Scale) -> Scale:
    return dataclasses.replace(
        scale,
        lubm_universities=scale.lubm_universities * DATA_MULTIPLIER,
        uobm_universities=scale.uobm_universities * DATA_MULTIPLIER,
        mdc_fields=scale.mdc_fields * DATA_MULTIPLIER,
    )


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    result = ExperimentResult(
        name="fig6",
        title=f"Fig 6: rule-partitioning speedups ({scale.name} scale, shared memory)",
        headers=["dataset", "k", "serial_s", "parallel_s", "speedup", "work_speedup"],
    )
    ks = (1,) + tuple(scale.rule_ks)
    data_scale = _enlarged(scale)
    for ds_name in DATASETS:
        dataset = build_dataset(ds_name, data_scale, seed=seed)
        # Rule partitioning gives every node the full data set, so the
        # forward engine is the only tractable strategy at scale — also
        # the honest one: with full data per node there is no search-space
        # reduction for the backward driver to exploit, which is exactly
        # why the paper sees only sub-linear gains here.
        points = speedup_series(
            dataset,
            ks,
            approach="rule",
            strategy="forward",
            cost_model=CostModel.shared_memory(),
            seed=seed,
        )
        for p in points:
            result.rows.append(
                [
                    p.dataset,
                    p.k,
                    round(p.serial_time, 3),
                    round(p.makespan, 3),
                    round(p.speedup, 2),
                    round(p.work_speedup, 2),
                ]
            )
    result.notes.append(
        "paper shape: sub-linear but monotonic; the ceiling is the heaviest "
        "single rule, which cannot be split"
    )
    return result
