"""Ablation experiment — the design-choice comparisons DESIGN.md §5 calls
out, as one table.

Not a figure from the paper; this quantifies the knobs the paper discusses
in prose (Section VI-B's communication and synchronization improvements,
Section VII's hybrid partitioning) plus our own engine-level choices, all
on one LUBM workload:

* communication: file IPC vs MPI vs shared memory (same measured run,
  replayed through each cost model);
* rounds: synchronous barrier vs asynchronous (Section VI-B bullet 2);
* routing: owner-table vs broadcast (tuple volumes);
* approach: data vs rule vs hybrid partitioning at equal node count;
* engine: semi-naive vs naive probes, forward vs backward work.
"""

from __future__ import annotations

from repro.datalog import NaiveEngine, SemiNaiveEngine
from repro.experiments.common import ExperimentResult, SCALES, Scale, build_dataset
from repro.owl.reasoner import HorstReasoner
from repro.parallel.costmodel import CostModel
from repro.parallel.driver import ParallelReasoner
from repro.parallel.hybrid import HybridParallelReasoner
from repro.parallel.routing import BroadcastRouter, DataPartitionRouter
from repro.parallel.simulated import SimulatedCluster
from repro.partitioning import partition_data
from repro.partitioning.policies import GraphPartitioningPolicy


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    dataset = build_dataset("lubm", scale, seed=seed)
    k = max(kk for kk in scale.ks if kk > 1)

    result = ExperimentResult(
        name="ablations",
        title=f"Ablations: design choices on {dataset.name}, k={k} ({scale.name} scale)",
        headers=["dimension", "variant", "metric", "value"],
    )

    # --- communication cost models (one run, three replays) -------------------
    reasoner = ParallelReasoner(
        dataset.ontology, k=k, approach="data",
        policy=GraphPartitioningPolicy(seed=seed), strategy="forward",
    )
    run_result = reasoner.materialize(dataset.data)
    for cm in (CostModel.file_ipc(), CostModel.mpi(), CostModel.shared_memory()):
        sim = SimulatedCluster(reasoner, cm).reconstruct(run_result)
        result.rows.append(
            ["comm", cm.name, "io_max_s", round(max(sim.per_node_io), 4)]
        )

    # --- synchronous vs asynchronous rounds -----------------------------------
    for mode in ("sync", "async"):
        sim = SimulatedCluster(
            reasoner, CostModel.file_ipc(), mode=mode
        ).reconstruct(run_result)
        result.rows.append(
            ["rounds", mode, "makespan_s", round(sim.makespan, 4)]
        )

    # --- routing: owner-table vs broadcast -------------------------------------
    dp = partition_data(dataset.data, GraphPartitioningPolicy(seed=seed), k)
    owner_router = DataPartitionRouter(dp.owner, frozenset(dp.vocabulary))
    broadcast = BroadcastRouter(k)
    sample = [t for i, t in enumerate(dataset.data) if i % 3 == 0]
    owner_sends = sum(len(owner_router.destinations(0, t)) for t in sample)
    broadcast_sends = sum(len(broadcast.destinations(0, t)) for t in sample)
    result.rows.append(["routing", "owner-table", "sends_per_sample", owner_sends])
    result.rows.append(["routing", "broadcast", "sends_per_sample", broadcast_sends])

    # --- partitioning approach at equal node count ------------------------------
    serial_work = HorstReasoner(dataset.ontology).materialize(
        dataset.data, strategy="forward"
    ).work

    def work_speedup(stats) -> float:
        per_node = stats.work_per_node()
        return serial_work / max(per_node) if max(per_node) else float("inf")

    result.rows.append(
        ["approach", f"data k={k}", "work_speedup",
         round(work_speedup(run_result.stats), 2)]
    )
    rule_run = ParallelReasoner(
        dataset.ontology, k=min(4, k), approach="rule", strategy="forward",
    ).materialize(dataset.data)
    result.rows.append(
        ["approach", f"rule k={min(4, k)}", "work_speedup",
         round(work_speedup(rule_run.stats), 2)]
    )
    if k >= 4:
        hybrid_run = HybridParallelReasoner(
            dataset.ontology, k_data=k // 2, k_rules=2, seed=seed,
        ).materialize(dataset.data)
        result.rows.append(
            ["approach", f"hybrid {k // 2}x2", "work_speedup",
             round(work_speedup(hybrid_run.stats), 2)]
        )

    # --- engines -----------------------------------------------------------------
    reasoner_serial = HorstReasoner(dataset.ontology)
    g1 = dataset.data.copy()
    semi = SemiNaiveEngine(reasoner_serial.rules).run(g1)
    g1g = dataset.data.copy()
    semi_generic = SemiNaiveEngine(
        reasoner_serial.rules, compile_rules=False
    ).run(g1g)
    g2 = dataset.data.copy()
    naive = NaiveEngine(reasoner_serial.rules).run(g2)
    result.rows.append(
        ["engine", "semi-naive (compiled)", "join_probes", semi.stats.join_probes]
    )
    result.rows.append(
        ["engine", "semi-naive (generic)", "join_probes",
         semi_generic.stats.join_probes]
    )
    result.rows.append(
        ["engine", "naive", "join_probes", naive.stats.join_probes]
    )
    fwd = reasoner_serial.materialize(dataset.data, strategy="forward")
    bwd = reasoner_serial.materialize(dataset.data, strategy="backward")
    result.rows.append(["strategy", "forward", "work", fwd.work])
    result.rows.append(["strategy", "backward (Jena-style)", "work", bwd.work])

    result.notes.append(
        "expected: io(file) >> io(mpi) >> io(shm); async <= sync; "
        "owner-table sends << broadcast; backward work >> forward work"
    )
    return result
