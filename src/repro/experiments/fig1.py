"""Fig 1 — data-partitioning speedups (graph-partitioning policy).

Paper result: speedup vs number of processors for LUBM-10, UOBM, and MDC
with Algorithm 1 + the Metis-based owner list.  LUBM and MDC are
super-linear ("the partitioning reduces the search space that the reasoner
explores"); UOBM is sub-linear (its dense cross-cluster graph forces high
replication, so partitions stay large).

Our reproduction: the Jena-style backward materializer supplies the
search-space-sensitive cost profile; partitions run under the simulated
cluster with the paper's file-IPC cost model.  Shape checks: LUBM/MDC
speedup > k at k >= 4; UOBM speedup < k.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    SCALES,
    build_dataset,
    speedup_series,
)
from repro.partitioning.policies import GraphPartitioningPolicy

DATASETS = ("lubm", "uobm", "mdc")


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    result = ExperimentResult(
        name="fig1",
        title=f"Fig 1: data-partitioning speedup, graph policy ({scale.name} scale)",
        headers=["dataset", "k", "serial_s", "parallel_s", "speedup", "work_speedup"],
    )
    for ds_name in DATASETS:
        dataset = build_dataset(ds_name, scale, seed=seed)
        points = speedup_series(
            dataset,
            scale.ks,
            approach="data",
            policy_factory=lambda: GraphPartitioningPolicy(seed=seed),
            strategy=scale.speedup_strategy,
        )
        for p in points:
            result.rows.append(
                [
                    p.dataset,
                    p.k,
                    round(p.serial_time, 3),
                    round(p.makespan, 3),
                    round(p.speedup, 2),
                    round(p.work_speedup, 2),
                ]
            )
    result.notes.append(
        "paper shape: LUBM & MDC super-linear (speedup > k), UOBM sub-linear"
    )
    return result
