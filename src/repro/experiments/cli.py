"""Command-line entry point: ``python -m repro.experiments`` or the
installed ``repro-experiments`` script.

Examples::

    repro-experiments fig1                    # one experiment, small scale
    repro-experiments all --scale tiny        # every table/figure, quick
    repro-experiments table1 --csv out.csv    # machine-readable output
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv: list[str] | None = None) -> int:
    from repro.experiments import EXPERIMENTS, SCALES

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Soma & Prasanna, "
        "ICPP 2008 (see EXPERIMENTS.md for the paper-vs-measured record).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="workload size preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="top-level RNG seed")
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the rows as CSV (experiment name is appended when "
        "running 'all')",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.perf_counter()
        result = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"  [{name} completed in {elapsed:.1f}s]")
        print()
        if args.csv:
            path = args.csv
            if len(names) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}_{name}.{ext}" if dot else f"{path}_{name}"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(result.to_csv() + "\n")
            print(f"  [rows written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
