"""Fig 3 — measured speedup vs the theoretical maximum (LUBM).

Paper method: the cubic model of Fig 4 predicts the time of a perfectly
balanced replication-free partition, ``T(N/k)``; the theoretical maximum
speedup is ``T(N)/T(N/k)``.  The figure plots that curve against the
measured speedup, both for the slowest partition alone ("reasoning for the
slowest partition") and for the overall parallel time; measured tracks the
model closely, so better communication would close most of the remaining
gap.

Shape checks: measured_overall <= measured_slowest_partition <=
theoretical (up to partitioning imperfection), and measured within a small
factor of theoretical.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    SCALES,
    Scale,
    build_dataset,
    speedup_series,
)
from repro.experiments.fig4 import collect_points
from repro.partitioning.policies import GraphPartitioningPolicy
from repro.perfmodel import fit_cubic, theoretical_max_speedup


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]

    # The empirical models (Fig 4's machinery): seconds for the
    # paper-matching series, work units for the machine-independent one.
    time_points, work_points = collect_points(scale, seed=seed)
    time_model = fit_cubic(time_points)
    work_model = fit_cubic(work_points)

    dataset = build_dataset("lubm", scale, seed=seed)
    total_nodes = len(dataset.data.resources())
    points = speedup_series(
        dataset,
        scale.ks,
        approach="data",
        policy_factory=lambda: GraphPartitioningPolicy(seed=seed),
        strategy=scale.speedup_strategy,
    )

    result = ExperimentResult(
        name="fig3",
        title=f"Fig 3: measured vs theoretical max speedup, LUBM ({scale.name} scale)",
        headers=[
            "k",
            "measured_overall",
            "measured_slowest_part",
            "theoretical_max",
            "work_measured",
            "work_theoretical",
        ],
    )
    for p in points:
        theory = theoretical_max_speedup(time_model, total_nodes, p.k)
        work_theory = theoretical_max_speedup(work_model, total_nodes, p.k)
        if p.k == 1:
            slowest = 1.0
        else:
            # Speedup counting only the slowest partition's reasoning time
            # (the paper's second series): communication excluded.
            slowest_time = max(p.run.per_node_reasoning) if p.run else p.makespan
            slowest = p.serial_time / slowest_time if slowest_time > 0 else float("inf")
        result.rows.append(
            [
                p.k,
                round(p.speedup, 2),
                round(slowest, 2),
                round(theory, 2),
                round(p.work_speedup, 2),
                round(work_theory, 2),
            ]
        )
    result.notes.append("time model:  " + time_model.describe())
    result.notes.append("work model:  " + work_model.describe())
    result.notes.append(
        "paper shape: measured below and tracking the theoretical maximum; "
        "the residual gap is replication + imbalance + communication"
    )
    return result
