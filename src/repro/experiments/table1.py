"""Table I — partitioning metrics for the LUBM dataset.

Paper columns, per (k, policy): ``Bal`` (stddev of node counts), ``OR``
(output replication − 1), ``IR`` (input replication − 1), and partitioning
time.  The paper's rows show graph ~ domain with small IR (0.07–0.19) and
hash with huge IR (0.7–2.1); hash OR at 8/16 is missing ("X") because the
runs died — we follow Fig 5's feasibility rule there.

Shape checks: IR(hash) >> IR(graph) ~= IR(domain); partition time(graph) >
time(domain) > time(hash) (the streaming policies are cheaper).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, SCALES, Scale, build_dataset
from repro.experiments.fig5 import MEMORY_BUDGET_FACTOR
from repro.owl.reasoner import split_schema
from repro.parallel.driver import ParallelReasoner
from repro.partitioning import compute_data_metrics, output_replication, partition_data
from repro.partitioning.policies import (
    DomainPartitioningPolicy,
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
)


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    dataset = build_dataset("lubm", scale, seed=seed)
    _, instance = split_schema(dataset.data)

    policies = {
        "graph": lambda: GraphPartitioningPolicy(seed=seed),
        "domain": lambda: DomainPartitioningPolicy(dataset.domain_grouper),
        "hash": lambda: HashPartitioningPolicy(),
    }

    result = ExperimentResult(
        name="table1",
        title=f"Table I: partitioning metrics, LUBM ({scale.name} scale)",
        headers=["k", "policy", "bal", "OR", "IR", "part_time_s"],
    )
    total_nodes = len(instance.resources())
    for k in scale.ks:
        if k == 1:
            continue
        for policy_name, factory in policies.items():
            partitioned = partition_data(dataset.data, factory(), k)
            metrics = compute_data_metrics(partitioned, instance)
            feasible = metrics.input_replication <= MEMORY_BUDGET_FACTOR
            if feasible:
                # OR requires an actual parallel run (forward strategy —
                # OR is strategy-independent, both compute the same
                # closure).
                reasoner = ParallelReasoner(
                    dataset.ontology, k=k, approach="data",
                    policy=factory(), strategy="forward", seed=seed,
                )
                run_result = reasoner.materialize(dataset.data)
                metrics.output_replication = output_replication(
                    run_result.node_outputs
                )
                or_cell: object = round(metrics.output_replication - 1.0, 3)
            else:
                or_cell = "X"
            result.rows.append(
                [
                    k,
                    policy_name,
                    round(metrics.bal, 1),
                    or_cell,
                    round(metrics.duplication, 3),
                    round(metrics.partition_time, 3),
                ]
            )
    result.notes.append(f"total input nodes: {total_nodes}")
    result.notes.append(
        "paper shape: IR(hash) >> IR(graph) ~ IR(domain); "
        "'X' marks the paper's out-of-memory hash runs"
    )
    return result
