"""Fig 2 — overhead of the parallel sub-tasks for LUBM (file IPC).

Paper result: per-partition maxima of time spent in reasoning, IO,
synchronization (waiting for the round barrier), and aggregation, for the
LUBM-10 run at each k.  As k grows, reasoning shrinks while IO and sync
grow — the argument for MPI-style communication and asynchronous rounds
(both of which we expose; see the ``--cost-model`` and async notes).

Shape checks: reasoning(k) decreasing; io(k)+sync(k) share increasing.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, SCALES, Scale, build_dataset
from repro.parallel.costmodel import CostModel
from repro.parallel.driver import ParallelReasoner
from repro.parallel.simulated import SimulatedCluster
from repro.partitioning.policies import GraphPartitioningPolicy


def run(
    scale: Scale | str = "small",
    seed: int = 0,
    cost_model: CostModel | None = None,
) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    cost_model = cost_model if cost_model is not None else CostModel.file_ipc()
    dataset = build_dataset("lubm", scale, seed=seed)
    result = ExperimentResult(
        name="fig2",
        title=(
            f"Fig 2: parallel sub-task overheads, LUBM, {cost_model.name} "
            f"({scale.name} scale; max over partitions, seconds)"
        ),
        headers=["k", "reasoning", "io", "sync", "aggregation", "total"],
    )
    for k in scale.ks:
        if k == 1:
            continue  # the paper plots k >= 2 for overheads
        reasoner = ParallelReasoner(
            dataset.ontology,
            k=k,
            approach="data",
            policy=GraphPartitioningPolicy(seed=seed),
            strategy=scale.speedup_strategy,
            seed=seed,
        )
        run_ = SimulatedCluster(reasoner, cost_model).run(dataset.data)
        b = run_.breakdown()
        result.rows.append(
            [
                k,
                round(b.reasoning, 4),
                round(b.io, 4),
                round(b.sync, 4),
                round(b.aggregation, 4),
                round(b.total, 4),
            ]
        )
    result.notes.append(
        "paper shape: reasoning falls with k; io+sync share grows with k"
    )
    return result
