"""Fig 5 — comparing the three data-partitioning policies (LUBM).

Paper result: graph partitioning and domain-specific partitioning perform
nearly identically; naive hash partitioning is far worse, and at 8/16
partitions its runs did not complete ("due to memory size limitations" —
its input replication approaches a full copy of the data per node).

We reproduce the blow-up check explicitly: if a policy's replicated node
total exceeds ``memory_budget_factor`` x the input size, the run is marked
infeasible ("X", as in the paper's footnote) instead of executed.

Shape checks: speedup(graph) ~= speedup(domain) >> speedup(hash); hash
infeasible (or nearly so) at the largest k.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    SCALES,
    Scale,
    build_dataset,
    speedup_series,
)
from repro.owl.reasoner import split_schema
from repro.partitioning import compute_data_metrics, partition_data
from repro.partitioning.policies import (
    DomainPartitioningPolicy,
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
)

#: A policy/k combination is declared infeasible when the sum of per-
#: partition nodes exceeds this factor times the input nodes — the stand-in
#: for the paper's per-node memory exhaustion.
MEMORY_BUDGET_FACTOR = 1.8


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    dataset = build_dataset("lubm", scale, seed=seed)
    # Generators emit instance-only data; split defensively anyway.
    _, instance = split_schema(dataset.data)

    policies = {
        "graph": lambda: GraphPartitioningPolicy(seed=seed),
        "domain": lambda: DomainPartitioningPolicy(dataset.domain_grouper),
        "hash": lambda: HashPartitioningPolicy(),
    }

    result = ExperimentResult(
        name="fig5",
        title=f"Fig 5: data-partitioning policy comparison, LUBM ({scale.name} scale)",
        headers=["policy", "k", "speedup", "IR", "feasible"],
    )
    for policy_name, factory in policies.items():
        # Pre-compute feasibility per k from the partitioning alone.
        feasible_ks = []
        ir_by_k: dict[int, float] = {}
        for k in scale.ks:
            if k == 1:
                ir_by_k[k] = 1.0
                feasible_ks.append(k)
                continue
            partitioned = partition_data(dataset.data, factory(), k)
            metrics = compute_data_metrics(partitioned, instance)
            ir_by_k[k] = metrics.input_replication
            if metrics.input_replication <= MEMORY_BUDGET_FACTOR:
                feasible_ks.append(k)
        points = speedup_series(
            dataset,
            feasible_ks,
            approach="data",
            policy_factory=factory,
            strategy=scale.speedup_strategy,
            seed=seed,
        )
        by_k = {p.k: p for p in points}
        for k in scale.ks:
            if k in by_k:
                p = by_k[k]
                result.rows.append(
                    [policy_name, k, round(p.speedup, 2),
                     round(ir_by_k[k] - 1.0, 3), "yes"]
                )
            else:
                result.rows.append(
                    [policy_name, k, "X", round(ir_by_k[k] - 1.0, 3),
                     "no (memory)"]
                )
    result.notes.append(
        "paper shape: graph ~= domain >> hash; hash infeasible at large k "
        "(the paper's 8/16-node hash runs ran out of memory)"
    )
    return result
