"""Query experiment — the materialization trade-off of the paper's intro,
measured over the fourteen LUBM benchmark queries.

"Materialized knowledge-bases trade-off space and increased loading time
for shorter query times" (Section I).  This table quantifies all three
sides on one LUBM instance:

* space: closed-KB size vs base size;
* loading: one-time materialization cost;
* query time: per-query latency and row counts on the closed graph, with
  the raw-graph row count alongside — the inference-dependent queries
  return nothing without materialization.
"""

from __future__ import annotations

import time

from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.experiments.common import ExperimentResult, SCALES, Scale, build_dataset
from repro.owl import MaterializedKB


def run(scale: Scale | str = "small", seed: int = 0) -> ExperimentResult:
    if isinstance(scale, str):
        scale = SCALES[scale]
    dataset = build_dataset("lubm", scale, seed=seed)

    t0 = time.perf_counter()
    kb = MaterializedKB(dataset.ontology)
    kb.add(iter(dataset.data))
    load_time = time.perf_counter() - t0

    result = ExperimentResult(
        name="queries",
        title=(
            f"LUBM query battery on {dataset.name} ({scale.name} scale): "
            "raw vs materialized"
        ),
        headers=["query", "inference", "raw_rows", "materialized_rows",
                 "latency_ms", "probes"],
    )
    for query in LUBM_QUERIES:
        parsed = query.parse()
        raw_rows = len(parsed.select(dataset.data))
        t0 = time.perf_counter()
        rows = parsed.select(kb.graph)
        latency = (time.perf_counter() - t0) * 1000
        _, stats = parsed.bgp.execute_with_stats(kb.graph)
        result.rows.append(
            [
                query.name,
                "yes" if query.requires_inference else "no",
                raw_rows,
                len(rows),
                round(latency, 2),
                stats.index_probes,
            ]
        )
    result.notes.append(
        f"base {kb.base_size} triples -> closed {kb.size} "
        f"(+{kb.inferred_size} inferred, {kb.size / max(kb.base_size, 1):.2f}x "
        f"space) in {load_time:.2f}s one-time load"
    )
    result.notes.append(
        "intro's trade-off: every inference-dependent query is empty on the "
        "raw graph and an index-probe lookup on the materialized one"
    )
    return result
