"""The resident KB server: queries answered from partition workers that
never shut down.

Shape of the system:

* **one serve thread** owns all mutable state — worker stores, the
  coordinator :class:`~repro.parallel.query.GatherDictionary`, the result
  caches.  Client threads only enqueue requests and wait on futures, so
  reads and writes are serialized without per-store locking;
* **admission control** — the request queue is bounded; a full queue
  rejects *immediately* with the typed :class:`ServerOverloadedError`
  instead of building an unbounded backlog (the client owns the retry
  policy);
* **request batching** — the serve thread drains up to ``batch_size``
  queued requests per wakeup and answers them back-to-back, so a burst
  amortizes the per-wakeup overhead and back-to-back repeats of the same
  pattern hit the caches while they are hottest;
* **version-keyed caches** — each worker's per-pattern answers are cached
  against the worker store's monotone row-set version
  (:attr:`~repro.parallel.worker.PartitionWorker.store_version`).  The
  write path (:meth:`KBServer.apply`) runs DRed on the authoritative
  :class:`~repro.owl.kb.MaterializedKB` and pushes the *net* closure
  delta into the worker stores, which bumps their versions — the caches
  invalidate by key mismatch, never by explicit flush (the contract the
  ST300 dataflow verifier checks declaratively).

The serving scatter deliberately skips the distributed engine's semi-join
pruning: an *unconstrained* per-pattern answer is reusable across every
query that mentions the pattern, a semi-join-pruned one is not, and with
workers in-process the "shipping" a semi-join would save is a memcpy.
"""

from __future__ import annotations

import queue
import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.datalog.ast import Atom, Bindings
from repro.datalog.engine import ApplyResult
from repro.owl.kb import MaterializedKB
from repro.parallel.query import GatherDictionary
from repro.parallel.worker import PartitionWorker
from repro.rdf.graph import Graph
from repro.rdf.idquery import join_pattern
from repro.rdf.idstore import IdGraph
from repro.rdf.query import BGPQuery
from repro.rdf.terms import Term, Variable
from repro.rdf.triple import Triple


class ServerClosedError(RuntimeError):
    """Request submitted to (or still queued in) a closed server."""


class ServerOverloadedError(RuntimeError):
    """Typed admission-control rejection: the bounded request queue is
    full.  Carries the configured capacity so clients can implement
    informed backoff."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        super().__init__(
            f"serving queue full (capacity {capacity}); retry later")


@dataclass(frozen=True)
class _PatternAnswer:
    """One worker's full answer for one pattern, already canonicalized
    into the coordinator id space (directly unionable)."""

    s: np.ndarray
    p: np.ndarray
    o: np.ndarray
    probes: int
    payload_bytes: int


class WorkerResultCache:
    """Per-worker pattern-result cache, keyed on the store version.

    Each entry records the worker-store version it was computed at;
    :meth:`lookup` treats a version mismatch as a miss, so a write that
    bumps the store version invalidates every prior entry for that worker
    without any explicit flush.  Bounded LRU: the least recently used
    pattern falls out first.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        #: pattern -> (store version at compute time, cached answer).
        self._entries: OrderedDict[Atom, tuple[int, _PatternAnswer]] = (
            OrderedDict())
        self.hits = 0
        self.misses = 0

    def lookup(self, pattern: Atom, version: int) -> _PatternAnswer | None:
        entry = self._entries.get(pattern)
        if entry is None or entry[0] != version:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(pattern)
        return entry[1]

    def store(
        self, pattern: Atom, version: int, answer: _PatternAnswer
    ) -> None:
        entries = self._entries
        entries[pattern] = (version, answer)
        entries.move_to_end(pattern)
        while len(entries) > self._maxsize:
            entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class ServingStats:
    """Lifetime counters of one server."""

    served: int
    rejected: int
    applied: int
    batches: int
    cache_hits: int
    cache_misses: int

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class _QueryRequest:
    patterns: tuple[Atom, ...]
    future: Future


@dataclass
class _ApplyRequest:
    adds: tuple[Triple, ...]
    removes: tuple[Triple, ...]
    future: Future


class KBServer:
    """A materialized KB kept resident and served concurrently.

    ``workers`` are the id-native partition workers of a finished
    parallel run (``ParallelRunResult.workers`` from the BSP driver or
    ``AsyncRunResult.workers`` from the in-process async runtime) — their
    columnar stores *are* the serving replicas.  Without workers the
    server answers from ``kb.id_index()``, the single-node resident
    mirror (same version-keyed caching discipline, one store).

    ``kb`` stays the authority for updates: :meth:`apply` runs
    delete-and-rederive there and propagates the net closure delta to the
    worker stores.  One server per worker set — the server owns the
    workers' query-session state.
    """

    def __init__(
        self,
        kb: MaterializedKB,
        workers: Sequence[PartitionWorker] | None = None,
        *,
        capacity: int = 64,
        batch_size: int = 8,
        cache_size: int = 256,
        poll_interval: float = 0.02,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._kb = kb
        if workers:
            worker_list = list(workers)
            for w in worker_list:
                if not w.id_native or w.dictionary is None:
                    raise ValueError(
                        "KBServer needs id-native workers (engine="
                        "'columnar' with the id wire protocol)")
            self._workers: list[PartitionWorker] | None = worker_list
            self._gather: GatherDictionary | None = GatherDictionary(
                worker_list[0].dictionary.base)
            # The server holds one long-lived query session per worker:
            # delta-dictionary entries ship once per server lifetime and
            # cached answers stay decodable forever after.
            for w in worker_list:
                w.begin_query_session()
            self._caches = [
                WorkerResultCache(cache_size) for _ in worker_list]
        else:
            self._workers = None
            self._gather = None
            self._caches = []
        self._capacity = capacity
        self._batch_size = batch_size
        self._poll_interval = poll_interval
        self._queue: queue.Queue[_QueryRequest | _ApplyRequest] = (
            queue.Queue(maxsize=capacity))
        self._served = 0
        self._applied = 0
        self._batches = 0
        self._rejected = 0
        self._reject_lock = threading.Lock()
        self._closing = threading.Event()
        self._thread = threading.Thread(
            target=self._serve_loop, name="kbserver", daemon=True)
        self._thread.start()

    # -- construction ------------------------------------------------------------

    @classmethod
    def load(
        cls,
        ontology: Graph,
        data: Graph,
        k: int = 2,
        backend: str = "bsp",
        approach: str = "data",
        **options: int | float,
    ) -> "KBServer":
        """Materialize ``data`` on a ``k``-node id-native cluster and
        serve it.  ``backend`` picks the runtime that builds the closure
        — ``"bsp"`` (synchronous rounds) or ``"async"`` (the supervised
        round-free runtime); both leave their partition workers resident
        for the read path.  Remaining keyword options go to the server
        constructor."""
        kb = MaterializedKB(ontology)
        kb.bulk_load(data, parallel_k=k, approach=approach,  # type: ignore[arg-type]
                     engine="columnar", encode_wire=True, backend=backend)
        run = kb.last_parallel_run
        workers = list(run.workers) if run is not None else []
        return cls(kb, workers=workers or None, **options)  # type: ignore[arg-type]

    # -- client surface ----------------------------------------------------------

    def submit(self, query: BGPQuery | Sequence[Atom]) -> "Future[list[Bindings]]":
        """Enqueue a BGP query; returns a future resolving to its
        solution mappings.  Raises :class:`ServerOverloadedError` when
        the bounded queue is full and :class:`ServerClosedError` after
        :meth:`close`."""
        patterns = tuple(
            query.patterns if isinstance(query, BGPQuery) else query)
        if not patterns:
            raise ValueError("a query needs at least one pattern")
        for pat in patterns:
            if not isinstance(pat, Atom):
                raise TypeError(f"pattern must be an Atom, got {pat!r}")
        future: Future[list[Bindings]] = Future()
        self._enqueue(_QueryRequest(patterns, future))
        return future

    def query(
        self,
        query: BGPQuery | Sequence[Atom],
        timeout: float | None = 30.0,
    ) -> list[Bindings]:
        """Blocking :meth:`submit`: the solution mappings, term-decoded."""
        return self.submit(query).result(timeout)

    def submit_apply(
        self,
        adds: Iterable[Triple] = (),
        removes: Iterable[Triple] = (),
    ) -> "Future[ApplyResult]":
        """Enqueue an update.  Writes ride the same serialized queue as
        reads, so a client never observes a half-propagated delta."""
        future: Future[ApplyResult] = Future()
        self._enqueue(_ApplyRequest(tuple(adds), tuple(removes), future))
        return future

    def apply(
        self,
        adds: Iterable[Triple] = (),
        removes: Iterable[Triple] = (),
        timeout: float | None = 120.0,
    ) -> ApplyResult:
        """Blocking :meth:`submit_apply`: DRed on the authoritative KB,
        then net-delta propagation into every worker store (bumping their
        versions — which is what invalidates the result caches)."""
        return self.submit_apply(adds, removes).result(timeout)

    @property
    def stats(self) -> ServingStats:
        return ServingStats(
            served=self._served,
            rejected=self._rejected,
            applied=self._applied,
            batches=self._batches,
            cache_hits=sum(c.hits for c in self._caches),
            cache_misses=sum(c.misses for c in self._caches),
        )

    @property
    def kb(self) -> MaterializedKB:
        return self._kb

    def close(self, timeout: float = 10.0) -> None:
        """Stop serving: already-queued requests complete, later submits
        raise :class:`ServerClosedError`."""
        self._closing.set()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "KBServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- serve loop --------------------------------------------------------------

    def _enqueue(self, request: _QueryRequest | _ApplyRequest) -> None:
        if self._closing.is_set():
            raise ServerClosedError("server is closed")
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._reject_lock:
                self._rejected += 1
            raise ServerOverloadedError(self._capacity) from None

    def _serve_loop(self) -> None:
        while True:
            try:
                head = self._queue.get(timeout=self._poll_interval)
            except queue.Empty:
                if self._closing.is_set():
                    break
                continue
            batch: list[_QueryRequest | _ApplyRequest] = [head]
            while len(batch) < self._batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self._batches += 1
            for request in batch:
                self._handle(request)
        # Late stragglers that raced close(): fail them typed, not silent.
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.future.set_exception(
                ServerClosedError("server closed before the request ran"))

    def _handle(self, request: _QueryRequest | _ApplyRequest) -> None:
        try:
            if isinstance(request, _ApplyRequest):
                result: object = self._do_apply(
                    request.adds, request.removes)
                self._applied += 1
            else:
                result = self._do_query(request.patterns)
                self._served += 1
        except Exception as exc:  # noqa: BLE001 — delivered to the caller
            request.future.set_exception(exc)
            return
        request.future.set_result(result)

    # -- evaluation --------------------------------------------------------------

    def _do_query(self, patterns: tuple[Atom, ...]) -> list[Bindings]:
        if self._workers is None:
            return self._kb.id_index().execute(list(patterns))
        gather = self._gather
        assert gather is not None
        env: dict[Variable, np.ndarray] = {}
        n_env = 1
        for pattern in BGPQuery(list(patterns))._order(set()):
            if n_env == 0:
                break
            union = IdGraph()
            for i, worker in enumerate(self._workers):
                answer = self._pattern_answer(i, worker, pattern)
                union.add_rows(answer.s, answer.p, answer.o)
            env, n_env, _probes = join_pattern(
                union, pattern, env, n_env, gather.get)
        decoded: Mapping[Variable, list[Term]] = {
            var: gather.decode_many(col) for var, col in env.items()
        }
        return [
            {var: terms[i] for var, terms in decoded.items()}
            for i in range(n_env)
        ]

    def _pattern_answer(
        self, i: int, worker: PartitionWorker, pattern: Atom
    ) -> _PatternAnswer:
        gather = self._gather
        assert gather is not None
        version = worker.store_version
        answer = self._caches[i].lookup(pattern, version)
        if answer is None:
            batch, probes = worker.answer_pattern(pattern)
            gather.apply_delta(batch.delta)
            answer = _PatternAnswer(
                s=gather.canonical_ids(batch.s_ids),
                p=gather.canonical_ids(batch.p_ids),
                o=gather.canonical_ids(batch.o_ids),
                probes=probes,
                payload_bytes=batch.payload_bytes(),
            )
            self._caches[i].store(pattern, version, answer)
        return answer

    # -- the write path ----------------------------------------------------------

    def _do_apply(
        self, adds: tuple[Triple, ...], removes: tuple[Triple, ...]
    ) -> ApplyResult:
        result = self._kb.apply(adds=adds, removes=removes)
        if self._workers is not None:
            removed = list(result.removed)
            if removed:
                # A removed closure row may be replicated anywhere (any
                # node that derived or received it), so every worker
                # drops its copies.
                for worker in self._workers:
                    worker.apply_closure_delta((), removed)
            added = list(result.added)
            if added:
                # Union-read semantics only need each new row on one
                # node; round-robin keeps the stores balanced.
                k = len(self._workers)
                for j, t in enumerate(added):
                    self._workers[j % k].apply_closure_delta([t], ())
        return result

    def __repr__(self) -> str:
        mode = (f"{len(self._workers)} workers" if self._workers
                else "serial index")
        return (f"<KBServer {mode} kb={len(self._kb)} "
                f"served={self._served} rejected={self._rejected}>")
