"""Multi-client load driver for the serving tier.

Deterministic closed-loop load: ``concurrency`` client threads each issue
``requests_per_client`` queries back-to-back (round-robin over the query
mix, offset per client so concurrent clients interleave different
queries), measuring per-request wall latency.  The report carries the
serving headline numbers — QPS and p50/p99 latency — plus the admission
and cache counters for the run window.

:func:`write_serving_bench` serializes a list of reports into the
``BENCH_serving.json`` schema CI archives (one entry per concurrency
level, mirroring ``BENCH_core.json``'s one-file-per-area convention).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.datalog.ast import Atom
from repro.rdf.query import BGPQuery
from repro.serving.server import KBServer, ServerOverloadedError

Query = "BGPQuery | Sequence[Atom]"


@dataclass(frozen=True)
class LoadReport:
    """One load run at one concurrency level."""

    label: str
    concurrency: int
    requests: int
    completed: int
    rejected: int
    duration_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    #: Result-cache hit rate over this run's window (not the server's
    #: lifetime — computed from before/after counter snapshots).
    cache_hit_rate: float


def run_load(
    server: KBServer,
    queries: Sequence[BGPQuery | Sequence[Atom]],
    concurrency: int,
    requests_per_client: int,
    label: str = "",
    timeout: float = 60.0,
) -> LoadReport:
    """Drive ``server`` with ``concurrency`` closed-loop clients and
    report throughput and tail latency.

    An admission rejection (:class:`ServerOverloadedError`) counts as a
    rejected request, not a latency sample — the tail percentiles
    describe *served* requests, the rejection count describes the
    admission controller.
    """
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    if not queries:
        raise ValueError("need at least one query")
    before = server.stats
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    rejected = [0] * concurrency
    errors: list[BaseException] = []
    start_barrier = threading.Barrier(concurrency + 1)

    def client(idx: int) -> None:
        try:
            start_barrier.wait(timeout=timeout)
            for j in range(requests_per_client):
                q = queries[(idx + j) % len(queries)]
                t0 = time.perf_counter()
                try:
                    server.query(q, timeout=timeout)
                except ServerOverloadedError:
                    rejected[idx] += 1
                    continue
                latencies[idx].append(time.perf_counter() - t0)
        except Exception as exc:  # reraised below on the caller's thread
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    start_barrier.wait(timeout=timeout)
    t_start = time.perf_counter()
    for t in threads:
        t.join(timeout=timeout * max(1, requests_per_client))
    duration = time.perf_counter() - t_start
    if errors:
        raise errors[0]

    flat = [lat for per_client in latencies for lat in per_client]
    completed = len(flat)
    after = server.stats
    window_hits = after.cache_hits - before.cache_hits
    window_misses = after.cache_misses - before.cache_misses
    window_total = window_hits + window_misses
    samples = np.asarray(flat) if flat else np.zeros(1)
    return LoadReport(
        label=label,
        concurrency=concurrency,
        requests=concurrency * requests_per_client,
        completed=completed,
        rejected=sum(rejected),
        duration_s=round(duration, 6),
        qps=round(completed / duration, 2) if duration > 0 else 0.0,
        p50_ms=round(float(np.percentile(samples, 50)) * 1000, 3),
        p99_ms=round(float(np.percentile(samples, 99)) * 1000, 3),
        cache_hit_rate=(
            round(window_hits / window_total, 4) if window_total else 0.0),
    )


def write_serving_bench(
    path: str | Path,
    reports: Sequence[LoadReport],
    meta: dict | None = None,
) -> dict:
    """Write ``BENCH_serving.json``: one record per concurrency level
    plus a headline block (best QPS and its p99) for the trajectory
    tracker.  Returns the written payload."""
    if not reports:
        raise ValueError("need at least one report")
    best = max(reports, key=lambda r: r.qps)
    payload = {
        "meta": dict(meta or {}),
        "levels": [asdict(r) for r in reports],
        "headline": {
            "concurrency": best.concurrency,
            "qps": best.qps,
            "p50_ms": best.p50_ms,
            "p99_ms": best.p99_ms,
            "cache_hit_rate": best.cache_hit_rate,
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
