"""Resident serving tier over the partitioned, materialized KB.

The paper's motivation for materialization is the read path: once the
closure is on disk "queries become plain pattern matching" and suit
"application domains where the frequency of data being added is much
smaller than that of queries" (Section I).  This package is that
deployment story: :class:`KBServer` keeps the parallel run's partition
workers *resident* after closure and answers BGP/SPARQL queries straight
from their id-native columnar stores — no aggregation step, no term
materialization on the hot path — with request batching, bounded-queue
admission control, and per-worker result caches keyed on store versions
(invalidated by the DRed write path, :meth:`MaterializedKB.apply`).

:mod:`repro.serving.loadgen` is the multi-client load driver behind
``BENCH_serving.json`` (QPS and p50/p99 per concurrency level).
"""

from repro.serving.server import (
    KBServer,
    ServerClosedError,
    ServerOverloadedError,
    ServingStats,
    WorkerResultCache,
)
from repro.serving.loadgen import LoadReport, run_load, write_serving_bench

__all__ = [
    "KBServer",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServingStats",
    "WorkerResultCache",
    "LoadReport",
    "run_load",
    "write_serving_bench",
]
