"""Empirical performance modeling — the machinery behind Figs 3 and 4.

The paper regresses a cubic model of serial reasoning time against dataset
size (Fig 4: "since the worst case of the reasoning for the rule set is
cubic, fitting a cubic model is reasonable") and derives the *theoretical
maximum speedup* of a perfectly balanced, replication-free k-way partition
(Fig 3): ``T(N) / T(N/k)``.
"""

from repro.perfmodel.model import (
    CubicModel,
    PerformancePoint,
    fit_cubic,
    sweep_serial_times,
    theoretical_max_speedup,
)

__all__ = [
    "CubicModel",
    "PerformancePoint",
    "fit_cubic",
    "sweep_serial_times",
    "theoretical_max_speedup",
]
