"""Cubic performance model: fit, evaluate, and derive ideal speedups.

Fig 4's method: run the serial reasoner on a size sweep (LUBM-1, LUBM-5,
LUBM-10, ...), regress ``T(n) = a3 n^3 + a2 n^2 + a1 n + a0`` by least
squares on (node count, time) points, and read the theoretical-max speedup
of k perfectly balanced replication-free partitions as ``T(N) / T(N/k)``
(all k partitions run concurrently, each over N/k nodes; the slowest —
here: any — partition determines the makespan).

Both wall-clock seconds and deterministic work units can be modeled; the
experiments fit work units for machine-independence and seconds for the
paper-matching plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.rdf.graph import Graph


@dataclass(frozen=True)
class PerformancePoint:
    """One serial measurement: problem size vs cost."""

    size: float  # number of nodes (resources) in the input graph
    time: float  # seconds (or work units)
    label: str = ""


@dataclass(frozen=True)
class CubicModel:
    """``T(n) = c3 n^3 + c2 n^2 + c1 n + c0`` with fit diagnostics."""

    coefficients: tuple[float, float, float, float]  # (c3, c2, c1, c0)
    r_squared: float

    def __call__(self, n: float) -> float:
        c3, c2, c1, c0 = self.coefficients
        return ((c3 * n + c2) * n + c1) * n + c0

    @property
    def leading_coefficient(self) -> float:
        return self.coefficients[0]

    def describe(self) -> str:
        c3, c2, c1, c0 = self.coefficients
        return (
            f"T(n) = {c3:.3e}·n³ + {c2:.3e}·n² + {c1:.3e}·n + {c0:.3e}"
            f"  (R² = {self.r_squared:.4f})"
        )


def fit_cubic(points: Sequence[PerformancePoint]) -> CubicModel:
    """Least-squares cubic fit.

    Requires at least 4 points (exact interpolation) and ideally more; the
    experiments sweep 5–6 sizes.

    >>> pts = [PerformancePoint(n, 2.0 * n**3 + n) for n in (1, 2, 3, 4, 5)]
    >>> model = fit_cubic(pts)
    >>> round(model.leading_coefficient, 6)
    2.0
    >>> model.r_squared > 0.999
    True
    """
    if len(points) < 4:
        raise ValueError(f"cubic fit needs >= 4 points, got {len(points)}")
    x = np.asarray([p.size for p in points], dtype=float)
    y = np.asarray([p.time for p in points], dtype=float)
    coeffs = np.polyfit(x, y, deg=3)
    predicted = np.polyval(coeffs, x)
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return CubicModel(coefficients=tuple(float(c) for c in coeffs), r_squared=r_squared)


def theoretical_max_speedup(model: CubicModel, total_nodes: float, k: int) -> float:
    """Fig 3's ideal: perfectly balanced k-way partition, no replication.

    Every partition reasons over ``total_nodes / k`` graph nodes and they
    run concurrently, so the parallel time is ``T(N/k)`` and the speedup is
    ``T(N) / T(N/k)``.  Super-linear values (> k) are expected whenever the
    model is super-linear in n — the search-space-reduction effect.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    parallel_time = model(total_nodes / k)
    serial_time = model(total_nodes)
    if parallel_time <= 0:
        # A tiny or negative extrapolation at small n/k (cubic fits can dip
        # below zero left of the data); clamp to the smallest measured-like
        # positive value to keep the ratio meaningful.
        parallel_time = abs(model.coefficients[3]) or 1e-12
    return serial_time / parallel_time


def sweep_serial_times(
    sizes: Sequence[int],
    build: Callable[[int], tuple[Graph, Callable[[], float]]],
) -> list[PerformancePoint]:
    """Generic sweep helper: for each size, ``build(size)`` returns the
    input graph (for its node count) and a thunk that runs the serial
    reasoner and returns its cost.  Used by the Fig 4 experiment with both
    wall-clock and work-unit cost functions."""
    points: list[PerformancePoint] = []
    for size in sizes:
        graph, run = build(size)
        n = len(graph.resources())
        cost = run()
        points.append(PerformancePoint(size=n, time=cost, label=str(size)))
    return points
