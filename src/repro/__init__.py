"""repro — parallel inferencing for OWL knowledge bases.

A from-scratch reproduction of Soma & Prasanna (ICPP 2008).  The public
API re-exports the main entry points; see the subpackages for the full
surface:

* :mod:`repro.rdf` — RDF store substrate
* :mod:`repro.datalog` — rule engines
* :mod:`repro.owl` — OWL-Horst compiler and serial reasoner
* :mod:`repro.graphpart` — multilevel k-way graph partitioner
* :mod:`repro.partitioning` — the paper's Algorithms 1 and 2 + metrics
* :mod:`repro.parallel` — the paper's Algorithm 3 runtime + simulation
* :mod:`repro.datasets` — LUBM/UOBM/MDC generators
* :mod:`repro.perfmodel` — the Figs 3/4 performance model
* :mod:`repro.experiments` — per-table/figure reproduction harness
"""

from repro.rdf import Graph, Namespace, Triple, URI, Literal, BNode
from repro.owl import HorstReasoner
from repro.parallel import (
    CostModel,
    HybridParallelReasoner,
    ParallelReasoner,
    SimulatedCluster,
)
from repro.datasets import LUBM, MDC, UOBM

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Namespace",
    "Triple",
    "URI",
    "Literal",
    "BNode",
    "HorstReasoner",
    "ParallelReasoner",
    "HybridParallelReasoner",
    "SimulatedCluster",
    "CostModel",
    "LUBM",
    "UOBM",
    "MDC",
    "__version__",
]
