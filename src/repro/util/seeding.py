"""Deterministic seed derivation.

Every stochastic component (dataset generators, the multilevel partitioner's
matching order, hypothesis-free fuzz helpers) takes an integer seed and
derives child seeds through :func:`derive_seed` so that a single top-level
seed reproduces a whole experiment, including its nested randomness.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base: int, *labels: object) -> int:
    """Derive a child seed from ``base`` and a label path.

    Uses BLAKE2b over the repr of the label path, so the derivation is stable
    across processes and Python versions (unlike ``hash()``, which is
    randomized per process for strings).

    >>> derive_seed(1, "a") == derive_seed(1, "a")
    True
    >>> derive_seed(1, "a") != derive_seed(1, "b")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest(), "big")


def rng_for(base: int, *labels: object) -> random.Random:
    """A :class:`random.Random` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(base, *labels))
