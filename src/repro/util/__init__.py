"""Small shared utilities: timing, deterministic seeding, table rendering.

Nothing in this package knows about RDF or reasoning; it exists so the rest
of the library never reaches for ad-hoc ``time.time()`` calls or hand-rolled
string formatting.
"""

from repro.util.timing import Stopwatch, Timer, timed
from repro.util.seeding import derive_seed, rng_for
from repro.util.tables import ascii_table, format_float

__all__ = [
    "Stopwatch",
    "Timer",
    "timed",
    "derive_seed",
    "rng_for",
    "ascii_table",
    "format_float",
]
