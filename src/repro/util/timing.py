"""Timing primitives used by the reasoner, the runtime, and the experiments.

All measurements use :func:`time.perf_counter` (monotonic, highest available
resolution).  The experiment harness additionally records deterministic
*work counters* (rule firings, join probes) next to wall-clock numbers so
results are comparable across machines; those counters live with the code
that increments them, not here.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Timer:
    """Accumulating timer: many start/stop cycles, one total.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.total >= 0.0
    True
    """

    total: float = 0.0
    starts: int = 0
    _t0: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._t0 is not None:
            raise RuntimeError("Timer already running")
        self._t0 = time.perf_counter()
        self.starts += 1

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("Timer not running")
        elapsed = time.perf_counter() - self._t0
        self.total += elapsed
        self._t0 = None
        return elapsed

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._t0 is not None


class Stopwatch:
    """One-shot elapsed-time reader.

    >>> sw = Stopwatch()
    >>> sw.elapsed() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def restart(self) -> float:
        """Return elapsed time and reset the origin."""
        now = time.perf_counter()
        elapsed = now - self._t0
        self._t0 = now
        return elapsed


@contextmanager
def timed(sink: Callable[[float], None]) -> Iterator[None]:
    """Run a block and pass its duration (seconds) to ``sink``.

    >>> out = []
    >>> with timed(out.append):
    ...     pass
    >>> len(out)
    1
    """
    t0 = time.perf_counter()
    try:
        yield
    finally:
        sink(time.perf_counter() - t0)
