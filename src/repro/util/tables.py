"""Plain-text table rendering for the experiment harness.

The paper reports results as figures and one table; our harness prints the
same rows/series as aligned ASCII tables (and optionally CSV) so the shape of
each result is inspectable in a terminal without plotting.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly: fixed-point for moderate magnitudes,
    scientific for very small/large ones, integers without a trailing dot.

    >>> format_float(2.0)
    '2'
    >>> format_float(0.1234)
    '0.123'
    """
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if value != 0 and (abs(value) < 10 ** (-digits) or abs(value) >= 1e7):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}g}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    >>> print(ascii_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    out.write("\n")
    out.write("-+-".join("-" * w for w in widths))
    for row in str_rows:
        out.write("\n")
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return out.getvalue()


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as minimal CSV (no quoting of commas; experiment values
    are numbers and bare identifiers)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(_cell(v) for v in row))
    return "\n".join(lines)
