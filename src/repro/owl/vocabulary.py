"""OWL/RDFS vocabulary re-exports and schema-triple predicates.

Centralizes the "is this triple schema or instance?" decision used by both
the compiler (what to bind at compile time) and the data partitioner
(Algorithm 1 step 1: remove schema tuples before building the graph).
"""

from __future__ import annotations

from repro.rdf.namespace import (
    OWL,
    RDF,
    RDFS,
    SCHEMA_PREDICATES,
    SCHEMA_TYPE_OBJECTS,
    XSD,
)
from repro.rdf.triple import Triple

__all__ = [
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "SCHEMA_PREDICATES",
    "SCHEMA_TYPE_OBJECTS",
    "is_schema_triple",
]


def is_schema_triple(triple: Triple) -> bool:
    """Whether a triple is schema-level (TBox) for OWL-Horst purposes.

    A triple is schema when its predicate is an ontology-definition
    predicate (rdfs:subClassOf, owl:inverseOf, ...), or it types a term as a
    schema entity (owl:Class, owl:TransitiveProperty, ...), or its subject
    sits in the RDF/RDFS/OWL namespaces (annotations on the vocabularies
    themselves).

    >>> from repro.rdf import URI
    >>> is_schema_triple(Triple(URI("ex:Student"), RDFS.subClassOf, URI("ex:Person")))
    True
    >>> is_schema_triple(Triple(URI("ex:alice"), RDF.type, URI("ex:Student")))
    False
    """
    if triple.p in SCHEMA_PREDICATES:
        return True
    if triple.p == RDF.type and triple.o in SCHEMA_TYPE_OBJECTS:
        return True
    s = triple.s
    if s in RDF or s in RDFS or s in OWL:
        return True
    return False
