"""Ontology -> instance-rule compilation ("compile the ontology into rules").

Rule-based OWL engines don't interpret the TBox at query time; they
*partially evaluate* the entailment rules against it (paper Section I/II;
Jena's hybrid engine does the same with its forward stage).  Two steps:

1. :func:`saturate_schema` — close the TBox under the schema-level rules
   (subclass/subproperty transitivity, equivalence bridges, domain/range
   inheritance), so e.g. ``A subClassOf B subClassOf C`` compiles a direct
   ``A -> C`` rule and instance reasoning never has to chain hierarchies.
2. :func:`compile_ontology` — for every :class:`RuleTemplate`, enumerate all
   bindings of its schema atoms against the saturated TBox and emit the
   residual instance rules.

The residual rules are zero-join or single-join by construction — the
property the paper's data-partitioning correctness argument needs — except
the optional faithful sameAs-propagation rule (``split_sameas=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.datalog.analysis import check_data_partitionable
from repro.datalog.ast import Atom, Bindings, Rule
from repro.datalog.engine import SemiNaiveEngine, match_atom
from repro.owl.rules_horst import (
    HORST_TEMPLATES,
    RDFP11,
    RDFP11_SPLIT,
    SCHEMA_RULES,
    RuleTemplate,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable


@dataclass
class CompiledRuleSet:
    """Output of :func:`compile_ontology`.

    ``rules`` is what each partition's engine runs; ``schema`` is the
    saturated TBox (the triples Algorithm 1 strips and every partition keeps
    a copy of); ``per_template`` records how many instance rules each Horst
    template expanded into (diagnostic, shown by the experiment harness).
    """

    rules: list[Rule]
    schema: Graph
    per_template: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rules)

    def engine(
        self,
        compile_rules: bool = True,
        engine: str | None = None,
        store: str | None = None,
        memory_budget_bytes: int | None = None,
    ) -> SemiNaiveEngine:
        """A fresh fixpoint engine over the compiled rules.
        ``compile_rules=False`` selects the generic-interpreter ablation;
        ``engine`` picks the execution layer directly ("generic" /
        "compiled" / "columnar"); ``store`` / ``memory_budget_bytes``
        pick the columnar mirror storage ("dense" / "run") and its
        resident-byte cap."""
        return SemiNaiveEngine(
            self.rules, compile_rules=compile_rules, engine=engine,
            store=store, memory_budget_bytes=memory_budget_bytes,
        )

    def check_single_join(self) -> None:
        """Assert every compiled rule is safe for data partitioning."""
        check_data_partitionable(self.rules)


def saturate_schema(schema: Graph, rules: Sequence[Rule] = SCHEMA_RULES) -> Graph:
    """Close a TBox under the schema-level rules.  Returns a new graph;
    the input is not mutated."""
    out = schema.copy()
    SemiNaiveEngine(rules).run(out)
    return out


def schema_can_produce_sameas(schema: Graph) -> bool:
    """Whether the TBox can generate ``owl:sameAs`` conclusions: only the
    functional/inverse-functional rules (rdfp1/rdfp2) produce them in pD*.
    """
    from repro.owl.vocabulary import OWL, RDF

    return (
        next(schema.match(None, RDF.type, OWL.FunctionalProperty), None) is not None
        or next(schema.match(None, RDF.type, OWL.InverseFunctionalProperty), None)
        is not None
    )


def compile_ontology(
    schema: Graph,
    templates: Sequence[RuleTemplate] = HORST_TEMPLATES,
    include_sameas_propagation: bool | str = "auto",
    split_sameas: bool = True,
    saturate: bool = True,
) -> CompiledRuleSet:
    """Compile a TBox into instance-level rules.

    Parameters
    ----------
    schema:
        The ontology triples (TBox).  Instance triples may be present; only
        schema-shaped atoms are consulted.
    templates:
        The Horst templates to expand (default: the full pD* instance set).
    include_sameas_propagation / split_sameas:
        Whether to include the sameAs equality theory (rdfp6/rdfp7 and the
        propagation rule), and whether propagation uses the single-join
        split (rdfp11a/b, default — required for data partitioning) or the
        faithful 3-atom rdfp11.  The default ``"auto"`` includes it only
        when the TBox can actually produce sameAs conclusions (declares a
        Functional/InverseFunctional property) — the standard rule-set
        pruning of production engines (OWLIM et al.), and a large win for
        the backward engine, whose wildcard-head propagation rules
        otherwise make every proof goal cyclic.  **Caveat:** if the
        *instance data* asserts ``owl:sameAs`` directly while the TBox has
        no FP/IFP, pass ``True`` explicitly.
    saturate:
        Close the TBox under :data:`SCHEMA_RULES` first (default).  Disable
        only when the caller passes an already-saturated schema.

    >>> from repro.rdf import Graph, URI, Triple
    >>> from repro.owl.vocabulary import RDFS
    >>> tbox = Graph([Triple(URI("ex:Student"), RDFS.subClassOf, URI("ex:Person"))])
    >>> crs = compile_ontology(tbox)
    >>> any(r.name.startswith("rdfs9") for r in crs.rules)
    True
    """
    saturated = saturate_schema(schema) if saturate else schema.copy()

    if include_sameas_propagation == "auto":
        include_sameas = schema_can_produce_sameas(saturated)
    else:
        include_sameas = bool(include_sameas_propagation)

    templates = list(templates)
    if not include_sameas:
        # Drop the whole equality theory: with no sameAs producers, the
        # sym/trans rules (rdfp6/rdfp7) can never fire either.
        templates = [t for t in templates if t.name not in ("rdfp6", "rdfp7")]
    if include_sameas:
        templates.extend(RDFP11_SPLIT if split_sameas else (RDFP11,))

    rules: list[Rule] = []
    seen: set[tuple] = set()
    per_template: dict[str, int] = {}

    for template in templates:
        count = 0
        for compiled in _expand(template, saturated):
            key = (compiled.body, compiled.head)
            if key in seen:
                continue
            seen.add(key)
            rules.append(compiled)
            count += 1
        per_template[template.name] = count

    # owl:intersectionOf / owl:unionOf are list-valued and cannot be
    # expressed as fixed-arity templates; expand them by walking the RDF
    # collections in the TBox.
    list_rules, list_counts = _expand_class_lists(saturated)
    for compiled in list_rules:
        key = (compiled.body, compiled.head)
        if key not in seen:
            seen.add(key)
            rules.append(compiled)
    per_template.update(list_counts)

    return CompiledRuleSet(rules=rules, schema=saturated, per_template=per_template)


def read_rdf_list(graph: Graph, head) -> list:
    """Materialize an RDF collection (rdf:first/rdf:rest chain) as a list.

    Malformed lists (missing first/rest, cycles) raise ``ValueError`` —
    silently truncating an intersection would weaken its semantics.
    """
    from repro.owl.vocabulary import RDF

    items = []
    seen = set()
    node = head
    while node != RDF.nil:
        if node in seen:
            raise ValueError(f"cyclic RDF list at {node}")
        seen.add(node)
        first = graph.value(node, RDF.first)
        rest = graph.value(node, RDF.rest)
        if first is None or rest is None:
            raise ValueError(f"malformed RDF list node {node}")
        items.append(first)
        node = rest
    return items


def _expand_class_lists(schema: Graph) -> tuple[list[Rule], dict[str, int]]:
    """Instance rules for owl:intersectionOf and owl:unionOf class
    definitions (ter Horst's pD* extensions; Jena's OWL rule set includes
    the same).

    * ``C unionOf (D1..Dn)``: each Di is a subclass of C — one zero-join
      rule per member.  (The converse direction is a disjunction, outside
      datalog.)
    * ``C intersectionOf (D1..Dn)``: both directions are horn —
      membership in every Di implies C (one **star-join** rule: all body
      atoms share ?x, so the paper's data-partitioning argument still
      applies — see :class:`repro.datalog.analysis.JoinClass`), and C
      implies each Di (zero-join rules).
    """
    from repro.owl.vocabulary import OWL, RDF

    x = Variable("x")
    rules: list[Rule] = []
    counts = {"unionOf": 0, "intersectionOf": 0}

    for t in schema.match(None, OWL.unionOf, None):
        members = read_rdf_list(schema, t.o)
        for i, member in enumerate(members):
            if member == t.s:
                continue
            rules.append(
                Rule(
                    f"unionOf.{counts['unionOf']}",
                    [Atom(x, RDF.type, member)],
                    Atom(x, RDF.type, t.s),
                )
            )
            counts["unionOf"] += 1

    for t in schema.match(None, OWL.intersectionOf, None):
        members = read_rdf_list(schema, t.o)
        if not members:
            continue
        # D1 ∧ ... ∧ Dn -> C  (star join on ?x)
        rules.append(
            Rule(
                f"intersectionOf.{counts['intersectionOf']}",
                [Atom(x, RDF.type, m) for m in members],
                Atom(x, RDF.type, t.s),
            )
        )
        counts["intersectionOf"] += 1
        # C -> Di for each member
        for member in members:
            if member == t.s:
                continue
            rules.append(
                Rule(
                    f"intersectionOf.{counts['intersectionOf']}",
                    [Atom(x, RDF.type, t.s)],
                    Atom(x, RDF.type, member),
                )
            )
            counts["intersectionOf"] += 1

    return rules, counts


def _expand(template: RuleTemplate, schema: Graph) -> list[Rule]:
    """All instance rules a template yields against a saturated TBox."""
    rule = template.rule
    if not template.schema_positions:
        return [rule]

    # Join the schema atoms against the TBox to enumerate bindings.
    bindings_list: list[Bindings] = [{}]
    for pos in template.schema_positions:
        atom = rule.body[pos]
        next_list: list[Bindings] = []
        for b in bindings_list:
            next_list.extend(match_atom(schema, atom, b))
        bindings_list = next_list
        if not bindings_list:
            return []

    out: list[Rule] = []
    residual_atoms = [
        rule.body[i]
        for i in range(len(rule.body))
        if i not in template.schema_positions
    ]
    for i, b in enumerate(bindings_list):
        body = [a.substitute(b) for a in residual_atoms]
        head = rule.head.substitute(b)
        if head in body:
            # Degenerate expansion, e.g. rdfs9 over a reflexive
            # subClassOf pair compiles to (?s type C) -> (?s type C).
            continue
        try:
            # '.' (not '#') joins template name and expansion index so the
            # name survives the rule-text syntax, where '#' starts comments.
            out.append(Rule(f"{rule.name}.{i}", body, head))
        except ValueError:
            # Unsafe residual (head variable vanished from the body because
            # schema binding grounded it away) — cannot happen with the
            # shipped templates, but user templates get a clean skip.
            continue
    return out
