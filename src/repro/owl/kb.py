"""Materialized knowledge base — the abstraction the paper's introduction
motivates.

"Knowledge bases which perform reasoning when data is loaded are called
materialized knowledge bases ... suited for application domains where the
frequency of data being added is much smaller than that of queries"
(Section I).  :class:`MaterializedKB` is that object:

* **load** — adding triples triggers incremental materialization: the
  semi-naive engine resumes its fixpoint with the new triples as the delta,
  so a small addition costs work proportional to its consequences, not to
  the KB (the reason materialization suits write-rarely/read-often
  workloads);
* **query** — BGP queries and pattern matches run against the closed graph
  with no reasoning on the read path;
* **parallel load** — the initial bulk load can be delegated to the
  paper's parallel reasoner, which is the entire point of the paper: cut
  the one heavy materialization down with a cluster;
* **incremental updates** — :meth:`MaterializedKB.apply` maintains the
  closure under mixed additions *and retractions* via delete-and-
  rederive (:mod:`repro.datalog.incremental`): retracting a base fact
  costs work proportional to its consequence cone, not the KB.
  :meth:`MaterializedKB.rebuild` (full re-closure from the retained
  base) remains as the differential oracle and the escape hatch for
  bulk retractions where DRed's overdeletion would touch most of the
  closure anyway.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Literal

from repro.datalog.ast import Atom, Bindings
from repro.datalog.engine import ApplyResult, EngineStats, SemiNaiveEngine
from repro.owl.compiler import CompiledRuleSet, compile_ontology
from repro.rdf.graph import Graph
from repro.rdf.idquery import IdIndex
from repro.rdf.query import BGPQuery
from repro.rdf.terms import Term
from repro.rdf.triple import Triple


class MaterializedKB:
    """An OWL-Horst knowledge base materialized at load time.

    >>> from repro.rdf import Graph, URI
    >>> from repro.owl.vocabulary import OWL, RDF
    >>> tbox = Graph()
    >>> _ = tbox.add_spo(URI("ex:partOf"), RDF.type, OWL.TransitiveProperty)
    >>> kb = MaterializedKB(tbox)
    >>> kb.add([Triple(URI("ex:a"), URI("ex:partOf"), URI("ex:b")),
    ...         Triple(URI("ex:b"), URI("ex:partOf"), URI("ex:c"))])
    2
    >>> Triple(URI("ex:a"), URI("ex:partOf"), URI("ex:c")) in kb
    True
    >>> kb.add([Triple(URI("ex:c"), URI("ex:partOf"), URI("ex:d"))])
    1
    >>> kb.size  # closure of the 4-node chain a-b-c-d: C(4,2) pairs
    6
    """

    def __init__(
        self,
        ontology: Graph,
        include_sameas_propagation: bool | str = "auto",
        compile_rules: bool = True,
        engine: str | None = None,
        store: str | None = None,
        memory_budget_bytes: int | None = None,
        sanitize: bool | None = None,
    ) -> None:
        self.compiled: CompiledRuleSet = compile_ontology(
            ontology, include_sameas_propagation=include_sameas_propagation
        )
        # ``engine="columnar"`` keeps an id-encoded mirror of the closed
        # graph across incremental add() calls (the engine caches it per
        # graph object), so repeated small loads stay cheap.  ``store`` /
        # ``memory_budget_bytes`` select that mirror's storage: "run"
        # keeps it as compressed sorted runs under a resident-byte cap.
        # ``sanitize`` opts the mirror into the runtime invariant checks
        # (None defers to REPRO_SANITIZE; see repro.analysis.sanitize).
        self._engine = SemiNaiveEngine(self.compiled.rules,
                                       compile_rules=compile_rules,
                                       engine=engine,
                                       store=store,
                                       memory_budget_bytes=memory_budget_bytes,
                                       sanitize=sanitize)
        self._base = Graph()
        self._closed = Graph()
        self._stats = EngineStats()
        self._id_indexes: dict[str, IdIndex] = {}

    # -- loading ----------------------------------------------------------------

    def add(self, triples: Iterable[Triple]) -> int:
        """Load triples and incrementally re-close.  Returns the number of
        *base* triples that were new; consequences are materialized as a
        side effect (see :attr:`last_load_stats` for their count)."""
        fresh = [t for t in triples if self._base.add(t)]
        if fresh:
            result = self._engine.run(self._closed, delta=fresh)
            self._stats.merge(result.stats)
            self._last_load_stats = result.stats
        else:
            self._last_load_stats = EngineStats()
        return len(fresh)

    def bulk_load(
        self,
        graph: Graph,
        parallel_k: int | None = None,
        approach: Literal["data", "rule"] = "data",
        engine: str | None = None,
        encode_wire: bool = False,
        backend: Literal["bsp", "async"] = "bsp",
    ) -> None:
        """Initial load of a whole graph.

        ``parallel_k`` delegates materialization to the paper's
        :class:`~repro.parallel.driver.ParallelReasoner`; the closed result
        replaces this KB's contents (so call it on an empty KB — it raises
        otherwise, instead of merging two closure histories).

        ``engine``/``encode_wire``/``backend`` select the cluster runtime
        for the parallel path (``engine="columnar", encode_wire=True``
        makes the workers id-native; ``backend="async"`` runs the
        supervised round-free runtime instead of BSP rounds).  The run's
        result — including its still-resident workers — is kept as
        :attr:`last_parallel_run`, which is how the serving tier
        (:mod:`repro.serving`) adopts the cluster it serves from.
        """
        if parallel_k is None:
            self.add(iter(graph))
            return
        if len(self._base) > 0:
            raise RuntimeError(
                "parallel bulk_load only supports an empty KB; use add() "
                "for incremental loads"
            )
        from repro.parallel.driver import ParallelReasoner

        # Built from the saturated TBox, so the parallel reasoner compiles
        # an identical rule set (saturation is idempotent).
        reasoner = ParallelReasoner(self.compiled.schema, k=parallel_k,
                                    approach=approach, engine=engine,
                                    encode_wire=encode_wire)
        if backend == "async":
            result = reasoner.materialize_async(graph)
            engine_stats = EngineStats()
            for worker in result.workers:
                engine_stats.merge(worker.engine_stats)
        elif backend == "bsp":
            result = reasoner.materialize(graph)
            engine_stats = result.engine_stats
        else:
            raise ValueError(
                f'backend must be "bsp" or "async", got {backend!r}')
        self._last_parallel_run = result
        self._base.update(iter(graph))
        for t in result.graph:
            if t not in reasoner.compiled.schema:
                self._closed.add(t)
        # The cluster's engine work counts toward this KB's totals just
        # like a serial load's would — merged, not discarded.
        self._stats.merge(engine_stats)
        self._last_load_stats = engine_stats

    def apply(
        self,
        adds: Iterable[Triple] = (),
        removes: Iterable[Triple] = (),
    ) -> ApplyResult:
        """Incrementally maintain the closure under additions and
        retractions (delete-and-rederive; removals apply first).

        Retraction targets *base* facts: a triple in ``removes`` that
        was never asserted is a no-op (if it is derivable it stays
        derivable), and a retracted base triple that is still derivable
        from the remaining base survives in the closure.  Returns the
        engine's :class:`~repro.datalog.engine.ApplyResult` (net added /
        removed closure triples plus work stats, also merged into
        :attr:`total_stats` and exposed as :attr:`last_load_stats`).
        """
        retracted = [t for t in removes if self._base.discard(t)]
        fresh = [t for t in adds if self._base.add(t)]
        if not retracted and not fresh:
            self._last_load_stats = EngineStats()
            return ApplyResult(graph=self._closed, added=Graph(),
                               removed=Graph())
        result = self._engine.apply(
            self._closed, adds=fresh, removes=retracted,
            asserted=self._base)
        self._stats.merge(result.stats)
        self._last_load_stats = result.stats
        return result

    def rebuild(self) -> None:
        """Re-close from scratch off the retained base triples — the
        differential oracle for :meth:`apply` and the better tool when a
        retraction batch is large enough that overdeletion would visit
        most of the closure."""
        self._closed = self._base.copy()
        self._id_indexes.clear()  # the old indexes mirror the old graph
        self._stats = EngineStats()
        result = self._engine.run(self._closed)
        self._stats.merge(result.stats)
        self._last_load_stats = result.stats

    # -- reading -----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Triples in the closed KB (base + inferred)."""
        return len(self._closed)

    @property
    def base_size(self) -> int:
        return len(self._base)

    @property
    def inferred_size(self) -> int:
        return len(self._closed) - len(self._base)

    @property
    def graph(self) -> Graph:
        """The closed graph.  Treat as read-only; mutating it bypasses the
        base-triple bookkeeping."""
        return self._closed

    @property
    def base_graph(self) -> Graph:
        return self._base

    @property
    def last_parallel_run(self):
        """The most recent parallel :meth:`bulk_load`'s run result
        (:class:`~repro.parallel.driver.ParallelRunResult` or
        :class:`~repro.parallel.async_backend.AsyncRunResult`), ``None``
        before any parallel load.  Its ``workers`` stay resident — the
        serving tier adopts them."""
        return getattr(self, "_last_parallel_run", None)

    @property
    def last_load_stats(self) -> EngineStats:
        """Engine stats of the most recent load operation (:meth:`add`,
        :meth:`apply`, :meth:`bulk_load`, or :meth:`rebuild`)."""
        return getattr(self, "_last_load_stats", EngineStats())

    @property
    def total_stats(self) -> EngineStats:
        return self._stats

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._closed

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._closed)

    def match(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """Pattern match against the closed KB (no reasoning on read)."""
        return self._closed.match(s, p, o)

    def query(self, patterns: Iterable[Atom]) -> Iterator[Bindings]:
        """Run a BGP query against the closed KB."""
        return BGPQuery(list(patterns)).execute(self._closed)

    def ask(self, patterns: Iterable[Atom]) -> bool:
        return BGPQuery(list(patterns)).ask(self._closed)

    def id_index(self, store: str = "dense") -> IdIndex:
        """An id-native vectorized query index over the closed KB
        (:mod:`repro.rdf.idquery`) — the fast read path for repeated
        queries.  Cached per store kind; the index keys on the closed
        graph's version counter, so the first query after an
        :meth:`add`/:meth:`apply` transparently rebuilds the mirror."""
        cached = self._id_indexes.get(store)
        if cached is None:
            cached = self._id_indexes[store] = IdIndex(
                self._closed, store=store)
        return cached

    def __repr__(self) -> str:
        return (
            f"<MaterializedKB base={self.base_size} "
            f"inferred={self.inferred_size} rules={len(self.compiled.rules)}>"
        )
