"""Materialization façade: the serial reasoner the parallel system wraps.

:class:`HorstReasoner` owns a compiled rule set and materializes instance
data with either engine family:

* ``strategy="forward"`` — semi-naive bottom-up (the production path inside
  every partition);
* ``strategy="backward"`` — the Jena-style per-resource SLD driver whose
  super-linear cost profile Section VI analyzes (used by the speedup and
  performance-model experiments).

The paper's parallel algorithm "uses an existing reasoner for creating
additional tuples ... built as a wrapper over an existing reasoner"
(Section IV); this class is that existing reasoner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.datalog.backward import BackwardStats, materialize_backward
from repro.datalog.engine import EngineStats, FixpointResult
from repro.owl.compiler import CompiledRuleSet, compile_ontology
from repro.owl.vocabulary import is_schema_triple
from repro.rdf.graph import Graph

Strategy = Literal["forward", "backward"]


def split_schema(graph: Graph) -> tuple[Graph, Graph]:
    """Split a mixed KB into (schema, instance) graphs — Algorithm 1 step 1
    ("remove all the tuples involving the schema elements").

    >>> from repro.rdf import Graph, URI, Triple
    >>> from repro.owl.vocabulary import RDFS, RDF
    >>> g = Graph([
    ...     Triple(URI("ex:Student"), RDFS.subClassOf, URI("ex:Person")),
    ...     Triple(URI("ex:alice"), RDF.type, URI("ex:Student")),
    ... ])
    >>> schema, instance = split_schema(g)
    >>> len(schema), len(instance)
    (1, 1)
    """
    schema, instance = Graph(), Graph()
    for t in graph:
        (schema if is_schema_triple(t) else instance).add(t)
    return schema, instance


@dataclass
class MaterializationResult:
    """A materialized KB plus the work accounting of the run."""

    graph: Graph
    inferred_count: int
    strategy: Strategy
    engine_stats: EngineStats | None = None
    backward_stats: BackwardStats | None = None

    @property
    def work(self) -> int:
        """Machine-independent work units (see the engines' ``work``)."""
        if self.engine_stats is not None:
            return self.engine_stats.work
        if self.backward_stats is not None:
            return self.backward_stats.work
        return 0


class HorstReasoner:
    """OWL-Horst materializer for a fixed ontology.

    >>> from repro.rdf import Graph, URI, Triple
    >>> from repro.owl.vocabulary import RDFS, RDF
    >>> tbox = Graph([Triple(URI("ex:Student"), RDFS.subClassOf, URI("ex:Person"))])
    >>> data = Graph([Triple(URI("ex:alice"), RDF.type, URI("ex:Student"))])
    >>> result = HorstReasoner(tbox).materialize(data)
    >>> Triple(URI("ex:alice"), RDF.type, URI("ex:Person")) in result.graph
    True
    """

    def __init__(
        self,
        ontology: Graph,
        include_sameas_propagation: bool | str = "auto",
        split_sameas: bool = True,
        compile_rules: bool = True,
        engine: str | None = None,
        store: str | None = None,
        memory_budget_bytes: int | None = None,
    ) -> None:
        self.compiled: CompiledRuleSet = compile_ontology(
            ontology,
            include_sameas_propagation=include_sameas_propagation,
            split_sameas=split_sameas,
        )
        #: Forward strategy executes via compiled kernels by default;
        #: ``False`` pins the generic interpreter (ablation baseline).
        self.compile_rules = compile_rules
        #: Execution layer for the forward strategy: "generic" /
        #: "compiled" / "columnar"; ``None`` derives it from
        #: ``compile_rules`` (the legacy spelling).
        self.engine = engine
        #: Columnar mirror storage ("dense" / "run") and its resident-byte
        #: cap — forwarded to every engine this reasoner builds.
        self.store = store
        self.memory_budget_bytes = memory_budget_bytes

    @classmethod
    def from_dataset(cls, graph: Graph, **kwargs) -> tuple["HorstReasoner", Graph]:
        """Build a reasoner from a mixed schema+instance KB; returns
        (reasoner, instance graph)."""
        schema, instance = split_schema(graph)
        return cls(schema, **kwargs), instance

    @property
    def rules(self):
        return self.compiled.rules

    def materialize(
        self,
        data: Graph,
        strategy: Strategy = "forward",
        include_schema: bool = False,
    ) -> MaterializationResult:
        """Materialize instance data.  The input graph is not mutated.

        ``include_schema=True`` adds the saturated TBox triples to the
        output (useful when serializing a complete KB; the experiments
        compare instance-level closures and leave it off).
        """
        if strategy == "forward":
            working = data.copy()
            fp: FixpointResult = self.compiled.engine(
                compile_rules=self.compile_rules, engine=self.engine,
                store=self.store,
                memory_budget_bytes=self.memory_budget_bytes,
            ).run(working)
            out = working
            inferred = len(fp.inferred)
            result = MaterializationResult(
                graph=out,
                inferred_count=inferred,
                strategy=strategy,
                engine_stats=fp.stats,
            )
        elif strategy == "backward":
            out, stats = materialize_backward(data, self.compiled.rules)
            result = MaterializationResult(
                graph=out,
                inferred_count=len(out) - len(data),
                strategy=strategy,
                backward_stats=stats,
            )
        else:
            raise ValueError(f"unknown strategy {strategy!r}")

        if include_schema:
            result.graph.update(iter(self.compiled.schema))
        return result
