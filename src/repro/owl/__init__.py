"""OWL-Horst (pD*) reasoning on top of the datalog substrate.

The pipeline mirrors the rule-based OWL toolchain the paper targets
(Jena / OWLIM / Oracle):

1. :mod:`repro.owl.rules_horst` — the OWL-Horst entailment rules (ter Horst
   2005: the RDFS rules plus the ``rdfp`` OWL rules), expressed as
   :class:`RuleTemplate` objects that mark which body atoms are
   *schema-level*.
2. :mod:`repro.owl.compiler` — "compiling the ontology into rules": the
   TBox is saturated with the schema-level rules, then each template's
   schema atoms are bound against the saturated TBox, leaving instance-level
   residual rules.  The residuals are zero-join or single-join — the class
   of rules the paper's data-partitioning argument needs — with the sameAs
   propagation rule as the documented single exception.
3. :class:`repro.owl.reasoner.HorstReasoner` — the materialization façade:
   compile once, then materialize instance data forward (semi-naive) or
   backward (Jena-style per-resource queries).
"""

from repro.owl.vocabulary import RDF, RDFS, OWL
from repro.owl.rules_horst import (
    RuleTemplate,
    HORST_TEMPLATES,
    SCHEMA_RULES,
    horst_raw_rules,
)
from repro.owl.compiler import CompiledRuleSet, compile_ontology, saturate_schema
from repro.owl.reasoner import HorstReasoner, split_schema
from repro.owl.kb import MaterializedKB

__all__ = [
    "RDF",
    "RDFS",
    "OWL",
    "RuleTemplate",
    "HORST_TEMPLATES",
    "SCHEMA_RULES",
    "horst_raw_rules",
    "CompiledRuleSet",
    "compile_ontology",
    "saturate_schema",
    "HorstReasoner",
    "split_schema",
    "MaterializedKB",
]
