"""The OWL-Horst (pD*) rule set as schema-annotated templates.

Source: H. J. ter Horst, *Combining RDF and part of OWL with rules:
semantics, decidability, complexity* (ISWC 2005) — reference [6] of the
paper.  Rule names follow ter Horst's ``rdfs*`` / ``rdfp*`` numbering.

Each :class:`RuleTemplate` wraps a datalog :class:`Rule` and marks which
body atoms are **schema atoms** — atoms that the compiler binds against the
(saturated) TBox at compile time, in the spirit of "the OWL ontology
definitions are first compiled into a set of rules" (paper, Section I).
After binding, every residual instance rule here is zero-join or
single-join, with one exception the paper calls out: full sameAs
propagation (rdfp11) has a 3-atom body.  The module exposes both the
faithful rdfp11 and its standard single-join split (rdfp11a/rdfp11b), and
the compiler chooses per the caller's partitioning needs.

Omissions relative to ter Horst's full table, and why:

* rdf1/rdfs4a/4b/6/8/10/12/13 (axiomatic typing: everything is a Resource,
  every predicate is a Property, reflexive subClassOf/subPropertyOf) —
  these inflate every KB with |nodes| bookkeeping triples while never
  interacting with the partitioning questions the paper studies; OWLIM and
  Jena's default OWL ruleset make the same cut ("partial RDFS").
* rdfp5a/5b (everything is an owl:Thing) — same reason.
* rdf2-D/rdfs1-D datatype rules — no typed-literal reasoning in any of the
  paper's benchmarks.
* owl:intersectionOf/unionOf list rules (rdfp17+ in some presentations) —
  not part of ter Horst's pD* core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.ast import Atom, Rule
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf.terms import Variable

__all__ = ["RuleTemplate", "HORST_TEMPLATES", "SCHEMA_RULES", "horst_raw_rules"]


@dataclass(frozen=True)
class RuleTemplate:
    """A Horst rule plus the indices of its schema-level body atoms."""

    rule: Rule
    schema_positions: tuple[int, ...] = ()

    @property
    def name(self) -> str:
        return self.rule.name

    def instance_body(self) -> tuple[Atom, ...]:
        """The non-schema body atoms, in body order."""
        return tuple(
            a
            for i, a in enumerate(self.rule.body)
            if i not in self.schema_positions
        )


# Shared variables for readability.
_S, _P, _O, _Q, _R = (Variable(n) for n in ("s", "p", "o", "q", "r"))
_C, _D, _E, _V = (Variable(n) for n in ("c", "d", "e", "v"))
_X, _Y, _Z = (Variable(n) for n in ("x", "y", "z"))


def _t(name: str, body: list[tuple], head: tuple, schema: tuple[int, ...] = ()) -> RuleTemplate:
    rule = Rule(name, [Atom(*a) for a in body], Atom(*head))
    return RuleTemplate(rule, schema)


#: Instance-level templates: compiled against the TBox to yield the rule
#: set each partition runs.  ``schema`` indices are 0-based body positions.
HORST_TEMPLATES: tuple[RuleTemplate, ...] = (
    # --- RDFS instance rules ------------------------------------------------
    _t("rdfs2",
       [(_P, RDFS.domain, _C), (_S, _P, _O)],
       (_S, RDF.type, _C), schema=(0,)),
    _t("rdfs3",
       [(_P, RDFS.range, _C), (_S, _P, _O)],
       (_O, RDF.type, _C), schema=(0,)),
    _t("rdfs7",
       [(_P, RDFS.subPropertyOf, _Q), (_S, _P, _O)],
       (_S, _Q, _O), schema=(0,)),
    _t("rdfs9",
       [(_C, RDFS.subClassOf, _D), (_S, RDF.type, _C)],
       (_S, RDF.type, _D), schema=(0,)),
    # --- OWL property-characteristic rules ----------------------------------
    _t("rdfp1",
       [(_P, RDF.type, OWL.FunctionalProperty), (_S, _P, _X), (_S, _P, _Y)],
       (_X, OWL.sameAs, _Y), schema=(0,)),
    _t("rdfp2",
       [(_P, RDF.type, OWL.InverseFunctionalProperty), (_X, _P, _O), (_Y, _P, _O)],
       (_X, OWL.sameAs, _Y), schema=(0,)),
    _t("rdfp3",
       [(_P, RDF.type, OWL.SymmetricProperty), (_S, _P, _O)],
       (_O, _P, _S), schema=(0,)),
    _t("rdfp4",
       [(_P, RDF.type, OWL.TransitiveProperty), (_S, _P, _O), (_O, _P, _V)],
       (_S, _P, _V), schema=(0,)),
    _t("rdfp8a",
       [(_P, OWL.inverseOf, _Q), (_S, _P, _O)],
       (_O, _Q, _S), schema=(0,)),
    _t("rdfp8b",
       [(_P, OWL.inverseOf, _Q), (_S, _Q, _O)],
       (_O, _P, _S), schema=(0,)),
    # --- sameAs equality theory ----------------------------------------------
    _t("rdfp6", [(_X, OWL.sameAs, _Y)], (_Y, OWL.sameAs, _X)),
    _t("rdfp7",
       [(_X, OWL.sameAs, _Y), (_Y, OWL.sameAs, _Z)],
       (_X, OWL.sameAs, _Z)),
    # --- restriction rules ----------------------------------------------------
    _t("rdfp14a",
       [(_R, OWL.hasValue, _V), (_R, OWL.onProperty, _P), (_S, _P, _V)],
       (_S, RDF.type, _R), schema=(0, 1)),
    _t("rdfp14b",
       [(_R, OWL.hasValue, _V), (_R, OWL.onProperty, _P), (_S, RDF.type, _R)],
       (_S, _P, _V), schema=(0, 1)),
    _t("rdfp15",
       [(_R, OWL.someValuesFrom, _D), (_R, OWL.onProperty, _P),
        (_S, _P, _O), (_O, RDF.type, _D)],
       (_S, RDF.type, _R), schema=(0, 1)),
    _t("rdfp16",
       [(_R, OWL.allValuesFrom, _D), (_R, OWL.onProperty, _P),
        (_S, RDF.type, _R), (_S, _P, _O)],
       (_O, RDF.type, _D), schema=(0, 1)),
)

#: The faithful sameAs-propagation rule — the "all but one" exception of
#: Section II: three body atoms, a multi-join.
RDFP11 = _t("rdfp11",
            [(_S, OWL.sameAs, _X), (_O, OWL.sameAs, _Y), (_S, _P, _O)],
            (_X, _P, _Y))

#: Standard single-join split of rdfp11.  Together with rdfp6/rdfp7 (sameAs
#: symmetry/transitivity, which pD* includes anyway) the split computes the
#: same closure as rdfp11: propagate subject-side and object-side equality
#: separately, then compose.
RDFP11_SPLIT = (
    _t("rdfp11a", [(_S, OWL.sameAs, _X), (_S, _P, _O)], (_X, _P, _O)),
    _t("rdfp11b", [(_O, OWL.sameAs, _Y), (_S, _P, _O)], (_S, _P, _Y)),
)

#: Schema-closure rules, run over the TBox alone during compilation
#: ("saturate the schema"): class/property hierarchy transitivity and the
#: equivalence <-> mutual-subsumption bridges.
SCHEMA_RULES: tuple[Rule, ...] = tuple(
    t.rule
    for t in (
        _t("rdfs5",
           [(_P, RDFS.subPropertyOf, _Q), (_Q, RDFS.subPropertyOf, _R)],
           (_P, RDFS.subPropertyOf, _R)),
        _t("rdfs11",
           [(_C, RDFS.subClassOf, _D), (_D, RDFS.subClassOf, _E)],
           (_C, RDFS.subClassOf, _E)),
        _t("rdfp12a", [(_C, OWL.equivalentClass, _D)], (_C, RDFS.subClassOf, _D)),
        _t("rdfp12b", [(_C, OWL.equivalentClass, _D)], (_D, RDFS.subClassOf, _C)),
        _t("rdfp12c",
           [(_C, RDFS.subClassOf, _D), (_D, RDFS.subClassOf, _C)],
           (_C, OWL.equivalentClass, _D)),
        _t("rdfp13a", [(_P, OWL.equivalentProperty, _Q)], (_P, RDFS.subPropertyOf, _Q)),
        _t("rdfp13b", [(_P, OWL.equivalentProperty, _Q)], (_Q, RDFS.subPropertyOf, _P)),
        _t("rdfp13c",
           [(_P, RDFS.subPropertyOf, _Q), (_Q, RDFS.subPropertyOf, _P)],
           (_P, OWL.equivalentProperty, _Q)),
        # Sub-property/sub-class knowledge propagates domain/range:
        # inherited at schema level so instance rules see the closure.
        _t("dom-sp",
           [(_P, RDFS.subPropertyOf, _Q), (_Q, RDFS.domain, _C)],
           (_P, RDFS.domain, _C)),
        _t("range-sp",
           [(_P, RDFS.subPropertyOf, _Q), (_Q, RDFS.range, _C)],
           (_P, RDFS.range, _C)),
    )
)


def horst_raw_rules(include_sameas_propagation: bool = True,
                    split_sameas: bool = False) -> list[Rule]:
    """The *uncompiled* Horst rule set as plain datalog rules (schema atoms
    still in the bodies).  Used by tests, by the rule-partitioning path when
    no ontology is supplied, and as documentation of the full set.
    """
    templates = list(HORST_TEMPLATES)
    if include_sameas_propagation:
        templates.extend(RDFP11_SPLIT if split_sameas else (RDFP11,))
    return [t.rule for t in templates] + list(SCHEMA_RULES)
