"""Setup shim: the environment has setuptools but no `wheel` package, so
PEP 517 editable installs fail; this enables the legacy `setup.py develop`
path (`pip install -e . --no-build-isolation`). Metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
