"""Bytes-on-wire benches for the id-encoded wire protocol (DESIGN.md §7).

The same lock-step schedule runs twice over identical traffic — once with
term-level :class:`TupleBatch` messages, once with id-encoded
:class:`EncodedBatch` messages — and three wire formats are priced on it:

* N-Triples text (the paper's shared-file scheme),
* pickled ``Triple`` tuples (the obvious ``mp.Queue`` baseline),
* flat int64 rows plus once-per-peer delta dictionaries.

The headline assertion is the acceptance criterion: the id-encoded format
moves at least 5x fewer bytes than either baseline.  Results are also
written as JSON (``BENCH_COMM_JSON`` env var, else into the test tmpdir)
so CI can archive the trend as an artifact.
"""

import json
import os
import pickle
from pathlib import Path

from repro.parallel import InMemoryComm, ParallelReasoner
from repro.partitioning.policies import GraphPartitioningPolicy

K = 4


class _PickleMeter(InMemoryComm):
    """InMemoryComm that additionally prices each batch as a pickled list
    of Triple objects — what a naive ``mp.Queue`` transport would ship."""

    def __init__(self, k):
        super().__init__(k)
        self.pickled_bytes = 0

    def send(self, batch):
        self.pickled_bytes += len(
            pickle.dumps(batch.triples, protocol=pickle.HIGHEST_PROTOCOL)
        )
        super().send(batch)


def _run(dataset, *, encode_wire, comm):
    reasoner = ParallelReasoner(
        dataset.ontology, k=K, approach="data",
        policy=GraphPartitioningPolicy(seed=0), strategy="forward",
        comm=comm, encode_wire=encode_wire,
    )
    return reasoner.materialize(dataset.data)


def _results_path(tmp_path: Path) -> Path:
    override = os.environ.get("BENCH_COMM_JSON")
    return Path(override) if override else tmp_path / "bench_comm_results.json"


def test_bench_wire_format_reduction(lubm_tiny, tmp_path, benchmark):
    plain_comm = _PickleMeter(K)
    plain = _run(lubm_tiny, encode_wire=False, comm=plain_comm)

    encoded_comm = InMemoryComm(K)
    encoded = benchmark.pedantic(
        _run, args=(lubm_tiny,),
        kwargs={"encode_wire": True, "comm": encoded_comm},
        rounds=1, iterations=1,
    )

    # Identical traffic: same fixpoint, same communicated-tuple total.
    assert encoded.graph == plain.graph
    assert (
        encoded.stats.total_tuples_communicated()
        == plain.stats.total_tuples_communicated()
    )

    ntriples_bytes = plain_comm.stats.payload_bytes
    pickled_bytes = plain_comm.pickled_bytes
    encoded_bytes = encoded_comm.stats.payload_bytes
    assert encoded_bytes > 0

    results = {
        "dataset": "lubm_tiny",
        "k": K,
        "tuples_communicated": encoded.stats.total_tuples_communicated(),
        "batches": {
            "ntriples": plain_comm.stats.messages,
            "encoded": encoded_comm.stats.messages,
        },
        "bytes_on_wire": {
            "ntriples": ntriples_bytes,
            "pickled_triples": pickled_bytes,
            "encoded": encoded_bytes,
        },
        "reduction": {
            "vs_ntriples": round(ntriples_bytes / encoded_bytes, 2),
            "vs_pickled": round(pickled_bytes / encoded_bytes, 2),
        },
    }
    path = _results_path(tmp_path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    benchmark.extra_info.update(results["reduction"])

    # The acceptance bar: >= 5x fewer bytes than either term-level format.
    assert ntriples_bytes >= 5 * encoded_bytes, results
    assert pickled_bytes >= 5 * encoded_bytes, results


def test_bench_payload_bytes_is_constant_time(lubm_tiny):
    """payload_bytes() must be O(1): cost models and the async master call
    it per relay.  Both message types cache — the second query costs a
    field read, not a re-serialization, which this guards structurally
    (cache hit) rather than with a flaky timing threshold."""
    from repro.parallel.messages import EncodedBatch, TupleBatch
    from repro.rdf import Triple, URI

    triples = [
        Triple(URI(f"ex:s{i}"), URI("ex:p"), URI(f"ex:o{i}")) for i in range(64)
    ]
    tb = TupleBatch.make(0, 1, 0, triples)
    tb.payload_bytes()
    assert tb._serialized is not None  # cached after first query
    assert tb.serialize() is tb.serialize()

    eb = EncodedBatch.make(0, 1, 0, [(i, 0, i + 1) for i in range(64)])
    assert eb.payload_bytes() == eb._payload_bytes  # fixed at construction
