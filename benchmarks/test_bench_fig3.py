"""Bench for Fig 3: measured vs theoretical-max speedup (LUBM).

Fits the work-unit cubic from a size sweep and checks the measured
work-speedup stays below (and within sight of) the model's ideal.
"""

from repro.experiments.common import speedup_series
from repro.partitioning.policies import GraphPartitioningPolicy
from repro.perfmodel import PerformancePoint, fit_cubic, theoretical_max_speedup
from repro.datasets import LUBM
from repro.owl import HorstReasoner

_PROFILE = dict(departments_per_university=1, faculty_per_department=2,
                students_per_faculty=3)


def _sweep_and_compare(k=4):
    points = []
    for universities in (1, 2, 3, 4):
        ds = LUBM(universities, seed=0, **_PROFILE)
        res = HorstReasoner(ds.ontology).materialize(ds.data, strategy="backward")
        points.append(
            PerformancePoint(size=len(ds.data.resources()), time=res.work)
        )
    model = fit_cubic(points)

    dataset = LUBM(4, seed=0, **_PROFILE)
    measured = speedup_series(
        dataset, ks=(1, k), approach="data",
        policy_factory=lambda: GraphPartitioningPolicy(seed=0),
        strategy="backward",
    )[-1]
    theory = theoretical_max_speedup(
        model, len(dataset.data.resources()), k
    )
    return measured, theory, model


def test_bench_fig3(benchmark):
    measured, theory, model = benchmark.pedantic(
        _sweep_and_compare, rounds=1, iterations=1
    )
    benchmark.extra_info["measured_work_speedup"] = round(measured.work_speedup, 2)
    benchmark.extra_info["theoretical_max"] = round(theory, 2)
    benchmark.extra_info["r_squared"] = round(model.r_squared, 4)
    # Paper shape: measured below the replication-free, perfectly balanced
    # ideal, but within a small factor of it.
    assert measured.work_speedup <= theory * 1.05
    assert measured.work_speedup > theory / 8
