"""Ablation benches for the parallel runtime: routing strategies, sync vs
async rounds, and communication cost models (DESIGN.md §5)."""

from repro.parallel import (
    BroadcastRouter,
    CostModel,
    ParallelReasoner,
    SimulatedCluster,
)
from repro.partitioning.policies import GraphPartitioningPolicy

K = 4


def _run(dataset, mode="sync", cost_model=None):
    reasoner = ParallelReasoner(
        dataset.ontology, k=K, approach="data",
        policy=GraphPartitioningPolicy(seed=0), strategy="forward",
    )
    sim = SimulatedCluster(
        reasoner,
        cost_model if cost_model is not None else CostModel.file_ipc(),
        mode=mode,
    )
    return sim.run(dataset.data)


def test_bench_sync_rounds(benchmark, lubm_tiny):
    run = benchmark.pedantic(_run, args=(lubm_tiny, "sync"), rounds=1,
                             iterations=1)
    benchmark.extra_info["makespan"] = round(run.makespan, 4)


def test_bench_async_rounds(benchmark, lubm_tiny):
    run = benchmark.pedantic(_run, args=(lubm_tiny, "async"), rounds=1,
                             iterations=1)
    benchmark.extra_info["makespan"] = round(run.makespan, 4)


def test_ablation_async_no_slower_than_sync(lubm_tiny):
    """Section VI-B's proposed improvement: dropping the barrier can only
    help the modeled makespan.  Both timelines are reconstructed from the
    same measured run."""
    reasoner = ParallelReasoner(
        lubm_tiny.ontology, k=K, approach="data",
        policy=GraphPartitioningPolicy(seed=0), strategy="forward",
    )
    result = reasoner.materialize(lubm_tiny.data)
    cm = CostModel.file_ipc()
    sync = SimulatedCluster(reasoner, cm, mode="sync").reconstruct(result)
    async_ = SimulatedCluster(reasoner, cm, mode="async").reconstruct(result)
    assert async_.makespan <= sync.makespan + 1e-9


def test_ablation_mpi_beats_file_ipc(lubm_tiny):
    """Section VI-B's other improvement: MPI-like transport shrinks the
    communication share relative to the paper's shared-file scheme."""
    file_run = _run(lubm_tiny, cost_model=CostModel.file_ipc())
    mpi_run = _run(lubm_tiny, cost_model=CostModel.mpi())
    assert max(mpi_run.per_node_io) < max(file_run.per_node_io)
    assert mpi_run.makespan <= file_run.makespan


def test_ablation_owner_routing_beats_broadcast(lubm_tiny):
    """Owner-table routing sends each fresh tuple to <= 2 partitions;
    broadcast sends it to k-1.  Compare communicated-tuple totals."""
    from repro.owl.compiler import compile_ontology
    from repro.parallel.routing import DataPartitionRouter
    from repro.partitioning import partition_data

    crs = compile_ontology(lubm_tiny.ontology)
    dp = partition_data(lubm_tiny.data, GraphPartitioningPolicy(seed=0), K)
    owner_router = DataPartitionRouter(
        dp.owner, vocabulary=frozenset(dp.vocabulary)
    )
    broadcast = BroadcastRouter(K)

    sample = [t for i, t in enumerate(lubm_tiny.data) if i % 5 == 0]
    owner_total = sum(len(owner_router.destinations(0, t)) for t in sample)
    broadcast_total = sum(len(broadcast.destinations(0, t)) for t in sample)
    assert owner_total < broadcast_total / 2
