"""Shared benchmark fixtures.

Benchmarks run the same code paths as the experiment harness at the
``tiny`` scale (the CLI regenerates the paper-scale rows; these keep the
regression signal cheap).  Heavy end-to-end benches use
``benchmark.pedantic(rounds=1)`` — their interesting output is the shape
of the result, not nanosecond stability.
"""

from __future__ import annotations

import pytest

from repro.datasets import LUBM, MDC, UOBM
from repro.experiments.common import SCALES


@pytest.fixture(scope="session")
def tiny_scale():
    return SCALES["tiny"]


@pytest.fixture(scope="session")
def lubm_tiny():
    return LUBM(4, seed=0, departments_per_university=1,
                faculty_per_department=2, students_per_faculty=3)


@pytest.fixture(scope="session")
def uobm_tiny():
    return UOBM(3, seed=0, departments_per_university=1,
                faculty_per_department=2, students_per_faculty=3)


@pytest.fixture(scope="session")
def mdc_tiny():
    return MDC(4, seed=0, wells_per_field=3, hierarchy_depth=5)
