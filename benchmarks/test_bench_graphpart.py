"""Ablation benches for the multilevel partitioner: refinement on/off."""

import numpy as np
import pytest

from repro.graphpart import CSRGraph, MultilevelPartitioner
from repro.util.seeding import rng_for


@pytest.fixture(scope="module")
def clustered_graph():
    """Four clusters of 150 vertices with sparse cross-links."""
    rng = rng_for(7, "bench-graph")
    edges = []
    for c in range(4):
        base = c * 150
        for _ in range(900):
            edges.append((base + rng.randrange(150), base + rng.randrange(150)))
    for _ in range(60):
        edges.append((rng.randrange(600), rng.randrange(600)))
    return CSRGraph.from_edges(600, np.asarray(edges, dtype=np.int64))


def test_bench_partition_with_refinement(benchmark, clustered_graph):
    report = benchmark(
        lambda: MultilevelPartitioner(k=4, seed=1, refinement=True).partition(
            clustered_graph
        )
    )
    benchmark.extra_info["edge_cut"] = report.edge_cut
    benchmark.extra_info["balance"] = round(report.balance, 3)
    assert report.balance < 1.2


def test_bench_partition_without_refinement(benchmark, clustered_graph):
    report = benchmark(
        lambda: MultilevelPartitioner(k=4, seed=1, refinement=False).partition(
            clustered_graph
        )
    )
    benchmark.extra_info["edge_cut"] = report.edge_cut


def test_ablation_refinement_improves_cut(clustered_graph):
    with_ref = MultilevelPartitioner(k=4, seed=1, refinement=True).partition(
        clustered_graph
    )
    without = MultilevelPartitioner(k=4, seed=1, refinement=False).partition(
        clustered_graph
    )
    assert with_ref.edge_cut <= without.edge_cut
