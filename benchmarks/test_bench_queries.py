"""Benches for the query layer: LUBM query latency on a materialized KB,
the id-native vectorized engine's acceptance gate, and the intro's
trade-off — materialize-once-query-often vs reason-at-query-time.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.datalog.backward import BackwardEngine
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl import HorstReasoner, MaterializedKB
from repro.rdf import Graph
from repro.rdf.query import BGPQuery


@pytest.fixture(scope="module")
def lubm_kb(lubm_tiny):
    kb = MaterializedKB(lubm_tiny.ontology)
    kb.add(iter(lubm_tiny.data))
    return kb


def test_bench_lubm_query_battery_materialized(benchmark, lubm_kb):
    def run_all():
        return [len(q.rows(lubm_kb.graph)) for q in LUBM_QUERIES]

    counts = benchmark(run_all)
    assert sum(counts) > 0


@pytest.mark.parametrize("qname", ["Q6", "Q9", "Q12"])
def test_bench_lubm_single_query(benchmark, lubm_kb, qname):
    query = next(q for q in LUBM_QUERIES if q.name == qname)
    parsed = query.parse()
    rows = benchmark(lambda: parsed.select(lubm_kb.graph))
    benchmark.extra_info["rows"] = len(rows)


def test_ablation_id_native_battery_beats_term_engine(tmp_path):
    """Acceptance gate for the id-native vectorized query engine
    (``repro.rdf.idquery``): >= 3x faster than the term-level
    :class:`BGPQuery` on the full 14-query LUBM battery over an LUBM(8)
    closure, with identical answers.

    Both sides answer from the same materialized KB: the term engine
    runs index-nested-loop joins on the term graph, the id engine runs
    batch probes on the KB's cached :meth:`~MaterializedKB.id_index`
    mirror (built on the first battery run, warm thereafter — the
    serving regime; its one-time build cost is recorded, not gated).
    Best-of-3 per side damps scheduler noise.  Observed gap is ~50x,
    leaving wide margin over the 3x bar.  Records the battery numbers
    in the ``idquery`` section of ``BENCH_core.json``.
    """
    from repro.datasets import LUBM

    lubm = LUBM(8, seed=0)
    kb = MaterializedKB(lubm.ontology, engine="columnar")
    kb.bulk_load(lubm.data)
    parsed = [q.parse() for q in LUBM_QUERIES]

    def variables_of(p):
        return p.projection or tuple(
            sorted(p.bgp.variables(), key=lambda v: v.name))

    t0 = time.perf_counter()
    index = kb.id_index()
    index.current()  # build the id mirror (charged separately)
    build_seconds = time.perf_counter() - t0

    term_best = id_best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        term_rows = [p.select(kb.graph) for p in parsed]
        term_best = min(term_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        id_rows = [index.select(p.bgp, *variables_of(p)) for p in parsed]
        id_best = min(id_best, time.perf_counter() - t0)

    assert id_rows == term_rows  # bit-identical answers, query by query
    assert sum(len(r) for r in id_rows) > 0
    assert term_best >= 3 * id_best, (term_best, id_best)

    path = _core_results_path(tmp_path)
    results = json.loads(path.read_text()) if path.exists() else {}
    results["idquery"] = {
        "dataset": "LUBM(8)",
        "closure_triples": len(kb),
        "queries": len(parsed),
        "answer_rows": sum(len(r) for r in id_rows),
        "term_battery_seconds": round(term_best, 6),
        "id_battery_seconds": round(id_best, 6),
        "id_mirror_build_seconds": round(build_seconds, 6),
        "speedup": round(term_best / id_best, 2),
    }
    path.write_text(json.dumps(results, indent=2) + "\n")


def _core_results_path(tmp_path: Path) -> Path:
    override = os.environ.get("BENCH_CORE_JSON")
    return Path(override) if override else tmp_path / "bench_core_results.json"


def _query_with_reasoning(dataset, bgp: BGPQuery) -> int:
    """Reason-at-query-time: prove each pattern with the backward engine,
    then join — what a non-materialized store does per query."""
    reasoner = HorstReasoner(dataset.ontology)
    engine = BackwardEngine(dataset.data, reasoner.rules)
    proved = Graph()
    for pattern in bgp.patterns:
        for answer in engine.query(pattern):
            proved.add(answer)
    return bgp.count(proved)


def test_tradeoff_materialization_beats_per_query_reasoning(lubm_tiny, lubm_kb):
    """The paper's Section I premise, measured: once queries outnumber
    loads, the materialized KB's total cost wins.  We compare per-query
    work: index probes on the closed graph vs a full backward proof per
    query — and check the answers agree."""
    query = next(q for q in LUBM_QUERIES if q.name == "Q6")
    bgp = query.parse().bgp

    materialized_rows = bgp.count(lubm_kb.graph)
    reasoned_rows = _query_with_reasoning(lubm_tiny, bgp)
    assert materialized_rows == reasoned_rows > 0

    # Cost: on the materialized graph Q6 is one index scan; with reasoning
    # it pays a proof search over the KB.  Work units make the gap visible.
    _, stats = bgp.execute_with_stats(lubm_kb.graph)
    reasoner = HorstReasoner(lubm_tiny.ontology)
    engine = BackwardEngine(lubm_tiny.data, reasoner.rules)
    for pattern in bgp.patterns:
        engine.query(pattern)
    # (The tabled engine answers a single open pattern quite efficiently;
    # the gap is one order of magnitude here and grows with query count,
    # since the materialized cost is paid once while the proof cost is
    # paid per query.)
    assert engine.stats.work > 5 * stats.index_probes


def test_bench_query_with_reasoning(benchmark, lubm_tiny):
    query = next(q for q in LUBM_QUERIES if q.name == "Q6")
    bgp = query.parse().bgp
    rows = benchmark.pedantic(
        lambda: _query_with_reasoning(lubm_tiny, bgp), rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows
