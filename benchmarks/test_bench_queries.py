"""Benches for the query layer: LUBM query latency on a materialized KB,
and the intro's trade-off — materialize-once-query-often vs
reason-at-query-time.
"""

import pytest

from repro.datalog.backward import BackwardEngine
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl import HorstReasoner, MaterializedKB
from repro.rdf import Graph
from repro.rdf.query import BGPQuery


@pytest.fixture(scope="module")
def lubm_kb(lubm_tiny):
    kb = MaterializedKB(lubm_tiny.ontology)
    kb.add(iter(lubm_tiny.data))
    return kb


def test_bench_lubm_query_battery_materialized(benchmark, lubm_kb):
    def run_all():
        return [len(q.rows(lubm_kb.graph)) for q in LUBM_QUERIES]

    counts = benchmark(run_all)
    assert sum(counts) > 0


@pytest.mark.parametrize("qname", ["Q6", "Q9", "Q12"])
def test_bench_lubm_single_query(benchmark, lubm_kb, qname):
    query = next(q for q in LUBM_QUERIES if q.name == qname)
    parsed = query.parse()
    rows = benchmark(lambda: parsed.select(lubm_kb.graph))
    benchmark.extra_info["rows"] = len(rows)


def _query_with_reasoning(dataset, bgp: BGPQuery) -> int:
    """Reason-at-query-time: prove each pattern with the backward engine,
    then join — what a non-materialized store does per query."""
    reasoner = HorstReasoner(dataset.ontology)
    engine = BackwardEngine(dataset.data, reasoner.rules)
    proved = Graph()
    for pattern in bgp.patterns:
        for answer in engine.query(pattern):
            proved.add(answer)
    return bgp.count(proved)


def test_tradeoff_materialization_beats_per_query_reasoning(lubm_tiny, lubm_kb):
    """The paper's Section I premise, measured: once queries outnumber
    loads, the materialized KB's total cost wins.  We compare per-query
    work: index probes on the closed graph vs a full backward proof per
    query — and check the answers agree."""
    query = next(q for q in LUBM_QUERIES if q.name == "Q6")
    bgp = query.parse().bgp

    materialized_rows = bgp.count(lubm_kb.graph)
    reasoned_rows = _query_with_reasoning(lubm_tiny, bgp)
    assert materialized_rows == reasoned_rows > 0

    # Cost: on the materialized graph Q6 is one index scan; with reasoning
    # it pays a proof search over the KB.  Work units make the gap visible.
    _, stats = bgp.execute_with_stats(lubm_kb.graph)
    reasoner = HorstReasoner(lubm_tiny.ontology)
    engine = BackwardEngine(lubm_tiny.data, reasoner.rules)
    for pattern in bgp.patterns:
        engine.query(pattern)
    # (The tabled engine answers a single open pattern quite efficiently;
    # the gap is one order of magnitude here and grows with query count,
    # since the materialized cost is paid once while the proof cost is
    # paid per query.)
    assert engine.stats.work > 5 * stats.index_probes


def test_bench_query_with_reasoning(benchmark, lubm_tiny):
    query = next(q for q in LUBM_QUERIES if q.name == "Q6")
    bgp = query.parse().bgp
    rows = benchmark.pedantic(
        lambda: _query_with_reasoning(lubm_tiny, bgp), rounds=1, iterations=1
    )
    benchmark.extra_info["rows"] = rows
