"""Bench for Fig 4: the serial size sweep and cubic regression."""

from repro.datasets import LUBM
from repro.owl import HorstReasoner
from repro.perfmodel import PerformancePoint, fit_cubic

_PROFILE = dict(departments_per_university=1, faculty_per_department=2,
                students_per_faculty=3)
_SIZES = (1, 2, 3, 4, 5)


def _sweep():
    points = []
    for universities in _SIZES:
        ds = LUBM(universities, seed=0, **_PROFILE)
        res = HorstReasoner(ds.ontology).materialize(ds.data, strategy="backward")
        points.append(
            PerformancePoint(size=len(ds.data.resources()), time=res.work,
                             label=f"LUBM-{universities}")
        )
    return points


def test_bench_fig4_sweep_and_fit(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    model = fit_cubic(points)
    benchmark.extra_info["model"] = model.describe()
    # Paper shape: an excellent polynomial fit...
    assert model.r_squared > 0.99
    # ...that is super-linear over the measured range (the Fig 1/3 driver):
    first, last = points[0], points[-1]
    growth = (last.time / first.time) / (last.size / first.size)
    benchmark.extra_info["superlinearity"] = round(growth, 2)
    assert growth > 1.1


def test_fig4_fit_is_stable_under_seed():
    pts_a = _sweep()
    model_a = fit_cubic(pts_a)
    model_b = fit_cubic(_sweep())
    # Work units are deterministic: identical fits run to run.
    assert model_a.coefficients == model_b.coefficients
