"""Micro-benches for the substrate hot paths: store insert/match, N-Triples
round-trip, and rule compilation."""

from repro.datasets.lubm import lubm_ontology
from repro.owl.compiler import compile_ontology
from repro.rdf import Graph, URI, parse_ntriples, serialize_ntriples


def _make_trizzle(n):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:s{i % 97}"), URI(f"ex:p{i % 7}"), URI(f"ex:o{i}"))
    return g


def test_bench_graph_insert(benchmark):
    g = benchmark(_make_trizzle, 2000)
    assert len(g) == 2000


def test_bench_graph_match_bound_predicate(benchmark):
    g = _make_trizzle(2000)
    p = URI("ex:p3")
    count = benchmark(lambda: sum(1 for _ in g.match(None, p, None)))
    assert count > 0


def test_bench_graph_match_bound_subject(benchmark):
    g = _make_trizzle(2000)
    s = URI("ex:s13")
    count = benchmark(lambda: sum(1 for _ in g.match(s, None, None)))
    assert count > 0


def test_bench_ntriples_round_trip(benchmark):
    g = _make_trizzle(1000)

    def round_trip():
        return Graph(parse_ntriples(serialize_ntriples(g)))

    restored = benchmark(round_trip)
    assert restored == g


def test_bench_compile_lubm_ontology(benchmark):
    tbox = lubm_ontology()
    crs = benchmark(lambda: compile_ontology(tbox))
    assert len(crs.rules) > 30


def _interleaved_store_workload(tail_threshold, rounds=100):
    """Alternate small inserts with multi-order probes — the shape the
    semi-naive fixpoint presents to the id store (every round appends a
    delta, then every kernel probes it).  Returns (seconds, total hits)
    so the ablation can assert identical results alongside the timing."""
    import time

    import numpy as np

    from repro.rdf.idstore import IdGraph

    rng = np.random.default_rng(5)
    store = IdGraph(tail_threshold=tail_threshold)
    t0 = time.perf_counter()
    hits = 0
    for _ in range(rounds):
        store.add_rows(
            rng.integers(0, 50_000, 64),
            rng.integers(0, 30, 64),
            rng.integers(0, 50_000, 64),
        )
        for positions in ((0,), (1, 2), (0, 1)):
            query = tuple(
                rng.integers(0, 30 if pos == 1 else 50_000, 512)
                for pos in positions
            )
            values, _reps = store.probe(positions, query)
            hits += len(values[0])
    return time.perf_counter() - t0, hits


def test_bench_idgraph_interleaved_adaptive(benchmark):
    _seconds, hits = benchmark(_interleaved_store_workload, None)
    assert hits > 0


def test_bench_idgraph_interleaved_always_rebuild(benchmark):
    _seconds, hits = benchmark(_interleaved_store_workload, 0)
    assert hits > 0


def test_ablation_tail_views_beat_rebuild_per_probe():
    """Acceptance gate for the tail-aware sorted views: probing the
    unsorted pending tail separately (rebuilding the merged view only
    past the adaptive threshold) must beat rebuilding on every probe
    after an insert — the thrash the fixpoint's insert/probe cadence
    used to hit — while returning bit-identical probe results.
    Observed gap is ~1.8x; best-of-3 and a plain < keep the gate wide.
    """
    adaptive_best = rebuild_best = float("inf")
    for _ in range(3):
        seconds, adaptive_hits = _interleaved_store_workload(None)
        adaptive_best = min(adaptive_best, seconds)
        seconds, rebuild_hits = _interleaved_store_workload(0)
        rebuild_best = min(rebuild_best, seconds)
    assert adaptive_hits == rebuild_hits
    assert adaptive_best < rebuild_best, (adaptive_best, rebuild_best)
