"""Micro-benches for the substrate hot paths: store insert/match, N-Triples
round-trip, and rule compilation."""

from repro.datasets.lubm import lubm_ontology
from repro.owl.compiler import compile_ontology
from repro.rdf import Graph, URI, parse_ntriples, serialize_ntriples


def _make_trizzle(n):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:s{i % 97}"), URI(f"ex:p{i % 7}"), URI(f"ex:o{i}"))
    return g


def test_bench_graph_insert(benchmark):
    g = benchmark(_make_trizzle, 2000)
    assert len(g) == 2000


def test_bench_graph_match_bound_predicate(benchmark):
    g = _make_trizzle(2000)
    p = URI("ex:p3")
    count = benchmark(lambda: sum(1 for _ in g.match(None, p, None)))
    assert count > 0


def test_bench_graph_match_bound_subject(benchmark):
    g = _make_trizzle(2000)
    s = URI("ex:s13")
    count = benchmark(lambda: sum(1 for _ in g.match(s, None, None)))
    assert count > 0


def test_bench_ntriples_round_trip(benchmark):
    g = _make_trizzle(1000)

    def round_trip():
        return Graph(parse_ntriples(serialize_ntriples(g)))

    restored = benchmark(round_trip)
    assert restored == g


def test_bench_compile_lubm_ontology(benchmark):
    tbox = lubm_ontology()
    crs = benchmark(lambda: compile_ontology(tbox))
    assert len(crs.rules) > 30
