"""Bench for Table I: the partitioning-metrics computation (bal/OR/IR/time)."""

from repro.parallel import ParallelReasoner
from repro.partitioning import (
    compute_data_metrics,
    output_replication,
    partition_data,
)
from repro.partitioning.policies import GraphPartitioningPolicy

K = 4


def _table_row(dataset):
    result = partition_data(dataset.data, GraphPartitioningPolicy(seed=0), K)
    metrics = compute_data_metrics(result, dataset.data)
    run = ParallelReasoner(
        dataset.ontology, k=K, approach="data",
        policy=GraphPartitioningPolicy(seed=0), strategy="forward",
    ).materialize(dataset.data)
    metrics.output_replication = output_replication(run.node_outputs)
    return metrics


def test_bench_table1(benchmark, lubm_tiny):
    metrics = benchmark.pedantic(_table_row, args=(lubm_tiny,), rounds=1,
                                 iterations=1)
    benchmark.extra_info["bal"] = round(metrics.bal, 1)
    benchmark.extra_info["IR"] = round(metrics.duplication, 3)
    benchmark.extra_info["OR"] = round(metrics.output_replication - 1, 3)
    # Paper shape for the graph policy: small replication on LUBM.
    assert metrics.duplication < 0.6
    assert metrics.output_replication - 1 < 0.6
    # OR and IR track each other (both measure the same co-location waste).
    assert abs((metrics.output_replication - 1) - metrics.duplication) < 0.5
