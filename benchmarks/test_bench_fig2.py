"""Bench for Fig 2: the reasoning/IO/sync/aggregation overhead breakdown.

Regenerates the LUBM file-IPC breakdown at two k values and asserts the
paper's shape: per-partition reasoning shrinks with k while the
communication share (IO + sync) grows.
"""

from repro.parallel import CostModel, ParallelReasoner, SimulatedCluster
from repro.partitioning.policies import GraphPartitioningPolicy


def _breakdown(dataset, k):
    reasoner = ParallelReasoner(
        dataset.ontology, k=k, approach="data",
        policy=GraphPartitioningPolicy(seed=0), strategy="backward",
    )
    run = SimulatedCluster(reasoner, CostModel.file_ipc()).run(dataset.data)
    return run.breakdown()


def test_bench_fig2_breakdown(benchmark, lubm_tiny):
    breakdown = benchmark.pedantic(
        _breakdown, args=(lubm_tiny, 4), rounds=1, iterations=1
    )
    benchmark.extra_info["reasoning_s"] = round(breakdown.reasoning, 4)
    benchmark.extra_info["io_s"] = round(breakdown.io, 4)
    benchmark.extra_info["sync_s"] = round(breakdown.sync, 4)
    assert breakdown.total > 0


def test_fig2_shape_comm_share_grows_with_k(lubm_tiny):
    b2 = _breakdown(lubm_tiny, 2)
    b4 = _breakdown(lubm_tiny, 4)
    # Reasoning per partition shrinks as partitions shrink...
    assert b4.reasoning < b2.reasoning
    # ...while the communication share of the total grows.
    share2 = (b2.io + b2.sync) / b2.total
    share4 = (b4.io + b4.sync) / b4.total
    assert share4 > share2
