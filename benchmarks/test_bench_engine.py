"""Ablation benches for the reasoning engines.

DESIGN.md §5: semi-naive vs naive evaluation, and forward vs the
(deliberately Jena-shaped, super-linear) backward materialization.
"""

import pytest

from repro.datalog import NaiveEngine, SemiNaiveEngine, parse_rules
from repro.datalog.backward import materialize_backward
from repro.owl import HorstReasoner
from repro.rdf import Graph, URI

TRANS = parse_rules("@prefix ex: <ex:>\n"
                    "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")


def _chain(n):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), URI("ex:p"), URI(f"ex:n{i + 1}"))
    return g


def test_bench_semi_naive(benchmark):
    result = benchmark(lambda: SemiNaiveEngine(TRANS).run(_chain(25)))
    benchmark.extra_info["join_probes"] = result.stats.join_probes


def test_bench_naive(benchmark):
    result = benchmark(lambda: NaiveEngine(TRANS).run(_chain(25)))
    benchmark.extra_info["join_probes"] = result.stats.join_probes


def test_ablation_semi_naive_beats_naive():
    semi = SemiNaiveEngine(TRANS).run(_chain(30))
    naive = NaiveEngine(TRANS).run(_chain(30))
    # Transitive chains converge in few rounds, so the gap is moderate
    # here; the margin widens with iteration count (see the unit test on
    # longer mixed rule sets).
    assert semi.stats.join_probes < 0.75 * naive.stats.join_probes


def test_bench_forward_materialization(benchmark, lubm_tiny):
    reasoner = HorstReasoner(lubm_tiny.ontology)
    result = benchmark.pedantic(
        lambda: reasoner.materialize(lubm_tiny.data, strategy="forward"),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["work"] = result.work


def test_bench_backward_materialization(benchmark, lubm_tiny):
    reasoner = HorstReasoner(lubm_tiny.ontology)
    result = benchmark.pedantic(
        lambda: reasoner.materialize(lubm_tiny.data, strategy="backward"),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["work"] = result.work


def test_ablation_backward_costs_more_than_forward(lubm_tiny):
    """The whole premise of the super-linear speedup: the Jena-style driver
    does far more work than bottom-up evaluation for the same closure."""
    reasoner = HorstReasoner(lubm_tiny.ontology)
    fwd = reasoner.materialize(lubm_tiny.data, strategy="forward")
    bwd = reasoner.materialize(lubm_tiny.data, strategy="backward")
    assert fwd.graph == bwd.graph
    assert bwd.work > 5 * fwd.work


def test_ablation_shared_tables_amortize(lubm_tiny):
    """share_tables=True (one engine across per-resource queries) can only
    reduce proof work.  The measured saving is small: with SCC-scoped
    completion, per-resource proof trees barely overlap — evidence that
    the materialization cost really is per-resource (the polynomial regime
    Section VI describes), not an artifact of redundant sub-proofs."""
    reasoner = HorstReasoner(lubm_tiny.ontology)
    _, fresh = materialize_backward(
        lubm_tiny.data, reasoner.rules, candidate_probing=False
    )
    _, shared = materialize_backward(
        lubm_tiny.data, reasoner.rules, share_tables=True,
        candidate_probing=False,
    )
    assert shared.goals_expanded <= fresh.goals_expanded
