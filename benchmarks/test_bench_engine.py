"""Ablation benches for the reasoning engines.

DESIGN.md §5: semi-naive vs naive evaluation, forward vs the
(deliberately Jena-shaped, super-linear) backward materialization,
compiled kernels vs the generic interpreter on a mixed Horst workload,
and the columnar id-space kernels vs the compiled term-level kernels on
LUBM (DESIGN.md §11).

The columnar gate also writes the consolidated ``BENCH_core.json``
(``BENCH_CORE_JSON`` env var, else the test tmpdir): closure
triples/sec for both engines, their (identical) join-probe counts, and
the id-native runtime's bytes-on-wire — the three headline numbers CI
archives as one artifact.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datalog import NaiveEngine, SemiNaiveEngine, parse_rules
from repro.datalog.backward import materialize_backward
from repro.datalog.columnar import ColumnarEngine
from repro.owl import HorstReasoner
from repro.rdf import Graph, URI
from repro.rdf.dictionary import TermDictionary
from repro.rdf.idstore import IdGraph
from repro.rdf.runstore import RunStore

TRANS = parse_rules("@prefix ex: <ex:>\n"
                    "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")

#: A mixed Horst-shaped workload: scan rules (subproperty/inverse-style
#: rewrites), join rules (two transitive closures), and rules over
#: predicates absent from the data (exercising predicate dispatch) — the
#: shape a compiled ontology produces, not just one transitive chain.
MIXED = parse_rules(
    "@prefix ex: <ex:>\n"
    "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
    "[inv: (?x ex:p ?y) -> (?y ex:q ?x)]"
    "[typ: (?x ex:p ?y) -> (?x ex:type ex:Thing)]"
    "[jq: (?x ex:q ?y) (?y ex:q ?z) -> (?x ex:qq ?z)]"
    "[u1: (?x ex:absent1 ?y) -> (?x ex:a1 ?y)]"
    "[u2: (?x ex:absent2 ?y) (?y ex:absent2 ?z) -> (?x ex:a2 ?z)]"
    "[u3: (?x ex:absent3 ?y) (?y ex:absent4 ?z) -> (?x ex:a3 ?z)]"
)


def _chain(n):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), URI("ex:p"), URI(f"ex:n{i + 1}"))
    return g


def _mixed_graph(n):
    """A chain plus a deterministic pseudo-random functional graph — deep
    transitive closure with branching joins."""
    g = _chain(n)
    for i in range(n):
        g.add_spo(URI(f"ex:m{i}"), URI("ex:p"), URI(f"ex:m{(i * 7) % n}"))
    return g


def test_bench_semi_naive(benchmark):
    result = benchmark(lambda: SemiNaiveEngine(TRANS).run(_chain(25)))
    benchmark.extra_info["join_probes"] = result.stats.join_probes


def test_bench_naive(benchmark):
    result = benchmark(lambda: NaiveEngine(TRANS).run(_chain(25)))
    benchmark.extra_info["join_probes"] = result.stats.join_probes


def test_ablation_semi_naive_beats_naive():
    semi = SemiNaiveEngine(TRANS).run(_chain(30))
    naive = NaiveEngine(TRANS).run(_chain(30))
    # Transitive chains converge in few rounds, so the gap is moderate
    # here; the margin widens with iteration count (see the unit test on
    # longer mixed rule sets).
    assert semi.stats.join_probes < 0.75 * naive.stats.join_probes


def test_bench_compiled_mixed(benchmark):
    result = benchmark(
        lambda: SemiNaiveEngine(MIXED).run(_mixed_graph(40))
    )
    benchmark.extra_info["join_probes"] = result.stats.join_probes
    benchmark.extra_info["rules_skipped"] = result.stats.rules_skipped


def test_bench_generic_mixed(benchmark):
    result = benchmark(
        lambda: SemiNaiveEngine(MIXED, compile_rules=False).run(_mixed_graph(40))
    )
    benchmark.extra_info["join_probes"] = result.stats.join_probes
    benchmark.extra_info["rules_skipped"] = result.stats.rules_skipped


def test_ablation_compiled_beats_generic():
    """Acceptance gate for the compiled kernels: identical fixpoint,
    strictly fewer join probes, and lower wall-clock than the generic
    interpreter on the mixed workload (best-of-3 to damp scheduler noise;
    the observed gap is ~4x, so a plain < comparison has wide margin)."""
    compiled_best, generic_best = float("inf"), float("inf")
    for _ in range(3):
        g1, g2 = _mixed_graph(40), _mixed_graph(40)
        t0 = time.perf_counter()
        compiled = SemiNaiveEngine(MIXED).run(g1)
        t1 = time.perf_counter()
        generic = SemiNaiveEngine(MIXED, compile_rules=False).run(g2)
        t2 = time.perf_counter()
        compiled_best = min(compiled_best, t1 - t0)
        generic_best = min(generic_best, t2 - t1)
        assert g1 == g2
    assert compiled.stats.join_probes < generic.stats.join_probes
    assert compiled.stats.rules_skipped > 0
    assert compiled_best < generic_best


def _encode_graph(graph, dictionary):
    """Bulk-encode a term graph into a fresh :class:`IdGraph` — the same
    ingest the id-native workers perform on their partitions."""
    enc = dictionary.encode
    s_list, p_list, o_list = [], [], []
    for s, p, o in graph.spo_items():
        s_list.append(enc(s))
        p_list.append(enc(p))
        o_list.append(enc(o))
    store = IdGraph(capacity=len(s_list))
    store.add_rows(
        np.asarray(s_list, dtype=np.int64),
        np.asarray(p_list, dtype=np.int64),
        np.asarray(o_list, dtype=np.int64),
    )
    return store


def _core_results_path(tmp_path: Path) -> Path:
    override = os.environ.get("BENCH_CORE_JSON")
    return Path(override) if override else tmp_path / "bench_core_results.json"


def test_ablation_columnar_beats_compiled(tmp_path):
    """Acceptance gate for the id-native columnar engine (DESIGN.md §11):
    >= 2x faster than the compiled term-level kernels to the same LUBM
    closure, with identical join-probe accounting.

    Each engine is timed in its *native* representation — the compiled
    engine materializes term triples into the indexed Graph, the columnar
    engine ingests int64 rows and runs the id-space fixpoint.  That is
    the comparison the parallel runtime actually faces: id-native workers
    consume EncodedBatch rows and decode to terms only at output gather,
    so term materialization is never on their closure path.  Encoding the
    input is charged to the columnar side (its ingest step); best-of-3 on
    both sides damps scheduler noise.  Observed gap is ~2.5x, leaving
    margin over the 2x bar.
    """
    from repro.datasets import LUBM

    lubm = LUBM(8, seed=0)
    base = lubm.data.copy()
    base.update(lubm.ontology)
    rules = HorstReasoner(lubm.ontology).rules

    compiled_best = columnar_best = float("inf")
    for _ in range(3):
        term_graph = base.copy()
        t0 = time.perf_counter()
        compiled = SemiNaiveEngine(rules).run(term_graph)
        compiled_best = min(compiled_best, time.perf_counter() - t0)

        dictionary = TermDictionary()
        t0 = time.perf_counter()
        store = _encode_graph(base, dictionary)
        columnar = ColumnarEngine(rules, dictionary).run(store)
        columnar_best = min(columnar_best, time.perf_counter() - t0)

    # Same fixpoint, same accounting: the id-space kernels replicate the
    # compiled kernels' semantics, not just their result.
    assert len(store) == len(term_graph)
    assert columnar.stats.join_probes == compiled.stats.join_probes
    assert columnar.stats.firings == compiled.stats.firings
    assert columnar.stats.derived == compiled.stats.derived

    closure = len(term_graph)
    results = {
        "dataset": "LUBM(8)",
        "closure_triples": closure,
        "derived": compiled.stats.derived,
        "join_probes": compiled.stats.join_probes,
        "compiled": {
            "seconds": round(compiled_best, 6),
            "triples_per_sec": round(closure / compiled_best),
        },
        "columnar": {
            "seconds": round(columnar_best, 6),
            "triples_per_sec": round(closure / columnar_best),
        },
        "speedup": round(compiled_best / columnar_best, 2),
        "wire": _wire_numbers(),
    }
    path = _core_results_path(tmp_path)
    path.write_text(json.dumps(results, indent=2) + "\n")

    assert compiled_best >= 2.0 * columnar_best, results


def _wire_numbers():
    """Bytes-on-wire of the id-native parallel runtime: a k=4 data-
    partitioned run with id-encoded messages and columnar workers, priced
    by the comm layer's payload accounting (24 bytes/row + once-per-peer
    delta dictionaries)."""
    from repro.datasets import LUBM
    from repro.parallel import InMemoryComm, ParallelReasoner
    from repro.partitioning.policies import GraphPartitioningPolicy

    lubm = LUBM(2, seed=0)
    comm = InMemoryComm(4)
    reasoner = ParallelReasoner(
        lubm.ontology, k=4, approach="data",
        policy=GraphPartitioningPolicy(seed=0), strategy="forward",
        comm=comm, encode_wire=True, engine="columnar",
    )
    result = reasoner.materialize(lubm.data)
    tuples = result.stats.total_tuples_communicated()
    payload = comm.stats.payload_bytes
    return {
        "dataset": "LUBM(2)",
        "k": 4,
        "tuples_communicated": tuples,
        "bytes_on_wire": payload,
        "bytes_per_tuple": round(payload / tuples, 2) if tuples else 0.0,
    }


_RSS_PROBE = """\
import json, resource, sys
import numpy as np
from repro.datasets import LUBM
from repro.datalog.columnar import ColumnarEngine
from repro.owl import HorstReasoner
from repro.rdf.dictionary import TermDictionary
from repro.rdf.idstore import IdGraph
from repro.rdf.runstore import RunStore

kind, budget = sys.argv[1], int(sys.argv[2])
lubm = LUBM(8, seed=0)
base = lubm.data.copy()
base.update(lubm.ontology)
rules = HorstReasoner(lubm.ontology).rules
dictionary = TermDictionary()
enc = dictionary.encode
s, p, o = [], [], []
for a, b, c in base.spo_items():
    s.append(enc(a)), p.append(enc(b)), o.append(enc(c))
if kind == "dense":
    store = IdGraph(capacity=len(s))
else:
    store = RunStore(memory_budget_bytes=budget)
store.add_rows(np.asarray(s, dtype=np.int64), np.asarray(p, dtype=np.int64),
               np.asarray(o, dtype=np.int64))
result = ColumnarEngine(rules, dictionary).run(store)
print(json.dumps({
    "rows": len(store),
    "store_bytes": store.memory_bytes(),
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "derived": result.stats.derived,
}))
"""


def _closure_peak_rss(kind: str, budget: int) -> dict:
    """Close LUBM(8) in a fresh interpreter and report its peak RSS
    (``ru_maxrss``) plus the store's accounted bytes — process-level
    ground truth for the budget accounting, free of this process's
    allocator history."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) \
        + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, kind, str(budget)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_ablation_run_store_memory_budget(tmp_path):
    """Acceptance gate for the memory-budgeted run store (DESIGN.md §12).

    Three closures of the same LUBM(8) KB through the columnar kernels:

    * dense — the ``IdGraph`` mirror (baseline);
    * in-RAM run store — ``tail_rows=4096`` forces real seals/merges
      while everything stays resident: the throughput comparison;
    * budgeted — ``memory_budget_bytes`` set to a third of what the
      dense mirror measures *after* closure, i.e. a cap under which the
      dense store could not even hold the result.

    Gates: identical work counters on all three paths (the run store is
    an exact drop-in, not an approximation), in-RAM throughput >= 0.8x
    dense, budgeted residency within the cap, and compressed payload
    <= 0.5x dense bytes/triple.  Peak-RSS numbers come from subprocess
    probes and are recorded (not gated — interpreter baseline dominates
    at this scale) in ``BENCH_core.json`` for CI to archive.
    """
    from repro.datasets import LUBM

    lubm = LUBM(8, seed=0)
    base = lubm.data.copy()
    base.update(lubm.ontology)
    rules = HorstReasoner(lubm.ontology).rules

    def closure(store):
        dictionary = TermDictionary()
        t0 = time.perf_counter()
        enc = dictionary.encode
        s_list, p_list, o_list = [], [], []
        for s, p, o in base.spo_items():
            s_list.append(enc(s)), p_list.append(enc(p)), o_list.append(enc(o))
        store.add_rows(
            np.asarray(s_list, dtype=np.int64),
            np.asarray(p_list, dtype=np.int64),
            np.asarray(o_list, dtype=np.int64),
        )
        result = ColumnarEngine(rules, dictionary).run(store)
        return store, result.stats, time.perf_counter() - t0

    dense_best = run_best = float("inf")
    for _ in range(3):
        dense, dense_stats, seconds = closure(IdGraph(capacity=len(base)))
        dense_best = min(dense_best, seconds)
        run, run_stats, seconds = closure(RunStore(tail_rows=4096))
        run_best = min(run_best, seconds)

    # A budget the dense mirror demonstrably cannot fit under.
    budget = dense.memory_bytes() // 3
    assert dense.memory_bytes() > budget
    budgeted, budgeted_stats, _ = closure(
        RunStore(memory_budget_bytes=budget))

    # Exact drop-in: same closure, same counters, on both run-store paths.
    for stats in (run_stats, budgeted_stats):
        assert len(budgeted) == len(dense)
        assert stats.join_probes == dense_stats.join_probes
        assert stats.firings == dense_stats.firings
        assert stats.derived == dense_stats.derived

    assert budgeted.in_ram_bytes() <= budget
    dense_bpt = dense.memory_bytes() / len(dense)
    run_bpt = run.payload_bytes() / len(run)
    assert run_bpt <= 0.5 * dense_bpt
    assert run_best <= dense_best / 0.8, (run_best, dense_best)

    dense_rss = _closure_peak_rss("dense", 0)
    budgeted_rss = _closure_peak_rss("run", budget)
    section = {
        "dataset": "LUBM(8)",
        "closure_triples": len(dense),
        "budget_bytes": budget,
        "dense": {
            "seconds": round(dense_best, 6),
            "store_bytes": dense.memory_bytes(),
            "bytes_per_triple": round(dense_bpt, 2),
            "peak_rss_kb": dense_rss["peak_rss_kb"],
        },
        "run_store": {
            "seconds": round(run_best, 6),
            "payload_bytes": run.payload_bytes(),
            "bytes_per_triple": round(run_bpt, 2),
            "throughput_vs_dense": round(dense_best / run_best, 2),
        },
        "budgeted": {
            "in_ram_bytes": budgeted.in_ram_bytes(),
            "payload_bytes": budgeted.payload_bytes(),
            "peak_rss_kb": budgeted_rss["peak_rss_kb"],
            **{k: v for k, v in budgeted.store_stats().items()
               if k in ("runs", "seals", "merges", "spills")},
        },
    }
    path = _core_results_path(tmp_path)
    results = json.loads(path.read_text()) if path.exists() else {}
    results["runstore"] = section
    path.write_text(json.dumps(results, indent=2) + "\n")


def test_ablation_incremental_apply_beats_rebuild(tmp_path):
    """Acceptance gate for DRed incremental maintenance (DESIGN.md §13).

    LUBM(8), closed in a ``MaterializedKB(engine="columnar")``.  For
    each removal-batch size: retract the batch via ``apply()``
    (delete-and-rederive), time it, then re-add it — which must land
    back on the identical closure (the delete-then-readd differential).
    The baseline is the full re-closure ``rebuild()`` the README used
    to prescribe for any retraction.  Gate: apply beats rebuild for
    small batches.  Records updates/sec per batch size and the measured
    crossover (the first batch size where overdeletion's cone is no
    cheaper than re-closing) into the ``incremental`` section of
    ``BENCH_core.json``.
    """
    import random

    from repro.datasets import LUBM
    from repro.owl.kb import MaterializedKB

    lubm = LUBM(8, seed=0)
    kb = MaterializedKB(lubm.ontology, engine="columnar")
    kb.bulk_load(lubm.data)
    original = len(kb)

    rebuild_best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        kb.rebuild()
        rebuild_best = min(rebuild_best, time.perf_counter() - t0)
    assert len(kb) == original

    rng = random.Random(0)
    pool = list(kb.base_graph)
    sweep = []
    for size in (1, 4, 16, 64, 256):
        batch = rng.sample(pool, size)
        t0 = time.perf_counter()
        kb.apply(removes=batch)
        apply_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        kb.apply(adds=batch)
        restore_seconds = time.perf_counter() - t0
        assert len(kb) == original  # delete-then-readd round-trip
        sweep.append({
            "batch": size,
            "apply_seconds": round(apply_seconds, 6),
            "restore_seconds": round(restore_seconds, 6),
            "updates_per_sec": round(size / apply_seconds),
            "speedup_vs_rebuild": round(rebuild_best / apply_seconds, 2),
        })

    crossover = next(
        (r["batch"] for r in sweep
         if r["apply_seconds"] >= rebuild_best),
        None,
    )
    section = {
        "dataset": "LUBM(8)",
        "closure_triples": original,
        "rebuild_seconds": round(rebuild_best, 6),
        "sweep": sweep,
        #: None means apply won at every measured size.
        "crossover_batch": crossover,
    }
    path = _core_results_path(tmp_path)
    results = json.loads(path.read_text()) if path.exists() else {}
    results["incremental"] = section
    path.write_text(json.dumps(results, indent=2) + "\n")

    # The gate: maintaining the closure under a small retraction batch
    # must beat re-closing from scratch.
    for r in sweep:
        if r["batch"] <= 16:
            assert r["apply_seconds"] < rebuild_best, (r, rebuild_best)


def test_bench_forward_materialization(benchmark, lubm_tiny):
    reasoner = HorstReasoner(lubm_tiny.ontology)
    result = benchmark.pedantic(
        lambda: reasoner.materialize(lubm_tiny.data, strategy="forward"),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["work"] = result.work


def test_bench_backward_materialization(benchmark, lubm_tiny):
    reasoner = HorstReasoner(lubm_tiny.ontology)
    result = benchmark.pedantic(
        lambda: reasoner.materialize(lubm_tiny.data, strategy="backward"),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["work"] = result.work


def test_ablation_backward_costs_more_than_forward(lubm_tiny):
    """The whole premise of the super-linear speedup: the Jena-style driver
    does far more work than bottom-up evaluation for the same closure."""
    reasoner = HorstReasoner(lubm_tiny.ontology)
    fwd = reasoner.materialize(lubm_tiny.data, strategy="forward")
    bwd = reasoner.materialize(lubm_tiny.data, strategy="backward")
    assert fwd.graph == bwd.graph
    assert bwd.work > 5 * fwd.work


def test_ablation_shared_tables_amortize(lubm_tiny):
    """share_tables=True (one engine across per-resource queries) can only
    reduce proof work.  The measured saving is small: with SCC-scoped
    completion, per-resource proof trees barely overlap — evidence that
    the materialization cost really is per-resource (the polynomial regime
    Section VI describes), not an artifact of redundant sub-proofs."""
    reasoner = HorstReasoner(lubm_tiny.ontology)
    _, fresh = materialize_backward(
        lubm_tiny.data, reasoner.rules, candidate_probing=False
    )
    _, shared = materialize_backward(
        lubm_tiny.data, reasoner.rules, share_tables=True,
        candidate_probing=False,
    )
    assert shared.goals_expanded <= fresh.goals_expanded
