"""Ablation benches for the reasoning engines.

DESIGN.md §5: semi-naive vs naive evaluation, forward vs the
(deliberately Jena-shaped, super-linear) backward materialization, and
compiled kernels vs the generic interpreter on a mixed Horst workload.
"""

import time

import pytest

from repro.datalog import NaiveEngine, SemiNaiveEngine, parse_rules
from repro.datalog.backward import materialize_backward
from repro.owl import HorstReasoner
from repro.rdf import Graph, URI

TRANS = parse_rules("@prefix ex: <ex:>\n"
                    "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")

#: A mixed Horst-shaped workload: scan rules (subproperty/inverse-style
#: rewrites), join rules (two transitive closures), and rules over
#: predicates absent from the data (exercising predicate dispatch) — the
#: shape a compiled ontology produces, not just one transitive chain.
MIXED = parse_rules(
    "@prefix ex: <ex:>\n"
    "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
    "[inv: (?x ex:p ?y) -> (?y ex:q ?x)]"
    "[typ: (?x ex:p ?y) -> (?x ex:type ex:Thing)]"
    "[jq: (?x ex:q ?y) (?y ex:q ?z) -> (?x ex:qq ?z)]"
    "[u1: (?x ex:absent1 ?y) -> (?x ex:a1 ?y)]"
    "[u2: (?x ex:absent2 ?y) (?y ex:absent2 ?z) -> (?x ex:a2 ?z)]"
    "[u3: (?x ex:absent3 ?y) (?y ex:absent4 ?z) -> (?x ex:a3 ?z)]"
)


def _chain(n):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), URI("ex:p"), URI(f"ex:n{i + 1}"))
    return g


def _mixed_graph(n):
    """A chain plus a deterministic pseudo-random functional graph — deep
    transitive closure with branching joins."""
    g = _chain(n)
    for i in range(n):
        g.add_spo(URI(f"ex:m{i}"), URI("ex:p"), URI(f"ex:m{(i * 7) % n}"))
    return g


def test_bench_semi_naive(benchmark):
    result = benchmark(lambda: SemiNaiveEngine(TRANS).run(_chain(25)))
    benchmark.extra_info["join_probes"] = result.stats.join_probes


def test_bench_naive(benchmark):
    result = benchmark(lambda: NaiveEngine(TRANS).run(_chain(25)))
    benchmark.extra_info["join_probes"] = result.stats.join_probes


def test_ablation_semi_naive_beats_naive():
    semi = SemiNaiveEngine(TRANS).run(_chain(30))
    naive = NaiveEngine(TRANS).run(_chain(30))
    # Transitive chains converge in few rounds, so the gap is moderate
    # here; the margin widens with iteration count (see the unit test on
    # longer mixed rule sets).
    assert semi.stats.join_probes < 0.75 * naive.stats.join_probes


def test_bench_compiled_mixed(benchmark):
    result = benchmark(
        lambda: SemiNaiveEngine(MIXED).run(_mixed_graph(40))
    )
    benchmark.extra_info["join_probes"] = result.stats.join_probes
    benchmark.extra_info["rules_skipped"] = result.stats.rules_skipped


def test_bench_generic_mixed(benchmark):
    result = benchmark(
        lambda: SemiNaiveEngine(MIXED, compile_rules=False).run(_mixed_graph(40))
    )
    benchmark.extra_info["join_probes"] = result.stats.join_probes
    benchmark.extra_info["rules_skipped"] = result.stats.rules_skipped


def test_ablation_compiled_beats_generic():
    """Acceptance gate for the compiled kernels: identical fixpoint,
    strictly fewer join probes, and lower wall-clock than the generic
    interpreter on the mixed workload (best-of-3 to damp scheduler noise;
    the observed gap is ~4x, so a plain < comparison has wide margin)."""
    compiled_best, generic_best = float("inf"), float("inf")
    for _ in range(3):
        g1, g2 = _mixed_graph(40), _mixed_graph(40)
        t0 = time.perf_counter()
        compiled = SemiNaiveEngine(MIXED).run(g1)
        t1 = time.perf_counter()
        generic = SemiNaiveEngine(MIXED, compile_rules=False).run(g2)
        t2 = time.perf_counter()
        compiled_best = min(compiled_best, t1 - t0)
        generic_best = min(generic_best, t2 - t1)
        assert g1 == g2
    assert compiled.stats.join_probes < generic.stats.join_probes
    assert compiled.stats.rules_skipped > 0
    assert compiled_best < generic_best


def test_bench_forward_materialization(benchmark, lubm_tiny):
    reasoner = HorstReasoner(lubm_tiny.ontology)
    result = benchmark.pedantic(
        lambda: reasoner.materialize(lubm_tiny.data, strategy="forward"),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["work"] = result.work


def test_bench_backward_materialization(benchmark, lubm_tiny):
    reasoner = HorstReasoner(lubm_tiny.ontology)
    result = benchmark.pedantic(
        lambda: reasoner.materialize(lubm_tiny.data, strategy="backward"),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["work"] = result.work


def test_ablation_backward_costs_more_than_forward(lubm_tiny):
    """The whole premise of the super-linear speedup: the Jena-style driver
    does far more work than bottom-up evaluation for the same closure."""
    reasoner = HorstReasoner(lubm_tiny.ontology)
    fwd = reasoner.materialize(lubm_tiny.data, strategy="forward")
    bwd = reasoner.materialize(lubm_tiny.data, strategy="backward")
    assert fwd.graph == bwd.graph
    assert bwd.work > 5 * fwd.work


def test_ablation_shared_tables_amortize(lubm_tiny):
    """share_tables=True (one engine across per-resource queries) can only
    reduce proof work.  The measured saving is small: with SCC-scoped
    completion, per-resource proof trees barely overlap — evidence that
    the materialization cost really is per-resource (the polynomial regime
    Section VI describes), not an artifact of redundant sub-proofs."""
    reasoner = HorstReasoner(lubm_tiny.ontology)
    _, fresh = materialize_backward(
        lubm_tiny.data, reasoner.rules, candidate_probing=False
    )
    _, shared = materialize_backward(
        lubm_tiny.data, reasoner.rules, share_tables=True,
        candidate_probing=False,
    )
    assert shared.goals_expanded <= fresh.goals_expanded
