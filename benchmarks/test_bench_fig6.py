"""Bench for Fig 6: rule-partitioning speedups (shared memory)."""

import pytest

from repro.experiments.common import speedup_series
from repro.parallel.costmodel import CostModel


def _series(dataset, ks):
    return speedup_series(
        dataset, ks=ks, approach="rule", strategy="forward",
        cost_model=CostModel.shared_memory(),
    )


@pytest.mark.parametrize("dataset_fixture", ["lubm_tiny", "uobm_tiny", "mdc_tiny"])
def test_bench_fig6(benchmark, dataset_fixture, request):
    dataset = request.getfixturevalue(dataset_fixture)
    points = benchmark.pedantic(
        _series, args=(dataset, (1, 3)), rounds=1, iterations=1
    )
    point = points[-1]
    benchmark.extra_info["work_speedup"] = round(point.work_speedup, 2)
    # Paper shape: a gain, but sub-linear.
    assert 1.0 <= point.work_speedup < 3.0


def test_fig6_shape_monotonic_work_speedup(lubm_tiny, mdc_tiny):
    """LUBM's many-rule workload gives clean monotonicity at tiny scale;
    MDC's three indivisible heavy rules make exact monotonicity fragile
    when k crosses their count, so it gets the weaker always-a-gain check
    (the paper's runs, at 1000x the size, smooth this out)."""
    lubm_speeds = [p.work_speedup for p in _series(lubm_tiny, (1, 2, 3))]
    assert lubm_speeds == sorted(lubm_speeds), f"not monotonic: {lubm_speeds}"
    mdc_speeds = [p.work_speedup for p in _series(mdc_tiny, (1, 2, 3))]
    assert all(s >= 1.0 for s in mdc_speeds)
    assert max(mdc_speeds) > 1.3
