"""Benches for the extension subsystems: hybrid partitioning, dynamic
rebalancing, the streaming partitioner, and the materialized KB."""

import pytest

from repro.owl import HorstReasoner, MaterializedKB
from repro.parallel import ParallelReasoner
from repro.parallel.hybrid import HybridParallelReasoner
from repro.parallel.rebalance import RebalancingParallelReasoner
from repro.partitioning import stream_partition
from repro.partitioning.policies import HashPartitioningPolicy
from repro.rdf import Graph, serialize_ntriples


def test_bench_hybrid_materialization(benchmark, lubm_tiny):
    def run():
        return HybridParallelReasoner(
            lubm_tiny.ontology, k_data=2, k_rules=2
        ).materialize(lubm_tiny.data)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rounds"] = result.stats.num_rounds


def test_hybrid_equals_serial(lubm_tiny):
    serial = HorstReasoner(lubm_tiny.ontology).materialize(lubm_tiny.data)
    hybrid = HybridParallelReasoner(lubm_tiny.ontology, k_data=2, k_rules=2)
    result = hybrid.materialize(lubm_tiny.data)
    instance = Graph(t for t in result.graph if t not in hybrid.compiled.schema)
    assert instance == serial.graph


def test_bench_rebalancing_run(benchmark, mdc_tiny):
    def run():
        return RebalancingParallelReasoner(
            mdc_tiny.ontology, k=3, policy=HashPartitioningPolicy(),
            imbalance_threshold=1.2,
        ).materialize(mdc_tiny.data)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["migrations"] = len(result.migrations)


def test_ablation_rebalancing_improves_late_round_balance(mdc_tiny):
    """With a hash partitioning of MDC (work-skewed), migration must reduce
    the worst-node share of late-round work relative to the static run."""
    def late_round_imbalance(stats):
        late = [s for r in stats.rounds[1:] for s in r]
        if not late:
            return 1.0
        per_node = {}
        for s in late:
            per_node[s.node_id] = per_node.get(s.node_id, 0) + s.work
        values = list(per_node.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean else 1.0

    static = ParallelReasoner(
        mdc_tiny.ontology, k=3, approach="data",
        policy=HashPartitioningPolicy(), strategy="forward",
    ).materialize(mdc_tiny.data)
    dynamic = RebalancingParallelReasoner(
        mdc_tiny.ontology, k=3, policy=HashPartitioningPolicy(),
        imbalance_threshold=1.2, migration_fraction=0.5,
    ).materialize(mdc_tiny.data)
    # The rebalanced run must not be *more* imbalanced late in the run.
    # (Equality can occur when the fixpoint finishes before migration can
    # pay off — the honest boundary of dynamic balancing.)
    assert late_round_imbalance(dynamic.stats) <= late_round_imbalance(
        static.stats
    ) * 1.25


def test_bench_streaming_partition(benchmark, lubm_tiny, tmp_path):
    src = tmp_path / "data.nt"
    src.write_text(
        serialize_ntriples(lubm_tiny.ontology.union(lubm_tiny.data)),
        encoding="utf-8",
    )

    def run():
        return stream_partition(src, tmp_path / "out", k=4)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["replication"] = round(report.replication, 3)
    assert report.triples_read > 0


def test_bench_kb_incremental_add(benchmark, lubm_tiny):
    kb = MaterializedKB(lubm_tiny.ontology)
    kb.add(iter(lubm_tiny.data))
    from repro.rdf import Triple, URI

    new = Triple(
        URI("http://www.University0.edu/Department0/FreshStudent"),
        URI("http://repro.example.org/univ-bench#memberOf"),
        URI("http://www.University0.edu/Department0"),
    )

    def add_once():
        # Rebuild-free incremental load of one new fact.
        kb._base.discard(new)
        kb._closed.discard(new)
        return kb.add([new])

    added = benchmark(add_once)
    assert added == 1
