"""Bench for Fig 5: the three data-partitioning policies compared.

Asserts the paper's ranking on replication (IR): hash is far worse than
graph and domain, and blows past the memory-feasibility line at larger k
while the other two stay comfortably under it.
"""

import pytest

from repro.experiments.fig5 import MEMORY_BUDGET_FACTOR
from repro.partitioning import compute_data_metrics, partition_data
from repro.partitioning.policies import (
    DomainPartitioningPolicy,
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
)

K = 4


def _metrics(dataset, policy, k=K):
    result = partition_data(dataset.data, policy, k)
    return compute_data_metrics(result, dataset.data)


@pytest.mark.parametrize("policy_name", ["graph", "domain", "hash"])
def test_bench_fig5_policy(benchmark, lubm_tiny, policy_name):
    factories = {
        "graph": lambda: GraphPartitioningPolicy(seed=0),
        "domain": lambda: DomainPartitioningPolicy(lubm_tiny.domain_grouper),
        "hash": lambda: HashPartitioningPolicy(),
    }
    metrics = benchmark(_metrics, lubm_tiny, factories[policy_name]())
    benchmark.extra_info["IR"] = round(metrics.duplication, 3)
    benchmark.extra_info["bal"] = round(metrics.bal, 1)


def test_fig5_shape_policy_ranking(lubm_tiny):
    graph = _metrics(lubm_tiny, GraphPartitioningPolicy(seed=0))
    domain = _metrics(lubm_tiny, DomainPartitioningPolicy(lubm_tiny.domain_grouper))
    hash_ = _metrics(lubm_tiny, HashPartitioningPolicy())
    # Paper: graph ~= domain (both small IR), hash far worse.
    assert graph.duplication < 0.5
    assert domain.duplication < 0.5
    assert hash_.duplication > 2 * max(graph.duplication, domain.duplication)
    # The paper's 8/16-node hash runs died of memory; our feasibility rule
    # must reject hash well before the locality-aware policies.
    assert hash_.input_replication > MEMORY_BUDGET_FACTOR or hash_.duplication > 0.5
