"""Bench for Fig 1: data-partitioning (graph policy) parallel materialization.

Regenerates the Fig 1 rows for each dataset at k=4 and asserts the paper's
shape on the machine-independent work units: MDC super-linear, UOBM
sub-linear.
"""

import pytest

from repro.experiments.common import measure_serial, speedup_series
from repro.partitioning.policies import GraphPartitioningPolicy

K = 4


def _series(dataset):
    return speedup_series(
        dataset,
        ks=(1, K),
        approach="data",
        policy_factory=lambda: GraphPartitioningPolicy(seed=0),
        strategy="backward",
    )


@pytest.mark.parametrize("dataset_fixture", ["lubm_tiny", "uobm_tiny", "mdc_tiny"])
def test_bench_fig1_speedup(benchmark, dataset_fixture, request):
    dataset = request.getfixturevalue(dataset_fixture)
    points = benchmark.pedantic(_series, args=(dataset,), rounds=1, iterations=1)
    point = points[-1]
    benchmark.extra_info["speedup"] = round(point.speedup, 2)
    benchmark.extra_info["work_speedup"] = round(point.work_speedup, 2)
    # Everyone must at least gain from partitioning, in work terms.
    assert point.work_speedup > 1.0


def test_fig1_shape_mdc_superlinear_vs_uobm_sublinear(mdc_tiny, uobm_tiny):
    """The paper's headline contrast, in work units."""
    mdc = _series(mdc_tiny)[-1]
    uobm = _series(uobm_tiny)[-1]
    assert uobm.work_speedup < K, "UOBM must stay sub-linear"
    assert mdc.work_speedup > uobm.work_speedup, (
        "the cleanly-partitionable dataset must beat the dense one"
    )
