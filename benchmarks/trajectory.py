"""Benchmark trajectory — a committed, append-only history of headline numbers.

``BENCH_core.json`` is a *snapshot*: the consolidated numbers from the most
recent bench run (written by ``benchmarks/test_bench_engine.py`` under
``BENCH_CORE_JSON``).  This module distils each snapshot into one dated
summary row — columnar speedup over the compiled engine, columnar
throughput, the run store's bytes/triple, the id-native query battery's
speedup, and (when ``BENCH_serving.json`` is present) the serving tier's
best QPS and its p99 — and appends it to ``BENCH_trajectory.json``, so
regressions show up as a kink in a committed series rather than a diff
against a single overwritten file.

CI calls it right after the bench smoke step::

    python benchmarks/trajectory.py --core bench-core-results.json \
        --serving bench-serving-results.json

Appending is idempotent per content: a row identical to the latest entry
(ignoring its date) is skipped, so re-runs on unchanged numbers don't grow
the file.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CORE = _REPO_ROOT / "BENCH_core.json"
DEFAULT_SERVING = _REPO_ROOT / "BENCH_serving.json"
DEFAULT_TRAJECTORY = _REPO_ROOT / "BENCH_trajectory.json"


def summary_row(core: dict, serving: dict | None = None) -> dict:
    """The headline numbers of one core-bench snapshot (plus, when
    given, the serving-bench snapshot's throughput/tail headline).

    Pulls only stable, comparable-across-runs fields; anything missing
    (older snapshot formats, or no serving snapshot) records as ``None``
    rather than failing, so the trajectory survives schema evolution of
    the snapshot files.
    """

    def _get(root: object, *path: str) -> object:
        node = root
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return node

    return {
        "dataset": _get(core, "dataset"),
        "closure_triples": _get(core, "closure_triples"),
        "speedup": _get(core, "speedup"),
        "triples_per_sec": _get(core, "columnar", "triples_per_sec"),
        "bytes_per_triple": _get(
            core, "runstore", "run_store", "bytes_per_triple"),
        "query_speedup": _get(core, "idquery", "speedup"),
        "serving_qps": _get(serving, "headline", "qps"),
        "serving_p99_ms": _get(serving, "headline", "p99_ms"),
    }


def _same_numbers(a: dict, b: dict) -> bool:
    """Row equality ignoring the date stamp."""
    strip = lambda row: {k: v for k, v in row.items() if k != "date"}  # noqa: E731
    return strip(a) == strip(b)


def append_snapshot(
    core_path: Path | str = DEFAULT_CORE,
    trajectory_path: Path | str = DEFAULT_TRAJECTORY,
    date: str | None = None,
    serving_path: Path | str | None = DEFAULT_SERVING,
) -> bool:
    """Append ``core_path``'s summary row to the trajectory file.

    ``serving_path`` contributes the serving headline when the file
    exists (it is optional — bench runs without the serving step still
    produce a row, with the serving fields ``None``).  Returns ``True``
    when a row was appended, ``False`` when the numbers matched the
    latest entry and the file was left alone.  The trajectory file is
    created on first use.
    """
    core = json.loads(Path(core_path).read_text(encoding="utf-8"))
    serving = None
    if serving_path is not None and Path(serving_path).exists():
        serving = json.loads(Path(serving_path).read_text(encoding="utf-8"))
    row = summary_row(core, serving)
    row["date"] = date or _dt.date.today().isoformat()

    trajectory_path = Path(trajectory_path)
    if trajectory_path.exists():
        rows = json.loads(trajectory_path.read_text(encoding="utf-8"))
        if not isinstance(rows, list):
            raise ValueError(
                f"{trajectory_path} must hold a JSON list of rows, "
                f"got {type(rows).__name__}"
            )
    else:
        rows = []

    if rows and _same_numbers(rows[-1], row):
        return False
    rows.append(row)
    trajectory_path.write_text(
        json.dumps(rows, indent=1) + "\n", encoding="utf-8"
    )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append BENCH_core.json's headline row to the "
        "committed benchmark trajectory.",
    )
    parser.add_argument("--core", default=str(DEFAULT_CORE),
                        help="core bench snapshot to summarize")
    parser.add_argument("--serving", default=str(DEFAULT_SERVING),
                        help="serving bench snapshot (optional; its "
                        "headline joins the row when the file exists)")
    parser.add_argument("--trajectory", default=str(DEFAULT_TRAJECTORY),
                        help="trajectory file to append to")
    parser.add_argument("--date", default=None,
                        help="row date (YYYY-MM-DD, default: today)")
    args = parser.parse_args(argv)
    appended = append_snapshot(args.core, args.trajectory, date=args.date,
                               serving_path=args.serving)
    verb = "appended to" if appended else "unchanged, skipped"
    print(f"trajectory: {verb} {args.trajectory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
