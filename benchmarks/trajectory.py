"""Benchmark trajectory — a committed, append-only history of headline numbers.

``BENCH_core.json`` is a *snapshot*: the consolidated numbers from the most
recent bench run (written by ``benchmarks/test_bench_engine.py`` under
``BENCH_CORE_JSON``).  This module distils each snapshot into one dated
summary row — columnar speedup over the compiled engine, columnar
throughput, and the run store's bytes/triple — and appends it to
``BENCH_trajectory.json``, so regressions show up as a kink in a committed
series rather than a diff against a single overwritten file.

CI calls it right after the bench smoke step::

    python benchmarks/trajectory.py --core bench-core-results.json

Appending is idempotent per content: a row identical to the latest entry
(ignoring its date) is skipped, so re-runs on unchanged numbers don't grow
the file.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CORE = _REPO_ROOT / "BENCH_core.json"
DEFAULT_TRAJECTORY = _REPO_ROOT / "BENCH_trajectory.json"


def summary_row(core: dict) -> dict:
    """The headline numbers of one core-bench snapshot.

    Pulls only stable, comparable-across-runs fields; anything missing
    (older snapshot formats) records as ``None`` rather than failing, so
    the trajectory survives schema evolution of the snapshot file.
    """

    def _get(*path: str) -> object:
        node: object = core
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return node

    return {
        "dataset": _get("dataset"),
        "closure_triples": _get("closure_triples"),
        "speedup": _get("speedup"),
        "triples_per_sec": _get("columnar", "triples_per_sec"),
        "bytes_per_triple": _get("runstore", "run_store", "bytes_per_triple"),
    }


def _same_numbers(a: dict, b: dict) -> bool:
    """Row equality ignoring the date stamp."""
    strip = lambda row: {k: v for k, v in row.items() if k != "date"}  # noqa: E731
    return strip(a) == strip(b)


def append_snapshot(
    core_path: Path | str = DEFAULT_CORE,
    trajectory_path: Path | str = DEFAULT_TRAJECTORY,
    date: str | None = None,
) -> bool:
    """Append ``core_path``'s summary row to the trajectory file.

    Returns ``True`` when a row was appended, ``False`` when the numbers
    matched the latest entry and the file was left alone.  The trajectory
    file is created on first use.
    """
    core = json.loads(Path(core_path).read_text(encoding="utf-8"))
    row = summary_row(core)
    row["date"] = date or _dt.date.today().isoformat()

    trajectory_path = Path(trajectory_path)
    if trajectory_path.exists():
        rows = json.loads(trajectory_path.read_text(encoding="utf-8"))
        if not isinstance(rows, list):
            raise ValueError(
                f"{trajectory_path} must hold a JSON list of rows, "
                f"got {type(rows).__name__}"
            )
    else:
        rows = []

    if rows and _same_numbers(rows[-1], row):
        return False
    rows.append(row)
    trajectory_path.write_text(
        json.dumps(rows, indent=1) + "\n", encoding="utf-8"
    )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append BENCH_core.json's headline row to the "
        "committed benchmark trajectory.",
    )
    parser.add_argument("--core", default=str(DEFAULT_CORE),
                        help="core bench snapshot to summarize")
    parser.add_argument("--trajectory", default=str(DEFAULT_TRAJECTORY),
                        help="trajectory file to append to")
    parser.add_argument("--date", default=None,
                        help="row date (YYYY-MM-DD, default: today)")
    args = parser.parse_args(argv)
    appended = append_snapshot(args.core, args.trajectory, date=args.date)
    verb = "appended to" if appended else "unchanged, skipped"
    print(f"trajectory: {verb} {args.trajectory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
